//! # helios — heterogeneous computing systems for complex scientific discovery workflows
//!
//! `helios` is an umbrella crate that re-exports the full workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `helios-sim` | discrete-event kernel, RNG, statistics |
//! | [`platform`] | `helios-platform` | heterogeneous devices, DVFS, power, interconnects |
//! | [`workflow`] | `helios-workflow` | scientific workflow DAGs and generators |
//! | [`sched`] | `helios-sched` | static and dynamic scheduling algorithms |
//! | [`energy`] | `helios-energy` | DVFS governors, slack reclamation, sleep states |
//! | [`rt`] | `helios-rt` | real-time task models and schedulability analysis |
//! | [`core`] | `helios-core` | the orchestration engine (simulated + threaded) |
//!
//! # Quickstart
//!
//! ```
//! use helios::platform::presets;
//! use helios::workflow::generators::montage;
//! use helios::sched::HeftScheduler;
//! use helios::core::{Engine, EngineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = presets::hpc_node();
//! let workflow = montage(50, 7)?;
//! let report = Engine::new(EngineConfig::default())
//!     .run(&platform, &workflow, &HeftScheduler::default())?;
//! println!("makespan = {}", report.makespan());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use helios_core as core;
pub use helios_energy as energy;
pub use helios_platform as platform;
pub use helios_rt as rt;
pub use helios_sched as sched;
pub use helios_sim as sim;
pub use helios_workflow as workflow;
