//! Memory-capacity feasibility: tasks whose working sets exceed a
//! device's memory must never be placed there, by any scheduler or the
//! online dispatcher.

use helios::core::{EngineConfig, OnlinePolicy, OnlineRunner};
use helios::platform::{presets, ComputeCost, KernelClass};
use helios::sched::{all_schedulers, SchedError};
use helios::workflow::{Task, WorkflowBuilder};

/// A workflow whose tasks touch 1.5 GB each: on the edge SoC this rules
/// out the 1 GB NPU but fits the 2 GB DSP and 4 GB CPU.
fn big_footprint_wf() -> helios::workflow::Workflow {
    let mut b = WorkflowBuilder::new("big");
    let cost = ComputeCost::new(5.0, 1.5e9, KernelClass::Fft);
    let mut prev = None;
    for i in 0..12 {
        let t = b.add_task(Task::new(format!("t{i}"), "s", cost));
        if let Some(p) = prev {
            b.add_dep(p, t, 1e6).unwrap();
        }
        if i % 3 != 2 {
            prev = Some(t);
        } else {
            prev = None;
        }
    }
    b.build().unwrap()
}

#[test]
fn no_scheduler_places_oversized_tasks_on_the_npu() {
    let platform = presets::edge_soc();
    let npu = platform.device_by_name("npu0").unwrap().id();
    let wf = big_footprint_wf();
    for scheduler in all_schedulers() {
        let plan = scheduler
            .schedule(&wf, &platform)
            .unwrap_or_else(|e| panic!("{}: {e}", scheduler.name()));
        plan.validate(&wf, &platform)
            .unwrap_or_else(|e| panic!("{}: {e}", scheduler.name()));
        for p in plan.placements() {
            assert_ne!(
                p.device,
                npu,
                "{} placed an oversized task on the 1 GB NPU",
                scheduler.name()
            );
        }
    }
}

#[test]
fn online_dispatcher_respects_memory() {
    let platform = presets::edge_soc();
    let npu = platform.device_by_name("npu0").unwrap().id();
    let wf = big_footprint_wf();
    for policy in [OnlinePolicy::Jit, OnlinePolicy::RankedJit] {
        let report = OnlineRunner::new(EngineConfig::default(), policy)
            .run(&platform, &wf)
            .unwrap();
        for p in report.schedule().placements() {
            assert_ne!(p.device, npu, "{policy:?} used the NPU");
        }
    }
}

#[test]
fn infeasible_everywhere_is_a_clean_error() {
    let platform = presets::edge_soc(); // largest device: 4 GB
    let mut b = WorkflowBuilder::new("monster");
    b.add_task(Task::new(
        "huge",
        "s",
        ComputeCost::new(1.0, 100e9, KernelClass::Reduction),
    ));
    let wf = b.build().unwrap();
    for scheduler in all_schedulers() {
        match scheduler.schedule(&wf, &platform) {
            Err(SchedError::NoFeasibleDevice(_)) => {}
            other => panic!(
                "{}: expected NoFeasibleDevice, got {other:?}",
                scheduler.name()
            ),
        }
    }
}

#[test]
fn validate_rejects_oversized_placements() {
    use helios::platform::DvfsLevel;
    use helios::sched::{Placement, Schedule};
    use helios::sim::SimTime;
    use helios::workflow::TaskId;

    let platform = presets::edge_soc();
    let npu = platform.device_by_name("npu0").unwrap().id();
    let wf = big_footprint_wf();
    // Hand-build a schedule that crams task 0 onto the NPU.
    let mut placements = Vec::new();
    for i in 0..wf.num_tasks() {
        placements.push(Placement {
            task: TaskId(i),
            device: if i == 0 {
                npu
            } else {
                platform.device_by_name("cpu0").unwrap().id()
            },
            level: DvfsLevel(2),
            start: SimTime::from_secs(i as f64 * 100.0),
            finish: SimTime::from_secs(i as f64 * 100.0 + 99.0),
        });
    }
    let schedule = Schedule::new(placements).unwrap();
    assert!(matches!(
        schedule.validate(&wf, &platform),
        Err(SchedError::NoFeasibleDevice(TaskId(0)))
    ));
}
