//! Cross-crate behavioural tests of the execution engine: determinism,
//! noise, faults, checkpointing, contention, online adaptation and the
//! threaded executor.

use helios::core::{
    CheckpointConfig, Engine, EngineConfig, FaultConfig, OnlinePolicy, OnlineRunner,
};
use helios::energy::{reclaim_slack, Powersave};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Scheduler};
use helios::sim::{SimDuration, SimTime};
use helios::workflow::generators::{cybershake, epigenomics, montage};

#[test]
fn report_is_fully_deterministic() {
    let platform = presets::hpc_node();
    let wf = montage(80, 21).unwrap();
    let config = EngineConfig {
        noise_cv: 0.4,
        seed: 1234,
        link_contention: true,
        faults: Some(FaultConfig::new(0.05, SimDuration::from_secs(0.001), 1_000_000).unwrap()),
        checkpointing: Some(
            CheckpointConfig::new(SimDuration::from_secs(0.005), SimDuration::from_secs(1e-4))
                .unwrap(),
        ),
        ..Default::default()
    };
    let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
    let a = Engine::new(config.clone())
        .execute_plan(&platform, &wf, &plan)
        .unwrap();
    let b = Engine::new(config)
        .execute_plan(&platform, &wf, &plan)
        .unwrap();
    assert_eq!(a, b);
    let json = serde_json::to_string(&a).unwrap();
    let back: helios::core::ExecutionReport = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back, "reports must round-trip through JSON");
}

#[test]
fn fault_overhead_grows_as_mtbf_shrinks() {
    let platform = presets::hpc_node();
    let wf = cybershake(100, 9).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
    let mut last = 0.0;
    for mtbf in [1.0, 0.2, 0.05] {
        let config = EngineConfig {
            seed: 3,
            faults: Some(FaultConfig::new(mtbf, SimDuration::from_secs(0.002), 1_000_000).unwrap()),
            checkpointing: Some(
                CheckpointConfig::new(SimDuration::from_secs(0.01), SimDuration::from_secs(2e-4))
                    .unwrap(),
            ),
            ..Default::default()
        };
        let report = Engine::new(config)
            .execute_plan(&platform, &wf, &plan)
            .unwrap();
        let makespan = report.makespan().as_secs();
        assert!(
            makespan >= last,
            "mtbf {mtbf}: makespan {makespan} should not shrink from {last}"
        );
        last = makespan;
    }
}

#[test]
fn slack_reclaimed_plan_executes_within_deadline() {
    // The full loop: plan → reclaim slack → execute → realized makespan
    // still meets the deadline under ideal conditions.
    let platform = presets::hpc_node();
    let wf = epigenomics(80, 4).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
    let deadline = SimTime::ZERO + plan.makespan() * 1.4;
    let relaxed = reclaim_slack(&plan, &wf, &platform, deadline).unwrap();
    let report = Engine::new(EngineConfig::default())
        .execute_plan(&platform, &wf, &relaxed)
        .unwrap();
    assert!(
        report.makespan().as_secs() <= deadline.as_secs() + 1e-6,
        "realized {} vs deadline {deadline}",
        report.makespan()
    );
    // Lower-voltage states must actually be used.
    let below_nominal = report
        .schedule()
        .placements()
        .iter()
        .filter(|p| {
            let dev = platform.device(p.device).unwrap();
            p.level != dev.nominal_level()
        })
        .count();
    assert!(
        below_nominal > 0,
        "reclamation must engage lower DVFS states"
    );
}

#[test]
fn online_calibration_routes_around_throttled_devices() {
    let platform = presets::hpc_node();
    let mut slow = vec![1.0; platform.num_devices()];
    slow[2] = 6.0; // gpu0 throttled 6x
    slow[3] = 6.0; // gpu1 throttled 6x
    let mut static_sum = 0.0;
    let mut online_sum = 0.0;
    for seed in 0..6 {
        let wf = montage(100, seed).unwrap();
        let config = EngineConfig {
            device_slowdown: Some(slow.clone()),
            ..Default::default()
        };
        let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
        static_sum += Engine::new(config.clone())
            .execute_plan(&platform, &wf, &plan)
            .unwrap()
            .makespan()
            .as_secs();
        online_sum += OnlineRunner::new(config, OnlinePolicy::RankedJit)
            .run(&platform, &wf)
            .unwrap()
            .makespan()
            .as_secs();
    }
    assert!(
        online_sum < static_sum,
        "online {online_sum} must beat static {static_sum} under throttling"
    );
}

#[test]
fn powersave_governor_is_slower_but_leaner_online() {
    let platform = presets::workstation();
    let wf = montage(50, 2).unwrap();
    let perf = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
        .run(&platform, &wf)
        .unwrap();
    let save = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
        .with_governor(Box::new(Powersave))
        .run(&platform, &wf)
        .unwrap();
    assert!(save.makespan() > perf.makespan());
    assert!(save.energy().active_j < perf.energy().active_j);
}

#[test]
fn threaded_executor_agrees_with_simulation() {
    let platform = presets::workstation();
    let wf = montage(25, 8).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
    let simulated = Engine::new(EngineConfig::default())
        .execute_plan(&platform, &wf, &plan)
        .unwrap();
    let scale = 0.2 / simulated.makespan().as_secs();
    let threaded = helios::core::executor::ThreadedExecutor::new(scale)
        .unwrap()
        .execute_plan(&platform, &wf, &plan)
        .unwrap();
    let sim = simulated.makespan().as_secs();
    let wall = threaded.makespan().as_secs();
    assert!(
        (wall - sim).abs() / sim < 0.4,
        "threaded {wall} vs simulated {sim}"
    );
}
