//! Golden-trace regression tests for the five Pegasus-style generators.
//!
//! Each (family, seed) cell of the committed fixture pins the generated
//! instance's node count, edge count, and an FNV-1a digest over every
//! task cost and every edge — so any change to generator structure,
//! cost sampling, or RNG consumption order shows up as a diff against
//! `tests/fixtures/generator_golden.json`.
//!
//! To regenerate the fixture after an *intentional* generator change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test generator_golden
//! ```
//!
//! then commit the rewritten fixture alongside the generator change.

use std::fmt::Write as _;
use std::path::PathBuf;

use helios_workflow::generators::WorkflowClass;
use helios_workflow::{TaskId, Workflow};

/// The grid the fixture pins: every family at two sizes and two seeds.
const SIZES: [usize; 2] = [30, 120];
const SEEDS: [u64; 2] = [7, 42];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/generator_golden.json")
}

/// FNV-1a (64-bit) over the workflow's full cost trace: per task the
/// bit patterns of gflop and bytes touched plus the kernel class, per
/// edge its endpoints and payload bit pattern. Byte-exact, so even a
/// 1-ulp drift in cost sampling changes the digest.
fn workflow_digest(wf: &Workflow) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    };
    for task in wf.tasks() {
        let cost = task.cost();
        feed(&cost.gflop().to_bits().to_le_bytes());
        feed(&cost.bytes_touched().to_bits().to_le_bytes());
        feed(format!("{:?}", cost.kernel_class()).as_bytes());
    }
    for edge in wf.edges() {
        feed(&(edge.src.0 as u64).to_le_bytes());
        feed(&(edge.dst.0 as u64).to_le_bytes());
        feed(&edge.bytes.to_bits().to_le_bytes());
    }
    format!("{hash:016x}")
}

struct GoldenEntry {
    family: &'static str,
    seed: u64,
    n: usize,
    tasks: usize,
    edges: usize,
    digest: String,
}

fn current_entries() -> Vec<GoldenEntry> {
    let mut entries = Vec::new();
    for class in WorkflowClass::ALL {
        for n in SIZES {
            for seed in SEEDS {
                let wf = class
                    .generate(n, seed)
                    .unwrap_or_else(|e| panic!("{class} (n = {n}, seed {seed}): {e}"));
                entries.push(GoldenEntry {
                    family: class.as_str(),
                    seed,
                    n,
                    tasks: wf.num_tasks(),
                    edges: wf.num_edges(),
                    digest: workflow_digest(&wf),
                });
            }
        }
    }
    entries
}

fn render_fixture(entries: &[GoldenEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            out,
            "  {{\"family\": \"{}\", \"seed\": {}, \"n\": {}, \
             \"tasks\": {}, \"edges\": {}, \"digest\": \"{}\"}}{comma}",
            e.family, e.seed, e.n, e.tasks, e.edges, e.digest
        )
        .expect("write to string");
    }
    out.push_str("]\n");
    out
}

#[test]
fn generators_match_the_committed_golden_traces() {
    let entries = current_entries();
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, render_fixture(&entries)).expect("write fixture");
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; run `UPDATE_GOLDEN=1 cargo test --test generator_golden` \
             to (re)create it",
            path.display()
        )
    });
    let golden: serde_json::Value = serde_json::from_str(&raw).expect("fixture parses");
    let golden = golden.as_array().expect("fixture is a JSON array");
    assert_eq!(
        golden.len(),
        entries.len(),
        "fixture covers a different grid; regenerate with UPDATE_GOLDEN=1"
    );
    for (want, got) in golden.iter().zip(&entries) {
        let cell = format!("{} (n = {}, seed {})", got.family, got.n, got.seed);
        assert_eq!(want["family"].as_str(), Some(got.family), "{cell}: family");
        assert_eq!(want["seed"].as_u64(), Some(got.seed), "{cell}: seed");
        assert_eq!(want["n"].as_u64(), Some(got.n as u64), "{cell}: n");
        assert_eq!(
            want["tasks"].as_u64(),
            Some(got.tasks as u64),
            "{cell}: node count drifted"
        );
        assert_eq!(
            want["edges"].as_u64(),
            Some(got.edges as u64),
            "{cell}: edge count drifted"
        );
        assert_eq!(
            want["digest"].as_str(),
            Some(got.digest.as_str()),
            "{cell}: cost/edge digest drifted"
        );
    }
}

#[test]
fn generators_are_deterministic_per_seed() {
    for class in WorkflowClass::ALL {
        let a = class.generate(60, 9).expect("generate");
        let b = class.generate(60, 9).expect("generate");
        assert_eq!(
            workflow_digest(&a),
            workflow_digest(&b),
            "{class}: same seed must reproduce the same instance"
        );
        let c = class.generate(60, 10).expect("generate");
        assert_ne!(
            workflow_digest(&a),
            workflow_digest(&c),
            "{class}: different seeds must differ"
        );
    }
}

/// Independent Kahn-style check that every generated DAG is acyclic,
/// every edge joins valid tasks, and the workflow's own `topo_order`
/// is a real topological order (each edge's source sorts before its
/// destination). Deliberately re-derives in-degrees from the raw edge
/// list rather than trusting the adjacency tables under test.
#[test]
fn generated_dags_are_topologically_valid() {
    for class in WorkflowClass::ALL {
        for n in SIZES {
            for seed in SEEDS {
                let wf = class.generate(n, seed).expect("generate");
                let tasks = wf.num_tasks();
                let mut indeg = vec![0usize; tasks];
                let mut succs: Vec<Vec<usize>> = vec![Vec::new(); tasks];
                for edge in wf.edges() {
                    assert!(
                        edge.src.0 < tasks && edge.dst.0 < tasks,
                        "{class}: edge {:?} -> {:?} out of range",
                        edge.src,
                        edge.dst
                    );
                    assert_ne!(edge.src, edge.dst, "{class}: self-loop on {:?}", edge.src);
                    indeg[edge.dst.0] += 1;
                    succs[edge.src.0].push(edge.dst.0);
                }
                let mut queue: Vec<usize> = (0..tasks).filter(|&t| indeg[t] == 0).collect();
                let mut visited = 0usize;
                while let Some(t) = queue.pop() {
                    visited += 1;
                    for &s in &succs[t] {
                        indeg[s] -= 1;
                        if indeg[s] == 0 {
                            queue.push(s);
                        }
                    }
                }
                assert_eq!(
                    visited, tasks,
                    "{class} (n = {n}, seed {seed}): cycle in generated DAG"
                );

                let order = wf.topo_order();
                assert_eq!(order.len(), tasks, "{class}: topo_order misses tasks");
                let mut position = vec![usize::MAX; tasks];
                for (i, &TaskId(t)) in order.iter().enumerate() {
                    position[t] = i;
                }
                for edge in wf.edges() {
                    assert!(
                        position[edge.src.0] < position[edge.dst.0],
                        "{class} (n = {n}, seed {seed}): topo_order violates \
                         edge {:?} -> {:?}",
                        edge.src,
                        edge.dst
                    );
                }
            }
        }
    }
}
