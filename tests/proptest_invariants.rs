//! Property-based invariants spanning the workspace: random DAGs and
//! platforms in, structural guarantees out.

use proptest::prelude::*;

use helios::platform::presets;
use helios::sched::{metrics, HeftScheduler, MinMinScheduler, PeftScheduler, Scheduler};
use helios::sim::{EventQueue, SimTime};
use helios::workflow::analysis;
use helios::workflow::generators::synthetic::{layered_random, scale_edges_to_ccr, LayeredConfig};

fn layered(levels: usize, width: usize, edge_prob: f64, seed: u64) -> helios::workflow::Workflow {
    let config = LayeredConfig {
        levels,
        width,
        edge_prob,
        ..LayeredConfig::default()
    };
    layered_random(&config, seed).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated DAGs always satisfy every builder invariant.
    #[test]
    fn generated_dags_validate(
        levels in 1usize..8,
        width in 1usize..8,
        edge_prob in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let wf = layered(levels, width, edge_prob, seed);
        prop_assert!(wf.validate().is_ok());
        prop_assert_eq!(wf.num_tasks(), levels * width);
        // Topological order respects every edge.
        let topo = wf.topo_order();
        let mut pos = vec![0usize; wf.num_tasks()];
        for (i, &t) in topo.iter().enumerate() {
            pos[t.0] = i;
        }
        for e in wf.edges() {
            prop_assert!(pos[e.src.0] < pos[e.dst.0]);
        }
        // Depth equals the number of levels (every level is connected to
        // the previous one by construction).
        prop_assert_eq!(analysis::depth(&wf), levels);
    }

    /// Every list scheduler produces a valid schedule on random DAGs, and
    /// its makespan is bounded below by the best single-task time and
    /// above by the sequential sum on the slowest device.
    #[test]
    fn schedulers_valid_on_random_dags(
        levels in 1usize..6,
        width in 1usize..6,
        edge_prob in 0.05f64..0.9,
        seed in 0u64..500,
    ) {
        let wf = layered(levels, width, edge_prob, seed);
        let platform = presets::workstation();
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(HeftScheduler::default()),
            Box::new(PeftScheduler::default()),
            Box::new(MinMinScheduler::default()),
        ];
        // Upper bound: everything sequential on the slowest device.
        let mut worst_seq = 0.0f64;
        for d in platform.devices() {
            let total: f64 = wf
                .tasks()
                .iter()
                .map(|t| {
                    d.execution_time(t.cost(), d.nominal_level())
                        .unwrap()
                        .as_secs()
                })
                .sum();
            worst_seq = worst_seq.max(total);
        }
        for s in schedulers {
            let plan = s.schedule(&wf, &platform).unwrap();
            prop_assert!(plan.validate(&wf, &platform).is_ok(),
                         "{} produced an invalid schedule", s.name());
            let makespan = plan.makespan().as_secs();
            prop_assert!(makespan > 0.0);
            // Communication can exceed compute, so allow generous slack
            // above the sequential bound — but catastrophic blowups are
            // bugs.
            prop_assert!(makespan <= worst_seq * 10.0 + 1.0,
                         "{}: makespan {makespan} vs worst sequential {worst_seq}",
                         s.name());
            let slr = metrics::slr(&plan, &wf, &platform).unwrap();
            prop_assert!(slr > 0.0);
        }
    }

    /// CCR rescaling hits its target for any positive target.
    #[test]
    fn ccr_scaling_converges(
        seed in 0u64..300,
        target in 0.05f64..8.0,
    ) {
        let wf = layered(4, 4, 0.4, seed);
        let platform = presets::hpc_node();
        let scaled = scale_edges_to_ccr(&wf, &platform, target).unwrap();
        let got = analysis::ccr(&scaled, &platform).unwrap();
        prop_assert!((got - target).abs() / target < 0.10,
                     "target {target}, got {got}");
    }

    /// The event queue dequeues in non-decreasing time order with FIFO
    /// ties for arbitrary interleavings.
    #[test]
    fn event_queue_ordering(times in prop::collection::vec(0u32..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                // FIFO within equal timestamps: indices increase.
                if let Some(&prev) = seen_at_time.last() {
                    if times[prev] == times[idx] {
                        prop_assert!(prev < idx);
                    }
                }
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = t;
        }
    }

    /// Bottom levels dominate successors' bottom levels; top levels are
    /// monotone along edges.
    #[test]
    fn rank_monotonicity(seed in 0u64..300) {
        let wf = layered(5, 4, 0.3, seed);
        let platform = presets::workstation();
        let bottom = analysis::bottom_levels(&wf, &platform).unwrap();
        let top = analysis::top_levels(&wf, &platform).unwrap();
        for e in wf.edges() {
            prop_assert!(bottom[e.src.0] > bottom[e.dst.0],
                         "bottom rank must strictly decrease along edges");
            prop_assert!(top[e.src.0] < top[e.dst.0],
                         "top rank must strictly increase along edges");
        }
    }
}
