//! Serialization round-trips across the workspace: workflows, schedules,
//! platforms and reports.

use helios::core::{Engine, EngineConfig};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Schedule, Scheduler};
use helios::workflow::generators::WorkflowClass;
use helios::workflow::io;

#[test]
fn every_workflow_family_roundtrips_json() {
    for class in WorkflowClass::ALL {
        let wf = class.generate(60, 17).unwrap();
        let json = io::to_json(&wf).unwrap();
        let back = io::from_json(&json).unwrap();
        assert_eq!(wf, back, "{class}");
    }
}

#[test]
fn dot_export_is_well_formed_for_every_family() {
    for class in WorkflowClass::ALL {
        let wf = class.generate(30, 1).unwrap();
        let dot = io::to_dot(&wf);
        assert!(dot.starts_with("digraph"), "{class}");
        assert_eq!(dot.matches(" -> ").count(), wf.num_edges(), "{class}");
    }
}

#[test]
fn schedules_roundtrip_json() {
    let platform = presets::hpc_node();
    let wf = WorkflowClass::Montage.generate(50, 2).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
    let json = serde_json::to_string(&plan).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(plan, back);
    back.validate(&wf, &platform).unwrap();
}

#[test]
fn platforms_roundtrip_json() {
    for platform in presets::all() {
        let json = serde_json::to_string(&platform).unwrap();
        let back: helios::platform::Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(platform, back, "{}", platform.name());
    }
}

#[test]
fn reports_roundtrip_json() {
    let platform = presets::workstation();
    let wf = WorkflowClass::Sipht.generate(40, 3).unwrap();
    let report = Engine::new(EngineConfig::default())
        .run(&platform, &wf, &HeftScheduler::default())
        .unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: helios::core::ExecutionReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn external_json_is_validated_not_trusted() {
    // A structurally broken workflow file must be rejected with a
    // precise error, not panic downstream.
    let cyclic = r#"{
        "name": "bad",
        "tasks": [
            {"name": "a", "stage": "s",
             "cost": {"gflop": 1.0, "bytes_touched": 0.0, "kernel_class": "Fft"}},
            {"name": "b", "stage": "s",
             "cost": {"gflop": 1.0, "bytes_touched": 0.0, "kernel_class": "Fft"}}
        ],
        "edges": [
            {"src": 0, "dst": 1, "bytes": 1.0},
            {"src": 1, "dst": 0, "bytes": 1.0}
        ]
    }"#;
    assert!(io::from_json(cyclic).is_err());
    let dangling = r#"{
        "name": "bad",
        "tasks": [
            {"name": "a", "stage": "s",
             "cost": {"gflop": 1.0, "bytes_touched": 0.0, "kernel_class": "Fft"}}
        ],
        "edges": [{"src": 0, "dst": 5, "bytes": 1.0}]
    }"#;
    assert!(io::from_json(dangling).is_err());
}
