//! Crash-consistency acceptance battery for the write-ahead cell
//! journal.
//!
//! The contract under test: a sweep driven through
//! [`SweepDriver::run_journal`] can be killed at *any* byte — between
//! records or mid-record — and a resume salvages the longest valid
//! prefix, truncates the torn tail, and completes with a merged report
//! **byte-identical** to the run that was never interrupted. Cells that
//! repeatedly kill the process get quarantined instead of crash-looping,
//! and a drain request stops cleanly at a resumable cut.

use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;

use proptest::prelude::*;

use helios_core::campaign::journal::{self, TORN_WRITE_INJECTED};
use helios_core::{
    merge_shards, CampaignSpec, JournalOptions, ShardSpec, SweepDriver, SweepReport,
};

const SPEC_JSON: &str = r#"{
    "name": "crash-recovery",
    "families": ["montage", "sipht"],
    "platforms": ["workstation"],
    "schedulers": ["heft", "min-min"],
    "seeds": {"base": 7, "count": 2},
    "tasks": 20,
    "noise_cv": 0.05
}"#;

fn spec() -> CampaignSpec {
    CampaignSpec::from_json(SPEC_JSON).expect("test spec is valid")
}

fn bytes(report: &SweepReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// A per-test scratch directory, unique per process so parallel test
/// binaries cannot collide.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helios-crashrec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run_to_completion(driver: &SweepDriver, spec: &CampaignSpec, path: &Path) -> String {
    let run = driver
        .run_journal(spec, ShardSpec::full(), path, &JournalOptions::default())
        .expect("resume run");
    assert!(!run.drained && run.remaining == 0, "resume must finish");
    bytes(&merge_shards(&[run.report]).expect("merge"))
}

#[test]
fn torn_mid_record_write_salvages_and_resumes_byte_identically() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let reference = bytes(&driver.run(&spec).expect("uninterrupted run"));
    let dir = scratch("torn");
    let path = dir.join("sweep.journal");

    // Tear the 4th append (a completion record) halfway: the write
    // errors after persisting half its bytes, exactly like power loss
    // mid-write.
    let torn = driver.run_journal(
        &spec,
        ShardSpec::full(),
        &path,
        &JournalOptions {
            tear_after: Some(3),
            ..Default::default()
        },
    );
    let err = torn.expect_err("armed tear must fire").to_string();
    assert!(err.contains(TORN_WRITE_INJECTED), "{err}");

    // Salvage must see the torn tail before recovery truncates it.
    let peek = journal::read_journal(&path).expect("salvage");
    assert!(
        peek.dropped_bytes > 0,
        "the half-written record must be dropped"
    );
    assert!(!peek.cells.is_empty(), "records before the tear survive");

    // Resume: truncate the tail, re-run the lost cells, same bytes.
    let resumed = driver
        .run_journal(&spec, ShardSpec::full(), &path, &JournalOptions::default())
        .expect("resumed run");
    assert_eq!(resumed.dropped_bytes, peek.dropped_bytes);
    assert_eq!(resumed.salvaged_cells, peek.cells.len());
    let merged = bytes(&merge_shards(&[resumed.report]).expect("merge"));
    assert_eq!(
        merged, reference,
        "torn-write resume must be byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_at_cell_boundaries_resumes_byte_identically_for_every_cut() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let reference = bytes(&driver.run(&spec).expect("uninterrupted run"));
    let total = spec.num_cells();
    let dir = scratch("boundary");

    for cut in [1usize, total / 2, total - 1] {
        let path = dir.join(format!("cut{cut}.journal"));
        let partial = driver
            .run_journal(
                &spec,
                ShardSpec::full(),
                &path,
                &JournalOptions {
                    limit: Some(cut),
                    ..Default::default()
                },
            )
            .expect("partial run");
        assert_eq!(partial.report.cells.len(), cut);
        assert_eq!(partial.remaining, total - cut);

        let resumed = driver
            .run_journal(&spec, ShardSpec::full(), &path, &JournalOptions::default())
            .expect("resumed run");
        assert_eq!(resumed.salvaged_cells, cut, "cut at {cut}");
        assert_eq!(
            resumed.dropped_bytes, 0,
            "boundary kill leaves no torn tail"
        );
        let merged = bytes(&merge_shards(&[resumed.report]).expect("merge"));
        assert_eq!(
            merged, reference,
            "cut at {cut} must resume byte-identically"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeatedly_crashing_cell_is_quarantined_as_poisoned() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let dir = scratch("poison");
    let path = dir.join("sweep.journal");
    let victim = 2usize;

    // Three runs in a row die right after journaling the attempt on the
    // victim cell — the synthetic "this cell kills the process" loop.
    for round in 0..3 {
        let err = driver
            .run_journal(
                &spec,
                ShardSpec::full(),
                &path,
                &JournalOptions {
                    crash_cell: Some(victim),
                    ..Default::default()
                },
            )
            .expect_err("armed crash must fire");
        assert!(
            err.to_string().contains("injected crash"),
            "round {round}: {err}"
        );
    }

    // The fourth run sees three attempts with no completion and
    // quarantines the cell — even with the crash hook still armed,
    // because the quarantined cell is never executed again.
    let run = driver
        .run_journal(
            &spec,
            ShardSpec::full(),
            &path,
            &JournalOptions {
                crash_cell: Some(victim),
                poison_limit: Some(3),
                ..Default::default()
            },
        )
        .expect("quarantining run");
    assert_eq!(run.poisoned, vec![victim]);
    assert_eq!(run.remaining, 0);
    assert_eq!(run.report.cells.len(), spec.num_cells());
    let cell = &run.report.cells[victim];
    assert_eq!(cell.cell, victim);
    assert!(!cell.completed);
    assert_eq!(cell.incomplete_reason.as_deref(), Some("poisoned"));

    // The quarantine itself is durable: a fresh resume re-reads it from
    // the journal instead of re-poisoning.
    let again = driver
        .run_journal(&spec, ShardSpec::full(), &path, &JournalOptions::default())
        .expect("post-quarantine resume");
    assert!(again.poisoned.is_empty(), "already quarantined, not again");
    assert_eq!(bytes_of_shard(&again.report), bytes_of_shard(&run.report));

    let _ = std::fs::remove_dir_all(&dir);
}

fn bytes_of_shard(report: &helios_core::ShardReport) -> String {
    serde_json::to_string_pretty(report).expect("shard serializes")
}

#[test]
fn drain_request_stops_at_a_resumable_cut() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let reference = bytes(&driver.run(&spec).expect("uninterrupted run"));
    let dir = scratch("drain");
    let path = dir.join("sweep.journal");

    // A drain flag raised before the run claims any cell: nothing
    // executes, everything remains, and the journal is still resumable.
    let flag = AtomicBool::new(true);
    let drained = driver
        .run_journal(
            &spec,
            ShardSpec::full(),
            &path,
            &JournalOptions {
                cancel: Some(&flag),
                ..Default::default()
            },
        )
        .expect("drained run");
    assert!(drained.drained);
    assert_eq!(drained.remaining, spec.num_cells());
    assert!(drained.report.cells.is_empty());

    // Partially complete, then drain, then finish: still the same bytes.
    let partial = driver
        .run_journal(
            &spec,
            ShardSpec::full(),
            &path,
            &JournalOptions {
                limit: Some(3),
                ..Default::default()
            },
        )
        .expect("partial run");
    assert_eq!(partial.report.cells.len(), 3);
    let flag = AtomicBool::new(true);
    let drained = driver
        .run_journal(
            &spec,
            ShardSpec::full(),
            &path,
            &JournalOptions {
                cancel: Some(&flag),
                ..Default::default()
            },
        )
        .expect("drained resume");
    assert!(drained.drained);
    assert_eq!(drained.salvaged_cells, 3, "drain must not lose salvage");
    assert_eq!(run_to_completion(&driver, &spec, &path), reference);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journaled_shards_merge_byte_identical_to_the_unsharded_run() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let reference = bytes(&driver.run(&spec).expect("uninterrupted run"));
    let dir = scratch("shards");

    let mut shards = Vec::new();
    for k in 1..=2usize {
        let path = dir.join(format!("shard{k}.journal"));
        // Interrupt each shard once mid-way before finishing it, so the
        // merged result also exercises salvage.
        let _ = driver
            .run_journal(
                &spec,
                ShardSpec::new(k, 2).unwrap(),
                &path,
                &JournalOptions {
                    limit: Some(1),
                    ..Default::default()
                },
            )
            .expect("partial shard");
        let done = driver
            .run_journal(
                &spec,
                ShardSpec::new(k, 2).unwrap(),
                &path,
                &JournalOptions::default(),
            )
            .expect("finished shard");
        assert_eq!(done.remaining, 0);
        // Journals merge directly: the report is compiled from the
        // journal bytes, not from a separately written JSON artifact.
        shards.push(
            journal::read_journal(&path)
                .expect("read")
                .to_shard_report(),
        );
    }
    let merged = bytes(&merge_shards(&shards).expect("merge"));
    assert_eq!(
        merged, reference,
        "journaled shards must merge byte-identically"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_resume_refuses_foreign_spec_and_geometry() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let dir = scratch("mismatch");
    let path = dir.join("sweep.journal");
    let _ = driver
        .run_journal(
            &spec,
            ShardSpec::full(),
            &path,
            &JournalOptions {
                limit: Some(1),
                ..Default::default()
            },
        )
        .expect("seed journal");

    let foreign = CampaignSpec::from_json(&SPEC_JSON.replace("0.05", "0.25")).unwrap();
    let err = driver
        .run_journal(
            &foreign,
            ShardSpec::full(),
            &path,
            &JournalOptions::default(),
        )
        .expect_err("foreign spec must be refused")
        .to_string();
    assert!(err.contains("different campaign"), "{err}");

    let err = driver
        .run_journal(
            &spec,
            ShardSpec::new(2, 2).unwrap(),
            &path,
            &JournalOptions::default(),
        )
        .expect_err("different geometry must be refused")
        .to_string();
    assert!(err.contains("shard"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Journal-resume identity across worker counts and shard
    /// partitions: for random seeds and cut points, interrupting at the
    /// cut and resuming yields the same merged bytes as the run that
    /// was never interrupted — with `--jobs 1` and `--jobs 4`, unsharded
    /// and as a 2-shard partition.
    #[test]
    fn interrupted_journal_runs_converge_to_the_uninterrupted_bytes(
        base in 0u64..500,
        cut in 1usize..7,
        four_jobs: bool,
    ) {
        let jobs = if four_jobs { 4usize } else { 1 };
        let json = SPEC_JSON.replace(r#""base": 7"#, &format!(r#""base": {base}"#));
        let spec = CampaignSpec::from_json(&json).expect("generated spec");
        let reference = bytes(&SweepDriver::new(1).run(&spec).expect("reference"));
        let driver = SweepDriver::new(jobs);
        let dir = scratch(&format!("prop-{base}-{cut}-{jobs}"));

        // Unsharded: interrupt after `cut` cells, then resume.
        let path = dir.join("full.journal");
        let _ = driver.run_journal(&spec, ShardSpec::full(), &path, &JournalOptions {
            limit: Some(cut), ..Default::default()
        }).expect("partial");
        prop_assert_eq!(&run_to_completion(&driver, &spec, &path), &reference);

        // 2-shard partition, each shard interrupted once.
        let mut shards = Vec::new();
        for k in 1..=2usize {
            let path = dir.join(format!("s{k}.journal"));
            let shard = ShardSpec::new(k, 2).unwrap();
            let _ = driver.run_journal(&spec, shard, &path, &JournalOptions {
                limit: Some(cut.min(2)), ..Default::default()
            }).expect("partial shard");
            let done = driver
                .run_journal(&spec, shard, &path, &JournalOptions::default())
                .expect("finished shard");
            prop_assert_eq!(done.remaining, 0);
            shards.push(done.report);
        }
        let merged = bytes(&merge_shards(&shards).expect("merge"));
        prop_assert_eq!(&merged, &reference);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
