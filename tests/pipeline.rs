//! End-to-end integration: every scheduler × every workflow family ×
//! every platform preset, planned, validated, executed and accounted.

use helios::core::{Engine, EngineConfig};
use helios::energy::account;
use helios::platform::presets;
use helios::sched::{all_schedulers, metrics::ScheduleMetrics};
use helios::workflow::generators::WorkflowClass;

#[test]
fn full_matrix_plans_validate_and_execute() {
    let platforms = [
        presets::workstation(),
        presets::hpc_node(),
        presets::edge_soc(),
    ];
    for platform in &platforms {
        for class in WorkflowClass::ALL {
            let wf = class.generate(40, 11).unwrap();
            for scheduler in all_schedulers() {
                let plan = scheduler.schedule(&wf, platform).unwrap_or_else(|e| {
                    panic!("{}/{class}/{}: {e}", scheduler.name(), platform.name())
                });
                plan.validate(&wf, platform).unwrap_or_else(|e| {
                    panic!(
                        "{}/{class}/{}: invalid plan: {e}",
                        scheduler.name(),
                        platform.name()
                    )
                });
                let report = Engine::new(EngineConfig::default())
                    .execute_plan(platform, &wf, &plan)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{}/{class}/{}: execution: {e}",
                            scheduler.name(),
                            platform.name()
                        )
                    });
                // Ideal execution reproduces the plan makespan.
                let diff = (report.makespan().as_secs() - plan.makespan().as_secs()).abs();
                assert!(
                    diff < 1e-9 * plan.makespan().as_secs().max(1.0),
                    "{}/{class}: realized {} vs planned {}",
                    scheduler.name(),
                    report.makespan(),
                    plan.makespan()
                );
            }
        }
    }
}

#[test]
fn metrics_rank_schedulers_sanely() {
    // Averaged over seeds, HEFT-family SLR must beat the random baseline
    // and stay above the theoretical lower bound.
    let platform = presets::hpc_node();
    let mut heft_slr = 0.0;
    let mut random_slr = 0.0;
    let runs = 10;
    for seed in 0..runs {
        let wf = WorkflowClass::Montage.generate(80, seed).unwrap();
        let schedulers = all_schedulers();
        for s in &schedulers {
            let plan = s.schedule(&wf, &platform).unwrap();
            let m = ScheduleMetrics::compute(&plan, &wf, &platform).unwrap();
            assert!(
                m.slr > 0.3,
                "{}: SLR {} below plausible bound",
                s.name(),
                m.slr
            );
            match s.name() {
                "heft" => heft_slr += m.slr,
                "random" => random_slr += m.slr,
                _ => {}
            }
        }
    }
    assert!(
        heft_slr < random_slr,
        "HEFT mean SLR {} must beat random {}",
        heft_slr / runs as f64,
        random_slr / runs as f64
    );
}

#[test]
fn energy_accounting_consistent_across_crates() {
    let platform = presets::hpc_node();
    let wf = WorkflowClass::LigoInspiral.generate(60, 3).unwrap();
    for scheduler in all_schedulers() {
        let plan = scheduler.schedule(&wf, &platform).unwrap();
        let report = Engine::new(EngineConfig::default())
            .execute_plan(&platform, &wf, &plan)
            .unwrap();
        // The engine's embedded energy report must match a fresh
        // accounting of the realized schedule.
        let fresh = account(report.schedule(), &wf, &platform, false).unwrap();
        assert_eq!(report.energy(), &fresh, "{}", scheduler.name());
        assert!(fresh.total_j() > 0.0);
        assert!(fresh.edp() > 0.0);
    }
}

#[test]
fn cluster_scales_down_makespan() {
    // More nodes => shorter makespan for a wide workflow (until width
    // saturates), never longer.
    let wf = WorkflowClass::CyberShake.generate(120, 5).unwrap();
    let mut last = f64::INFINITY;
    for nodes in [1, 2, 4, 8] {
        let platform = presets::cluster(nodes);
        let scheduler = helios::sched::HeftScheduler::default();
        let report = Engine::new(EngineConfig::default())
            .run(&platform, &wf, &scheduler)
            .unwrap();
        let m = report.makespan().as_secs();
        assert!(
            m <= last * 1.05,
            "{nodes} nodes: {m} should not regress past {last}"
        );
        last = m;
    }
}
