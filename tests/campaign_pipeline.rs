//! Campaign generation feeding the ensemble runner — the full
//! "discovery campaign" pipeline across four crates.

use helios::core::{EngineConfig, EnsembleMember, EnsemblePolicy, EnsembleRunner};
use helios::platform::presets;
use helios::sim::SimTime;
use helios::workflow::generators::campaign::{generate_campaign, CampaignConfig};

fn members_from_campaign(seed: u64) -> Vec<EnsembleMember> {
    let config = CampaignConfig {
        submissions: 5,
        size_range: (40, 80),
        ..Default::default()
    };
    generate_campaign(&config, seed)
        .unwrap()
        .into_iter()
        .map(|s| EnsembleMember {
            workflow: s.workflow,
            arrival: SimTime::from_secs(s.arrival_secs),
            priority: s.priority,
        })
        .collect()
}

#[test]
fn generated_campaigns_run_under_every_policy() {
    let platform = presets::hpc_node();
    for seed in [1, 2] {
        let members = members_from_campaign(seed);
        let total_tasks: usize = members.iter().map(|m| m.workflow.num_tasks()).sum();
        for policy in [
            EnsemblePolicy::Fifo,
            EnsemblePolicy::Priority,
            EnsemblePolicy::FairShare,
        ] {
            let report = EnsembleRunner::new(EngineConfig::default(), policy)
                .run(&platform, &members)
                .unwrap();
            let placed: usize = report
                .members
                .iter()
                .map(|m| m.schedule.placements().len())
                .sum();
            assert_eq!(placed, total_tasks, "{policy:?} seed {seed}");
            // No member starts before its arrival.
            for (m, rep) in members.iter().zip(&report.members) {
                assert!(
                    rep.started >= m.arrival,
                    "{policy:?}: member started {} before arrival {}",
                    rep.started,
                    m.arrival
                );
            }
            assert!(report.total_energy_j > 0.0);
            assert!(report.makespan.as_secs() > 0.0);
        }
    }
}

#[test]
fn campaign_runs_are_deterministic() {
    let platform = presets::workstation();
    let members = members_from_campaign(7);
    let a = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::FairShare)
        .run(&platform, &members)
        .unwrap();
    let b = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::FairShare)
        .run(&platform, &members)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn work_conservation_across_policies() {
    // Total busy time (Σ placement durations) is policy-independent in
    // the ideal configuration: arbitration changes *when*, not *how
    // much* — modulo device choice, which may shift per-device speed.
    // We assert the weaker, exact invariant: every policy executes the
    // same task multiset.
    let platform = presets::hpc_node();
    let members = members_from_campaign(3);
    let counts: Vec<usize> = [
        EnsemblePolicy::Fifo,
        EnsemblePolicy::Priority,
        EnsemblePolicy::FairShare,
    ]
    .into_iter()
    .map(|policy| {
        EnsembleRunner::new(EngineConfig::default(), policy)
            .run(&platform, &members)
            .unwrap()
            .members
            .iter()
            .map(|m| m.schedule.placements().len())
            .sum()
    })
    .collect();
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}
