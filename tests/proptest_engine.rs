//! Property tests of the execution layer: for random workflows,
//! platforms and engine configurations, runs complete, respect
//! precedence, and obey the documented monotonicities.

use proptest::prelude::*;

use helios::core::{Engine, EngineConfig, OnlinePolicy, OnlineRunner};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Scheduler};
use helios::workflow::generators::synthetic::{layered_random, LayeredConfig};
use helios::workflow::Workflow;

fn wf(levels: usize, width: usize, seed: u64) -> Workflow {
    layered_random(
        &LayeredConfig {
            levels,
            width,
            edge_prob: 0.4,
            ..LayeredConfig::default()
        },
        seed,
    )
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid plan executes to completion under any (sane) engine
    /// configuration, and the realized schedule respects precedence.
    #[test]
    fn engine_always_completes_and_orders_events(
        levels in 1usize..5,
        width in 1usize..5,
        seed in 0u64..200,
        noise in 0.0f64..0.5,
        contention: bool,
        caching: bool,
    ) {
        let wf = wf(levels, width, seed);
        let platform = presets::workstation();
        let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
        let config = EngineConfig {
            noise_cv: noise,
            seed,
            link_contention: contention,
            data_caching: caching,
            ..Default::default()
        };
        let report = Engine::new(config).execute_plan(&platform, &wf, &plan).unwrap();
        prop_assert_eq!(report.schedule().placements().len(), wf.num_tasks());
        for p in report.schedule().placements() {
            for &e in wf.predecessors(p.task) {
                let edge = wf.edge(e);
                let pred = report.schedule().placement(edge.src).unwrap();
                prop_assert!(pred.finish.as_secs() <= p.start.as_secs() + 1e-9,
                             "{} started before {} finished", p.task, edge.src);
            }
        }
        // Makespan bounded below by the longest single placement.
        let longest = report.schedule().placements().iter()
            .map(|p| p.duration().as_secs())
            .fold(0.0f64, f64::max);
        prop_assert!(report.makespan().as_secs() >= longest - 1e-9);
    }

    /// The online dispatcher completes any workflow and never places a
    /// task before its inputs exist.
    #[test]
    fn online_always_completes(
        levels in 1usize..5,
        width in 1usize..5,
        seed in 0u64..200,
        noise in 0.0f64..0.5,
    ) {
        let wf = wf(levels, width, seed);
        let platform = presets::workstation();
        let config = EngineConfig {
            noise_cv: noise,
            seed,
            ..Default::default()
        };
        let report = OnlineRunner::new(config, OnlinePolicy::Jit)
            .run(&platform, &wf)
            .unwrap();
        prop_assert_eq!(report.schedule().placements().len(), wf.num_tasks());
        for p in report.schedule().placements() {
            for &e in wf.predecessors(p.task) {
                let edge = wf.edge(e);
                let pred = report.schedule().placement(edge.src).unwrap();
                prop_assert!(pred.finish.as_secs() <= p.start.as_secs() + 1e-9);
            }
        }
    }

    /// Data caching never increases makespan and never increases the
    /// transfer count (with unified product sizes this is exact).
    #[test]
    fn caching_is_monotone(
        levels in 2usize..5,
        width in 2usize..5,
        seed in 0u64..200,
        contention: bool,
    ) {
        let wf = wf(levels, width, seed);
        let platform = presets::hpc_node();
        let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
        let plain_cfg = EngineConfig {
            link_contention: contention,
            ..Default::default()
        };
        let mut cached_cfg = plain_cfg.clone();
        cached_cfg.data_caching = true;
        let plain = Engine::new(plain_cfg).execute_plan(&platform, &wf, &plan).unwrap();
        let cached = Engine::new(cached_cfg).execute_plan(&platform, &wf, &plan).unwrap();
        prop_assert!(cached.transfers().count <= plain.transfers().count);
        prop_assert!(
            cached.makespan().as_secs() <= plain.makespan().as_secs() + 1e-9,
            "caching slowed the run: {} vs {}",
            cached.makespan(), plain.makespan()
        );
    }

    /// Fault-free reports are identical regardless of the retry budget.
    #[test]
    fn retry_budget_is_inert_without_faults(
        seed in 0u64..100,
        budget in 0u32..100,
    ) {
        let wf = wf(3, 3, seed);
        let platform = presets::workstation();
        let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();
        let a = Engine::new(EngineConfig::default())
            .execute_plan(&platform, &wf, &plan)
            .unwrap();
        // Faults configured with an astronomically long MTBF never fire.
        let config = EngineConfig {
            faults: Some(
                helios::core::FaultConfig::new(1e15, helios::sim::SimDuration::ZERO, budget)
                    .unwrap(),
            ),
            ..Default::default()
        };
        let b = Engine::new(config).execute_plan(&platform, &wf, &plan).unwrap();
        prop_assert_eq!(a.schedule(), b.schedule());
        prop_assert_eq!(b.failures(), 0);
    }
}
