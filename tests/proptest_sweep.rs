//! Property test pinning the hot-path rewrite: sweep reports are a
//! pure function of the spec — worker count and shard geometry never
//! leak into the bytes, across random seed bases and engine knobs.
//!
//! This is the campaign-level safety net for the arena/batching work in
//! `helios_core::exec`: any nondeterminism the index-based state or the
//! batched event queue introduced would show up here as a byte diff
//! between the sequential reference and the parallel or sharded runs.

use proptest::prelude::*;

use helios_core::{merge_shards, CampaignSpec, ShardSpec, SweepDriver, SweepReport};

fn spec_json(base: u64, noise_cv: f64, caching: bool, contention: bool) -> String {
    format!(
        r#"{{
            "name": "prop-identity",
            "families": ["montage", "epigenomics"],
            "platforms": ["workstation"],
            "schedulers": ["heft", "round-robin"],
            "seeds": {{"base": {base}, "count": 2}},
            "tasks": 18,
            "noise_cv": {noise_cv},
            "link_contention": {contention},
            "data_caching": {caching}
        }}"#
    )
}

fn bytes(report: &SweepReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random seeds and engine knobs: `--jobs 1` vs `--jobs 4` and
    /// the 1/1 vs {1/2, 2/2} partitions all produce the same bytes.
    #[test]
    fn sweep_reports_are_jobs_and_shard_invariant(
        base in 0u64..1000,
        noise in 0.0f64..0.3,
        caching: bool,
        contention: bool,
    ) {
        let spec = CampaignSpec::from_json(&spec_json(base, noise, caching, contention))
            .expect("generated spec is valid");
        let reference = bytes(&SweepDriver::new(1).run(&spec).expect("sequential run"));

        let parallel = bytes(&SweepDriver::new(4).run(&spec).expect("parallel run"));
        prop_assert_eq!(&reference, &parallel, "--jobs must not change the bytes");

        let s1 = SweepDriver::new(1)
            .run_shard(&spec, ShardSpec::new(1, 2).unwrap())
            .expect("shard 1/2");
        let s2 = SweepDriver::new(4)
            .run_shard(&spec, ShardSpec::new(2, 2).unwrap())
            .expect("shard 2/2");
        let merged = bytes(&merge_shards(&[s2, s1]).expect("merge"));
        prop_assert_eq!(&reference, &merged, "sharding must not change the bytes");
    }
}
