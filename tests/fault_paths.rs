//! Resilience battery: fault paths through every runner and policy.
//!
//! Seeded fault injection must exercise all recovery paths: transient
//! failures that retry to completion, retry budgets that exhaust into
//! [`EngineError::RetriesExhausted`], byte-identical reports for
//! identical seeds under every recovery policy, exactly-once replica
//! cancellation, checkpoint frequency reducing wasted work, typed
//! whole-platform loss, and the monotonicity guarantee that a faulty
//! run can never finish earlier than its fault-free twin.

use helios_core::{
    merge_shards, CampaignSpec, Engine, EngineConfig, EngineError, FailureDomain, FailureModel,
    FaultConfig, LinkFaultModel, OnlinePolicy, OnlineRunner, RecoveryPolicy, ResilienceConfig,
    ResilientRunner, ShardSpec, SweepDriver,
};
use helios_platform::presets;
use helios_platform::{DeviceBuilder, DeviceKind, InterconnectBuilder, Platform, PlatformBuilder};
use helios_sched::HeftScheduler;
use helios_sim::SimDuration;
use helios_workflow::generators::montage;
use helios_workflow::Workflow;

fn config(mtbf_secs: f64, max_retries: u32, seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        noise_cv: 0.05,
        faults: Some(
            FaultConfig::new(mtbf_secs, SimDuration::from_secs(0.001), max_retries)
                .expect("fault parameters are valid"),
        ),
        ..EngineConfig::default()
    }
}

fn resilient_config(seed: u64, failures: FailureModel, policy: RecoveryPolicy) -> EngineConfig {
    EngineConfig {
        seed,
        noise_cv: 0.1,
        resilience: Some(ResilienceConfig::new(failures, policy)),
        ..EngineConfig::default()
    }
}

/// One representative instance of each of the four recovery policies.
fn all_policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.001,
            factor: 2.0,
            cap_secs: 0.01,
            max_retries: 10_000,
        },
        RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 10_000,
        },
        RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.005,
            overhead_secs: 0.0002,
            max_retries: 10_000,
        },
        RecoveryPolicy::Reschedule {
            scheduler: "heft".into(),
            overhead_secs: 0.001,
            max_retries: 10_000,
        },
    ]
}

#[test]
fn transient_faults_retry_to_completion() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    for policy in [OnlinePolicy::Jit, OnlinePolicy::RankedJit] {
        let clean = OnlineRunner::new(
            EngineConfig {
                seed: 3,
                noise_cv: 0.05,
                ..EngineConfig::default()
            },
            policy,
        )
        .run(&platform, &wf)
        .expect("fault-free run");
        assert_eq!(
            clean.failures(),
            0,
            "{}: no faults configured",
            policy.as_str()
        );
        assert_eq!(
            clean.retries(),
            0,
            "{}: no faults configured",
            policy.as_str()
        );

        // A tight-but-survivable MTBF with a deep retry budget: the run
        // must complete, having actually hit (and recovered from)
        // failures along the way. (Preset workflows have millisecond
        // makespans, so the MTBF must sit in the same decade to bite.)
        let report = OnlineRunner::new(config(0.02, 10_000, 3), policy)
            .run(&platform, &wf)
            .expect("faulty run survives with a deep retry budget");
        assert!(
            report.failures() > 0,
            "{}: a 20 ms MTBF must inject failures",
            policy.as_str()
        );
        assert!(
            report.retries() > 0,
            "{}: every recovered failure is a retry",
            policy.as_str()
        );
        assert!(
            report.makespan() > clean.makespan(),
            "{}: rework and restart overhead must cost wall-clock time",
            policy.as_str()
        );
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    // An MTBF far below any task duration makes every attempt fail with
    // near certainty; with a tiny budget the run must abort.
    let err = OnlineRunner::new(config(0.005, 2, 3), OnlinePolicy::Jit)
        .run(&platform, &wf)
        .expect_err("2 retries cannot survive a 5 ms MTBF");
    match err {
        EngineError::RetriesExhausted { attempts, .. } => {
            assert_eq!(attempts, 3, "budget of 2 retries = 3 attempts");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    let run = |seed: u64| {
        OnlineRunner::new(config(0.02, 10_000, seed), OnlinePolicy::RankedJit)
            .run(&platform, &wf)
            .expect("faulty run")
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "identical seeds must give bit-identical reports");
    assert!(a.failures() > 0, "the fault process must actually fire");
    assert_eq!(a.failures(), b.failures());
    assert_eq!(a.retries(), b.retries());

    let c = run(10);
    assert_ne!(
        a, c,
        "a different seed must draw a different fault/noise process"
    );
}

#[test]
fn every_policy_is_byte_identical_per_seed() {
    let platform = presets::hpc_node();
    let wf = montage(50, 2).expect("montage");
    let sched = HeftScheduler::default();
    for policy in all_policies() {
        let mut fm = FailureModel::exponential(0.005);
        fm.degraded_prob = 0.1;
        fm.degraded_slowdown = 3.0;
        fm.degraded_repair_secs = 0.005;
        fm.restart_overhead_secs = 0.0005;
        let run = |seed: u64| {
            ResilientRunner::new(resilient_config(seed, fm.clone(), policy.clone()))
                .run(&platform, &wf, &sched)
                .expect("resilient run completes")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "{}: identical seeds must serialize byte-identically",
            policy.name()
        );
        let m = a.resilience().expect("resilience metrics attached");
        assert!(
            m.transient_failures + m.degraded_failures > 0,
            "{}: the failure process must actually fire",
            policy.name()
        );
        let c = run(8);
        assert_ne!(
            a,
            c,
            "{}: a different seed must realize different failures",
            policy.name()
        );
    }
}

#[test]
fn replicate_k_cancels_losers_exactly_once() {
    let platform = presets::hpc_node();
    let wf = montage(50, 2).expect("montage");
    let cfg = resilient_config(
        5,
        FailureModel::exponential(0.05),
        RecoveryPolicy::ReplicateK {
            replicas: 3,
            max_retries: 10_000,
        },
    );
    let report = ResilientRunner::new(cfg)
        .run(&platform, &wf, &HeftScheduler::default())
        .expect("replicated run completes");
    let m = report.resilience().expect("metrics");
    assert!(m.replicas_cancelled > 0, "losers must be cancelled");
    // Exactly-once accounting: every launched copy either wins its task
    // or is cancelled exactly once — never both, never twice.
    assert_eq!(
        m.replicas_launched,
        wf.num_tasks() as u32 + m.replicas_cancelled,
        "launched = winners + cancelled (exactly-once cancellation)"
    );
}

#[test]
fn checkpoint_frequency_reduces_wasted_work() {
    let platform = presets::workstation();
    let wf = montage(40, 7).expect("montage");
    let sched = HeftScheduler::default();

    // Scale checkpoint intervals to the workload: take the mean planned
    // task duration so intervals straddle it (several snapshots per
    // attempt at the short end, none at the long end).
    let plan = helios_sched::Scheduler::schedule(&sched, &wf, &platform).expect("plan");
    let mean_task_secs = plan
        .placements()
        .iter()
        .map(|p| p.duration().as_secs())
        .sum::<f64>()
        / plan.placements().len() as f64;
    let intervals = [
        0.25 * mean_task_secs,
        1.0 * mean_task_secs,
        4.0 * mean_task_secs,
    ];

    let mean_wasted = |interval_secs: f64| -> f64 {
        let seeds = 0..8u64;
        let total: f64 = seeds
            .map(|seed| {
                let cfg = resilient_config(
                    seed,
                    FailureModel::exponential(0.01),
                    RecoveryPolicy::CheckpointRestart {
                        interval_secs,
                        overhead_secs: 0.02 * mean_task_secs,
                        max_retries: 10_000,
                    },
                );
                ResilientRunner::new(cfg)
                    .execute_plan(&platform, &wf, &plan)
                    .expect("checkpointed run completes")
                    .resilience()
                    .expect("metrics")
                    .wasted_work_secs
            })
            .sum();
        total / 8.0
    };

    let wasted: Vec<f64> = intervals.iter().map(|&i| mean_wasted(i)).collect();
    assert!(
        wasted[0] <= wasted[1] && wasted[1] <= wasted[2],
        "mean wasted work must be monotone non-increasing in checkpoint \
         frequency: {wasted:?} for intervals {intervals:?}"
    );
    assert!(
        wasted[0] < wasted[2],
        "frequent checkpoints must strictly beat rare ones on average: {wasted:?}"
    );
}

/// A platform with exactly one CPU and no links.
fn single_device_platform() -> Platform {
    let mut b = PlatformBuilder::new("solo");
    b.add_device(
        DeviceBuilder::new("cpu0", DeviceKind::Cpu)
            .build()
            .expect("device parameters are valid"),
    );
    b.interconnect(InterconnectBuilder::new().build());
    b.build().expect("single-device platform is valid")
}

#[test]
fn permanent_loss_of_the_only_device_is_a_typed_error() {
    let platform = single_device_platform();
    let wf = montage(12, 5).expect("montage");
    let mut fm = FailureModel::exponential(0.002);
    fm.permanent_prob = 1.0;
    for policy in all_policies() {
        // ReplicateK clamps to the feasible-device count, so it
        // degenerates to a single copy here — the loss path is the same.
        let cfg = resilient_config(3, fm.clone(), policy.clone());
        let err = ResilientRunner::new(cfg)
            .run(&platform, &wf, &HeftScheduler::default())
            .expect_err("losing the only device cannot complete");
        match err {
            EngineError::AllDevicesLost {
                completed, total, ..
            } => {
                assert!(
                    completed < total,
                    "{}: some tasks must be left unfinished",
                    policy.name()
                );
            }
            other => panic!("{}: expected AllDevicesLost, got {other:?}", policy.name()),
        }
    }
}

/// Satellite regression: charging retry time (and backoff delay) to the
/// device timeline means a fault-injected run can never finish earlier
/// than the fault-free run of the same seed.
#[test]
fn faulty_runs_never_finish_earlier_than_fault_free() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    let sched = HeftScheduler::default();

    for seed in 0..6u64 {
        // Static engine, legacy flat-retry fault model.
        let clean = Engine::new(EngineConfig {
            seed,
            noise_cv: 0.05,
            ..EngineConfig::default()
        })
        .run(&platform, &wf, &sched)
        .expect("clean engine run");
        let faulty = Engine::new(config(0.02, 10_000, seed))
            .run(&platform, &wf, &sched)
            .expect("faulty engine run");
        assert!(
            faulty.makespan() >= clean.makespan(),
            "seed {seed}: static plan — faults cost {} vs clean {}",
            faulty.makespan(),
            clean.makespan()
        );

        // ResilientRunner: degradation vs its own fault-free baseline is
        // non-negative for transient/degraded failure domains.
        for policy in all_policies() {
            let mut fm = FailureModel::exponential(0.02);
            fm.degraded_prob = 0.2;
            fm.degraded_slowdown = 2.0;
            fm.degraded_repair_secs = 0.02;
            let report = ResilientRunner::new(resilient_config(seed, fm, policy.clone()))
                .run(&platform, &wf, &sched)
                .expect("resilient run completes");
            let m = report.resilience().expect("metrics");
            assert!(
                m.makespan_degradation >= 0.0,
                "seed {seed} {}: faults can only delay completion, got {}",
                policy.name(),
                m.makespan_degradation
            );
        }
    }
}

/// A rack-style correlated failure domain over two GPUs and the NVLink
/// mesh of `hpc_node`, striking often enough to bite a millisecond-scale
/// makespan.
fn rack_domain() -> FailureDomain {
    FailureDomain {
        kind: "rack".into(),
        name: "rack0".into(),
        devices: vec!["gpu0".into(), "gpu1".into()],
        links: vec!["nvlink".into()],
        mttf_secs: 0.002,
        weibull_shape: None,
        degraded_prob: 0.3,
        permanent_prob: 0.0,
        outage_secs: 0.005,
    }
}

/// Monotonicity holds per fault class, not just in aggregate: link-only
/// faults, correlated domain strikes and device-only failures must each
/// fire (their own counters prove it) and must each only ever delay
/// completion relative to the fault-free twin.
#[test]
fn every_fault_class_fires_and_never_beats_fault_free() {
    let platform = presets::hpc_node();
    let wf = montage(50, 2).expect("montage");
    let sched = HeftScheduler::default();
    // An astronomically long device MTTF isolates the other classes.
    let never = 1.0e12;

    let classes: [(&str, ResilienceConfig); 3] = [
        (
            "link-only",
            ResilienceConfig::new(
                FailureModel::exponential(never),
                RecoveryPolicy::RetryBackoff {
                    base_secs: 0.001,
                    factor: 2.0,
                    cap_secs: 0.01,
                    max_retries: 10_000,
                },
            )
            .with_link_faults(LinkFaultModel::exponential(0.02)),
        ),
        (
            "correlated",
            ResilienceConfig::new(
                FailureModel::exponential(never),
                RecoveryPolicy::RetryBackoff {
                    base_secs: 0.001,
                    factor: 2.0,
                    cap_secs: 0.01,
                    max_retries: 10_000,
                },
            )
            .with_domains(vec![rack_domain()]),
        ),
        (
            "device-only",
            ResilienceConfig::new(
                FailureModel::exponential(0.02),
                RecoveryPolicy::RetryBackoff {
                    base_secs: 0.001,
                    factor: 2.0,
                    cap_secs: 0.01,
                    max_retries: 10_000,
                },
            ),
        ),
    ];

    for (class, res) in classes {
        let mut fired = 0u32;
        for seed in 0..6u64 {
            let cfg = EngineConfig {
                seed,
                noise_cv: 0.1,
                resilience: Some(res.clone()),
                ..EngineConfig::default()
            };
            let report = ResilientRunner::new(cfg)
                .run(&platform, &wf, &sched)
                .expect("faulty run completes");
            let m = report.resilience().expect("metrics");
            assert!(
                m.makespan_degradation >= 0.0,
                "{class} seed {seed}: faults can only delay completion, got {}",
                m.makespan_degradation
            );
            match class {
                "link-only" => {
                    fired += m.link_faults;
                    assert_eq!(
                        m.transient_failures + m.degraded_failures + m.permanent_failures,
                        0,
                        "{class} seed {seed}: device failures must stay off"
                    );
                }
                // Domain strikes abort member work through the same
                // transient/degraded counters; only the event count
                // proves the *correlated* process fired.
                "correlated" => fired += m.domain_events,
                _ => fired += m.transient_failures + m.degraded_failures,
            }
        }
        assert!(fired > 0, "{class}: the fault process must actually fire");
    }
}

/// A three-class fault sweep spec (device failures + link faults +
/// a correlated rack domain) over the workstation preset.
fn fault_sweep_spec(base_seed: u64) -> CampaignSpec {
    CampaignSpec::from_json(&format!(
        r#"{{
            "name": "fault-paths",
            "families": ["montage"],
            "platforms": ["workstation"],
            "schedulers": ["heft"],
            "seeds": {{"base": {base_seed}, "count": 4}},
            "tasks": 30,
            "noise_cv": 0.1,
            "resilience": {{
                "mttf_secs": 0.02,
                "degraded_prob": 0.1,
                "degraded_repair_secs": 0.01,
                "restart_overhead_secs": 0.0005,
                "policy": {{"kind": "retry-backoff", "base_secs": 0.0005,
                            "factor": 2.0, "cap_secs": 0.005,
                            "max_retries": 10000}}
            }},
            "interconnect_faults": {{
                "distribution": "exponential",
                "mttf_secs": 0.02,
                "degraded_prob": 0.3,
                "outage_secs": 0.005
            }},
            "failure_domains": [{{
                "kind": "rack", "name": "r0",
                "devices": ["cpu1", "gpu0"], "links": ["pcie3-x16"],
                "mttf_secs": 0.02, "degraded_prob": 0.5,
                "outage_secs": 0.005
            }}]
        }}"#
    ))
    .expect("fault sweep spec parses")
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// The full fault stack — device failures, link faults, correlated
    /// domain strikes — stays byte-identical per seed for every worker
    /// count and shard partition of the sweep grid.
    #[test]
    fn fault_sweeps_are_jobs_and_shard_invariant(base_seed in 0u64..1000) {
        let spec = fault_sweep_spec(base_seed);
        let reference = SweepDriver::new(1).run(&spec).expect("sequential sweep");
        let reference_json = serde_json::to_string(&reference).expect("serialize");

        let par = SweepDriver::new(4).run(&spec).expect("parallel sweep");
        proptest::prop_assert_eq!(
            &reference_json,
            &serde_json::to_string(&par).expect("serialize"),
            "--jobs must not change fault realizations"
        );

        for count in [2usize, 4] {
            let shards: Vec<_> = (1..=count)
                .map(|k| {
                    SweepDriver::new(2)
                        .run_shard(&spec, ShardSpec::new(k, count).expect("shard"))
                        .expect("shard sweep")
                })
                .collect();
            let merged = merge_shards(&shards).expect("merge");
            proptest::prop_assert_eq!(
                &reference_json,
                &serde_json::to_string(&merged).expect("serialize"),
                "a {}-way shard partition must merge byte-identically",
                count
            );
        }

        // The spec's fault processes must actually bite somewhere in the
        // grid, or the invariance above is vacuous.
        proptest::prop_assert!(
            reference
                .cells
                .iter()
                .any(|c| c.failures > 0 || c.reroutes > 0 || c.partition_downtime_secs > 0.0),
            "no fault fired anywhere in the sweep grid"
        );
    }
}

/// The fault process is part of the workload description, not ambient
/// randomness: the same resilient configuration must reproduce exactly
/// when the workflow is re-executed from a fresh `Workflow` value.
#[test]
fn resilient_reports_survive_workflow_reconstruction() {
    let platform = presets::hpc_node();
    let sched = HeftScheduler::default();
    let run = |wf: &Workflow| {
        ResilientRunner::new(resilient_config(
            11,
            FailureModel::weibull(0.04, 1.5),
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.001,
                factor: 2.0,
                cap_secs: 0.01,
                max_retries: 10_000,
            },
        ))
        .run(&platform, wf, &sched)
        .expect("resilient run completes")
    };
    let a = run(&montage(50, 2).expect("montage"));
    let b = run(&montage(50, 2).expect("montage"));
    assert_eq!(a, b, "reports must not depend on Workflow identity");
}
