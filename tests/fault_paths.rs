//! Fault-path tests for the online dispatcher.
//!
//! Seeded fault injection through [`OnlineRunner`] must exercise all
//! three paths: transient failures that retry to completion, retry
//! budgets that exhaust into [`EngineError::RetriesExhausted`], and
//! bit-identical reports for identical seeds (the fault process is part
//! of the deterministic simulation, not ambient randomness).

use helios_core::{EngineConfig, EngineError, FaultConfig, OnlinePolicy, OnlineRunner};
use helios_platform::presets;
use helios_sim::SimDuration;
use helios_workflow::generators::montage;

fn config(mtbf_secs: f64, max_retries: u32, seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        noise_cv: 0.05,
        faults: Some(
            FaultConfig::new(mtbf_secs, SimDuration::from_secs(0.001), max_retries)
                .expect("fault parameters are valid"),
        ),
        ..EngineConfig::default()
    }
}

#[test]
fn transient_faults_retry_to_completion() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    for policy in [OnlinePolicy::Jit, OnlinePolicy::RankedJit] {
        let clean = OnlineRunner::new(
            EngineConfig {
                seed: 3,
                noise_cv: 0.05,
                ..EngineConfig::default()
            },
            policy,
        )
        .run(&platform, &wf)
        .expect("fault-free run");
        assert_eq!(
            clean.failures(),
            0,
            "{}: no faults configured",
            policy.as_str()
        );
        assert_eq!(
            clean.retries(),
            0,
            "{}: no faults configured",
            policy.as_str()
        );

        // A tight-but-survivable MTBF with a deep retry budget: the run
        // must complete, having actually hit (and recovered from)
        // failures along the way.
        let report = OnlineRunner::new(config(0.5, 100, 3), policy)
            .run(&platform, &wf)
            .expect("faulty run survives with a deep retry budget");
        assert!(
            report.failures() > 0,
            "{}: a 0.5 s MTBF must inject failures",
            policy.as_str()
        );
        assert!(
            report.retries() > 0,
            "{}: every recovered failure is a retry",
            policy.as_str()
        );
        assert!(
            report.makespan() > clean.makespan(),
            "{}: rework and restart overhead must cost wall-clock time",
            policy.as_str()
        );
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    // An MTBF far below any task duration makes every attempt fail with
    // near certainty; with a tiny budget the run must abort.
    let err = OnlineRunner::new(config(0.005, 2, 3), OnlinePolicy::Jit)
        .run(&platform, &wf)
        .expect_err("2 retries cannot survive a 5 ms MTBF");
    match err {
        EngineError::RetriesExhausted { attempts, .. } => {
            assert_eq!(attempts, 3, "budget of 2 retries = 3 attempts");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    let run = |seed: u64| {
        OnlineRunner::new(config(0.5, 100, seed), OnlinePolicy::RankedJit)
            .run(&platform, &wf)
            .expect("faulty run")
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "identical seeds must give bit-identical reports");
    assert_eq!(a.failures(), b.failures());
    assert_eq!(a.retries(), b.retries());

    let c = run(10);
    assert_ne!(
        a, c,
        "a different seed must draw a different fault/noise process"
    );
}
