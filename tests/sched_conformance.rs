//! Scheduler-conformance battery: every scheduler, random DAGs.
//!
//! For every scheduler shipped in `helios-sched`, on randomized DAG
//! shapes (layered, fork-join, in-tree, out-tree, Gaussian
//! elimination) across all platform presets, the produced schedule
//! must be *conformant*:
//!
//! 1. every task is placed exactly once,
//! 2. no two tasks overlap on one device,
//! 3. precedence plus transfer delays are respected,
//! 4. every placement is feasible (memory, trust, modeled duration),
//! 5. the reported makespan equals the maximum finish time.
//!
//! Checks 2–4 are [`Schedule::validate`]; 1 and 5 are asserted
//! directly. The battery runs 100 property cases, each covering the
//! whole lineup, so every scheduler sees at least 100 random DAGs.

use proptest::prelude::*;

use helios_platform::{presets, Platform};
use helios_sched::{all_schedulers, AnnealingScheduler, Scheduler};
use helios_sim::SimTime;
use helios_workflow::generators::synthetic::{
    self, fork_join, gaussian_elimination, in_tree, out_tree,
};
use helios_workflow::Workflow;

/// The battery lineup: every scheduler of [`all_schedulers`], with the
/// annealing iteration budget trimmed so 100 debug-mode cases stay
/// single-core friendly. [`lineup_covers_every_shipped_scheduler`]
/// pins that no scheduler can dodge the battery.
fn lineup() -> Vec<Box<dyn Scheduler>> {
    let mut schedulers = Vec::new();
    for s in all_schedulers() {
        if s.name() == "annealing" {
            schedulers.push(Box::new(AnnealingScheduler::new(120, 0)) as Box<dyn Scheduler>);
        } else {
            schedulers.push(s);
        }
    }
    schedulers
}

#[test]
fn lineup_covers_every_shipped_scheduler() {
    let battery: Vec<String> = lineup().iter().map(|s| s.name().to_owned()).collect();
    for s in all_schedulers() {
        assert!(
            battery.iter().any(|n| n == s.name()),
            "scheduler {:?} is missing from the conformance battery",
            s.name()
        );
    }
}

fn platform_for(idx: usize) -> Platform {
    match idx % 4 {
        0 => presets::workstation(),
        1 => presets::hpc_node(),
        2 => presets::edge_soc(),
        _ => presets::cluster(2),
    }
}

/// A random DAG whose shape family and dimensions derive from the
/// case's seed.
fn random_workflow(shape: usize, seed: u64) -> Workflow {
    let gflop = 1.0 + (seed % 7) as f64;
    let bytes = 1e6 + (seed % 5) as f64 * 4e6;
    let wf = match shape % 5 {
        0 => synthetic::layered_random(
            &synthetic::LayeredConfig {
                levels: 2 + (seed % 4) as usize,
                width: 1 + (seed % 5) as usize,
                edge_prob: 0.2 + (seed % 8) as f64 / 10.0,
                // Keep working sets small enough for every preset device
                // (bytes_touched scales with gflop); the defaults would
                // make tasks that fit nowhere on `edge_soc`.
                mean_gflop: gflop,
                mean_bytes: bytes,
                ..synthetic::LayeredConfig::default()
            },
            seed,
        ),
        1 => fork_join(
            1 + (seed % 3) as usize,
            2 + (seed % 4) as usize,
            gflop,
            bytes,
            seed,
        ),
        2 => in_tree(
            1 + (seed % 3) as usize,
            2 + (seed % 2) as usize,
            gflop,
            bytes,
            seed,
        ),
        3 => out_tree(
            1 + (seed % 3) as usize,
            2 + (seed % 2) as usize,
            gflop,
            bytes,
            seed,
        ),
        _ => gaussian_elimination(2 + (seed % 4) as usize, gflop, bytes, seed),
    };
    wf.expect("generator parameters are in range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn every_scheduler_is_conformant_on_random_dags(
        shape in 0usize..5,
        seed in 0u64..1_000_000,
        platform_idx in 0usize..4,
    ) {
        let wf = random_workflow(shape, seed);
        let platform = platform_for(platform_idx);
        for scheduler in lineup() {
            let ctx = format!(
                "{} on {} (shape {shape}, seed {seed}, {} tasks)",
                scheduler.name(),
                platform.name(),
                wf.num_tasks()
            );
            let plan = scheduler
                .schedule(&wf, &platform)
                .unwrap_or_else(|e| panic!("{ctx}: scheduling failed: {e}"));

            // 1. Every task placed exactly once. Schedule::new dedups by
            // task id, so count equality plus per-task lookup pins it.
            prop_assert_eq!(
                plan.placements().len(),
                wf.num_tasks(),
                "{}: wrong placement count",
                &ctx
            );
            for t in 0..wf.num_tasks() {
                let p = plan
                    .placement(helios_workflow::TaskId(t))
                    .unwrap_or_else(|e| panic!("{ctx}: task {t} unplaced: {e}"));
                prop_assert!(
                    p.finish >= p.start,
                    "{}: task {} finishes before it starts",
                    &ctx,
                    t
                );
            }

            // 2–4. Device overlap, precedence + transfer delays,
            // placement feasibility, modeled durations.
            plan.validate(&wf, &platform)
                .unwrap_or_else(|e| panic!("{ctx}: invalid schedule: {e}"));

            // 5. Makespan equals the maximum finish time.
            let max_finish = plan
                .placements()
                .iter()
                .map(|p| p.finish)
                .max()
                .expect("non-empty schedule");
            prop_assert_eq!(
                plan.makespan(),
                max_finish.saturating_since(SimTime::ZERO),
                "{}: makespan is not the max finish time",
                &ctx
            );
        }
    }
}
