//! Elastic-capacity battery: devices join, drain, get preempted and
//! leave mid-run, across every recovery policy and execution geometry.
//!
//! Seeded capacity plans must exercise the elastic paths: preemptions
//! and drains that migrate work and complete anyway, joins that add
//! capacity mid-flight, byte-identical reports per seed across worker
//! counts and shard partitions, the pinned monotonicity check that a
//! shrink-only plan never beats the static platform under retry-backoff,
//! permanently failed devices staying dead through later capacity
//! events, and whole-platform departure surfacing as the
//! `capacity_exhausted` measurement rather than a driver error.

use helios_core::{
    merge_shards, CampaignSpec, ElasticEvent, ElasticEventKind, ElasticityConfig, EngineConfig,
    EngineError, FailureDomain, FailureModel, IncompleteReason, RecoveryPolicy, ResilienceConfig,
    ResilientRunner, ShardSpec, SweepDriver,
};
use helios_platform::presets;
use helios_platform::{DeviceBuilder, DeviceKind, InterconnectBuilder, Platform, PlatformBuilder};
use helios_sched::HeftScheduler;
use helios_workflow::generators::montage;

/// One representative instance of each of the four recovery policies.
fn all_policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.001,
            factor: 2.0,
            cap_secs: 0.01,
            max_retries: 10_000,
        },
        RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 10_000,
        },
        RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.005,
            overhead_secs: 0.0002,
            max_retries: 10_000,
        },
        RecoveryPolicy::Reschedule {
            scheduler: "heft".into(),
            overhead_secs: 0.001,
            max_retries: 10_000,
        },
    ]
}

/// A benign failure stack (failures never fire) so elasticity is the
/// only perturbation in the run.
fn quiet_resilience(policy: RecoveryPolicy) -> ResilienceConfig {
    ResilienceConfig::new(FailureModel::exponential(1.0e12), policy)
}

fn event(device: &str, at_secs: f64, kind: ElasticEventKind) -> ElasticEvent {
    ElasticEvent {
        device: device.into(),
        at_secs,
        kind,
    }
}

/// A preempt + drain + re-join plan over the workstation preset, timed
/// in the millisecond decade where preset makespans live.
fn churny_plan() -> ElasticityConfig {
    ElasticityConfig {
        events: vec![
            event(
                "cpu1",
                0.002,
                ElasticEventKind::Preempt { notice_secs: 0.001 },
            ),
            event(
                "gpu0",
                0.004,
                ElasticEventKind::Drain {
                    deadline_secs: 0.006,
                },
            ),
            event("cpu1", 0.02, ElasticEventKind::Join),
        ],
        churn: Vec::new(),
    }
}

fn elastic_config(seed: u64, policy: RecoveryPolicy, elasticity: ElasticityConfig) -> EngineConfig {
    EngineConfig {
        seed,
        noise_cv: 0.05,
        resilience: Some(quiet_resilience(policy)),
        elasticity: Some(elasticity),
        ..EngineConfig::default()
    }
}

#[test]
fn capacity_events_fire_under_every_policy_and_are_deterministic() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    let sched = HeftScheduler::default();
    for policy in all_policies() {
        let run = |seed: u64| {
            ResilientRunner::new(elastic_config(seed, policy.clone(), churny_plan()))
                .run(&platform, &wf, &sched)
                .expect("elastic run completes on the surviving devices")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "{}: identical seeds must serialize byte-identically",
            policy.name()
        );
        let m = a.elasticity().expect("elasticity metrics attached");
        assert!(
            m.preemptions >= 1,
            "{}: the preempt must fire, got {m:?}",
            policy.name()
        );
        assert!(
            m.drains >= 1,
            "{}: the drain window must open, got {m:?}",
            policy.name()
        );
        assert!(
            m.departures >= 2,
            "{}: preempt kill + completed drain both depart, got {m:?}",
            policy.name()
        );
        assert!(
            m.capacity_secs > 0.0 && m.capacity_secs.is_finite(),
            "{}: capacity-seconds must integrate to something, got {m:?}",
            policy.name()
        );
        let c = run(8);
        assert_ne!(
            a,
            c,
            "{}: a different seed must realize a different run",
            policy.name()
        );
    }
}

#[test]
fn a_device_whose_first_event_is_a_join_starts_absent() {
    let platform = presets::workstation();
    let wf = montage(40, 3).expect("montage");
    let sched = HeftScheduler::default();
    let policy = all_policies().remove(0);

    let joined = ResilientRunner::new(elastic_config(
        5,
        policy.clone(),
        ElasticityConfig {
            events: vec![event("gpu0", 0.003, ElasticEventKind::Join)],
            churn: Vec::new(),
        },
    ))
    .run(&platform, &wf, &sched)
    .expect("run completes after the join");
    let m = joined.elasticity().expect("metrics");
    assert_eq!(m.joins, 1, "the join must be counted: {m:?}");
    assert_eq!(m.departures, 0, "nothing departs in a join-only plan");
    assert!(
        (0.0..=1.0).contains(&m.join_utilization),
        "join_utilization is a fraction, got {m:?}"
    );

    // The same platform run without elasticity has gpu0 from t = 0; the
    // join-only run spent its opening window two devices strong, so its
    // integrated capacity must be strictly smaller.
    let full_time = joined.makespan().as_secs() * platform.devices().len() as f64;
    assert!(
        m.capacity_secs < full_time,
        "starting absent must cost capacity: {} vs full {}",
        m.capacity_secs,
        full_time
    );
}

/// Pinned monotonicity: a shrink-only plan (preempt, no re-join) under
/// work-conserving retry-backoff never finishes earlier than the static
/// platform of the same seed. Pinned over seeds, not claimed as a
/// theorem — a migration landing on a faster device is ruled out here
/// by the plan's target choice.
#[test]
fn preempt_only_plans_never_beat_the_static_platform_under_retry_backoff() {
    let platform = presets::workstation();
    let wf = montage(40, 11).expect("montage");
    let sched = HeftScheduler::default();
    let policy = RecoveryPolicy::RetryBackoff {
        base_secs: 0.001,
        factor: 2.0,
        cap_secs: 0.01,
        max_retries: 10_000,
    };
    for seed in 0..6u64 {
        let static_run = ResilientRunner::new(EngineConfig {
            seed,
            noise_cv: 0.05,
            resilience: Some(quiet_resilience(policy.clone())),
            ..EngineConfig::default()
        })
        .run(&platform, &wf, &sched)
        .expect("static run completes");
        let shrunk = ResilientRunner::new(elastic_config(
            seed,
            policy.clone(),
            ElasticityConfig {
                events: vec![event(
                    "gpu0",
                    0.002,
                    ElasticEventKind::Preempt { notice_secs: 0.001 },
                )],
                churn: Vec::new(),
            },
        ))
        .run(&platform, &wf, &sched)
        .expect("shrunk run completes");
        assert!(
            shrunk.makespan() >= static_run.makespan(),
            "seed {seed}: losing a device can only delay completion \
             ({} vs {})",
            shrunk.makespan(),
            static_run.makespan()
        );
    }
}

/// Ride-along regression: a device struck permanently by a failure
/// domain and named in a later elasticity event never resurrects — the
/// event is a counted no-op.
#[test]
fn dead_capacity_stays_dead_through_later_joins() {
    let platform = presets::workstation();
    let wf = montage(40, 2).expect("montage");
    let sched = HeftScheduler::default();
    // The domain kills gpu0 permanently almost immediately; the plan
    // tries to preempt and then re-join it long after.
    let resilience = ResilienceConfig::new(
        FailureModel::exponential(1.0e12),
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.001,
            factor: 2.0,
            cap_secs: 0.01,
            max_retries: 10_000,
        },
    )
    .with_domains(vec![FailureDomain {
        kind: "psu".into(),
        name: "p0".into(),
        devices: vec!["gpu0".into()],
        links: Vec::new(),
        mttf_secs: 0.0005,
        weibull_shape: None,
        degraded_prob: 0.0,
        permanent_prob: 1.0,
        outage_secs: 0.001,
    }]);
    let cfg = EngineConfig {
        seed: 4,
        noise_cv: 0.05,
        resilience: Some(resilience),
        elasticity: Some(ElasticityConfig {
            events: vec![
                event(
                    "gpu0",
                    0.05,
                    ElasticEventKind::Preempt { notice_secs: 0.01 },
                ),
                event("gpu0", 0.2, ElasticEventKind::Join),
            ],
            churn: Vec::new(),
        }),
        ..EngineConfig::default()
    };
    let report = ResilientRunner::new(cfg)
        .run(&platform, &wf, &sched)
        .expect("run completes on the surviving CPUs");
    let rm = report.resilience().expect("resilience metrics");
    assert!(
        rm.permanent_failures >= 1,
        "the domain strike must actually kill gpu0: {rm:?}"
    );
    let em = report.elasticity().expect("elasticity metrics");
    assert_eq!(
        em.dead_capacity_events, 2,
        "both events target a dead device and must be counted no-ops: {em:?}"
    );
    assert_eq!(em.joins, 0, "dead capacity must not resurrect: {em:?}");
    assert_eq!(
        em.preemptions, 0,
        "a dead device cannot be preempted: {em:?}"
    );
}

/// A platform with exactly one CPU and no links.
fn single_device_platform() -> Platform {
    let mut b = PlatformBuilder::new("solo");
    b.add_device(
        DeviceBuilder::new("cpu0", DeviceKind::Cpu)
            .build()
            .expect("device parameters are valid"),
    );
    b.interconnect(InterconnectBuilder::new().build());
    b.build().expect("single-device platform is valid")
}

#[test]
fn losing_all_capacity_with_no_pending_join_is_capacity_exhausted() {
    let platform = single_device_platform();
    let wf = montage(12, 5).expect("montage");
    let err = ResilientRunner::new(elastic_config(
        3,
        all_policies().remove(0),
        ElasticityConfig {
            events: vec![event("cpu0", 0.001, ElasticEventKind::Leave)],
            churn: Vec::new(),
        },
    ))
    .run(&platform, &wf, &HeftScheduler::default())
    .expect_err("the only device leaving cannot complete");
    match &err {
        EngineError::CapacityExhausted {
            completed, total, ..
        } => {
            assert!(completed < total, "some tasks must be left unfinished");
        }
        other => panic!("expected CapacityExhausted, got {other:?}"),
    }
    // The sweep layer records this as a measurement, not an error.
    assert_eq!(
        IncompleteReason::from_error(&err).map(|r| r.as_str()),
        Some("capacity_exhausted")
    );
}

#[test]
fn a_pending_join_parks_work_instead_of_exhausting() {
    let platform = single_device_platform();
    let wf = montage(12, 5).expect("montage");
    // Same departure, but capacity returns: the run must ride out the
    // empty window and complete after the join.
    let report = ResilientRunner::new(elastic_config(
        3,
        all_policies().remove(0),
        ElasticityConfig {
            events: vec![
                event("cpu0", 0.001, ElasticEventKind::Leave),
                event("cpu0", 0.05, ElasticEventKind::Join),
            ],
            churn: Vec::new(),
        },
    ))
    .run(&platform, &wf, &HeftScheduler::default())
    .expect("the run survives the empty window");
    let m = report.elasticity().expect("metrics");
    assert_eq!(m.departures, 1, "{m:?}");
    assert_eq!(m.joins, 1, "{m:?}");
    assert!(
        report.makespan().as_secs() >= 0.05,
        "completion cannot predate the re-join: {}",
        report.makespan()
    );
}

/// An elastic sweep spec: timed preempt/drain/join plus spot churn over
/// the workstation preset, with no explicit resilience block (the
/// driver synthesizes the benign default).
fn elastic_sweep_spec(base_seed: u64) -> CampaignSpec {
    CampaignSpec::from_json(&format!(
        r#"{{
            "name": "elastic-paths",
            "families": ["montage"],
            "platforms": ["workstation"],
            "schedulers": ["heft"],
            "seeds": {{"base": {base_seed}, "count": 4}},
            "tasks": 30,
            "noise_cv": 0.1,
            "elasticity": {{
                "events": [
                    {{"kind": "preempt", "device": "cpu1",
                      "at_secs": 0.002, "notice_secs": 0.001}},
                    {{"kind": "drain", "device": "gpu0",
                      "at_secs": 0.01, "deadline_secs": 0.012}},
                    {{"kind": "join", "device": "cpu1", "at_secs": 0.02}}
                ],
                "churn": [
                    {{"device": "gpu0", "mtbp_secs": 0.05,
                      "notice_secs": 0.002, "rejoin_secs": 0.02}}
                ]
            }}
        }}"#
    ))
    .expect("elastic sweep spec parses")
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Elastic capacity stays byte-identical per seed for every worker
    /// count and shard partition of the sweep grid, merge included.
    #[test]
    fn elastic_sweeps_are_jobs_and_shard_invariant(base_seed in 0u64..1000) {
        let spec = elastic_sweep_spec(base_seed);
        let reference = SweepDriver::new(1).run(&spec).expect("sequential sweep");
        let reference_json = serde_json::to_string(&reference).expect("serialize");

        let par = SweepDriver::new(4).run(&spec).expect("parallel sweep");
        proptest::prop_assert_eq!(
            &reference_json,
            &serde_json::to_string(&par).expect("serialize"),
            "--jobs must not change capacity realizations"
        );

        for count in [2usize, 4] {
            let shards: Vec<_> = (1..=count)
                .map(|k| {
                    SweepDriver::new(2)
                        .run_shard(&spec, ShardSpec::new(k, count).expect("shard"))
                        .expect("shard sweep")
                })
                .collect();
            let merged = merge_shards(&shards).expect("merge");
            proptest::prop_assert_eq!(
                &reference_json,
                &serde_json::to_string(&merged).expect("serialize"),
                "a {}-way shard partition must merge byte-identically",
                count
            );
        }

        // The capacity processes must actually bite somewhere in the
        // grid, or the invariance above is vacuous.
        proptest::prop_assert!(
            reference
                .cells
                .iter()
                .any(|c| c.preemptions > 0 || c.drain_migrated_tasks > 0),
            "no capacity event bit anywhere in the sweep grid"
        );
        for c in &reference.cells {
            proptest::prop_assert!(
                !c.completed || c.capacity_secs > 0.0,
                "cell {}: a completed elastic cell must integrate capacity",
                c.cell
            );
        }
    }
}
