//! Byte-identity of the sharded sweep driver.
//!
//! Acceptance pin for the sharded campaign layer: for a fixed spec,
//! merging any complete shard partition (1/1, 2 shards, 4 shards)
//! yields a report **byte-identical** to the unsharded sequential run
//! — same JSON, same bytes — and the worker count never changes the
//! bytes either. Incomplete, overlapping or cross-spec merges are hard
//! errors.

use helios_core::{merge_shards, CampaignSpec, ShardReport, ShardSpec, SweepDriver, SweepReport};

const SPEC_JSON: &str = r#"{
    "name": "shard-identity",
    "families": ["montage", "sipht"],
    "platforms": ["workstation"],
    "schedulers": ["heft", "min-min"],
    "seeds": {"base": 1, "count": 2},
    "tasks": 24,
    "noise_cv": 0.05
}"#;

fn spec() -> CampaignSpec {
    CampaignSpec::from_json(SPEC_JSON).expect("test spec is valid")
}

fn report_bytes(report: &SweepReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

#[test]
fn any_shard_partition_merges_byte_identical_to_the_unsharded_run() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let unsharded = report_bytes(&driver.run(&spec).expect("unsharded run"));

    for shard_count in [1usize, 2, 4] {
        let mut shards: Vec<ShardReport> = (1..=shard_count)
            .map(|k| {
                driver
                    .run_shard(&spec, ShardSpec::new(k, shard_count).unwrap())
                    .unwrap_or_else(|e| panic!("shard {k}/{shard_count}: {e}"))
            })
            .collect();
        let merged = report_bytes(&merge_shards(&shards).expect("merge"));
        assert_eq!(
            merged, unsharded,
            "{shard_count}-shard merge must be byte-identical"
        );
        // Merge order must not matter either.
        shards.reverse();
        let reversed = report_bytes(&merge_shards(&shards).expect("reversed merge"));
        assert_eq!(reversed, unsharded, "merge must be order-independent");
    }
}

#[test]
fn worker_count_does_not_change_the_bytes() {
    let spec = spec();
    let sequential = report_bytes(&SweepDriver::new(1).run(&spec).unwrap());
    for jobs in [0usize, 3] {
        let parallel = report_bytes(&SweepDriver::new(jobs).run(&spec).unwrap());
        assert_eq!(sequential, parallel, "jobs = {jobs}");
    }
}

#[test]
fn incomplete_and_overlapping_merges_are_hard_errors() {
    let spec = spec();
    let driver = SweepDriver::new(1);
    let s1 = driver
        .run_shard(&spec, ShardSpec::parse("1/2").unwrap())
        .unwrap();
    let s2 = driver
        .run_shard(&spec, ShardSpec::parse("2/2").unwrap())
        .unwrap();

    let err = merge_shards(std::slice::from_ref(&s1))
        .unwrap_err()
        .to_string();
    assert!(err.contains("incomplete partition"), "{err}");

    let err = merge_shards(&[s1.clone(), s1.clone(), s2.clone()])
        .unwrap_err()
        .to_string();
    assert!(err.contains("overlapping"), "{err}");

    // A shard of a different spec (different noise) must be refused.
    let other_spec =
        CampaignSpec::from_json(&SPEC_JSON.replace("0.05", "0.25")).expect("variant spec");
    let foreign = driver
        .run_shard(&other_spec, ShardSpec::parse("2/2").unwrap())
        .unwrap();
    let err = merge_shards(&[s1, foreign]).unwrap_err().to_string();
    assert!(err.contains("disagree"), "{err}");
}

#[test]
fn sweep_report_roundtrips_through_json() {
    let spec = spec();
    let report = SweepDriver::new(1).run(&spec).unwrap();
    let json = report_bytes(&report);
    let back: SweepReport = serde_json::from_str(&json).expect("roundtrip");
    assert_eq!(back, report);
    assert_eq!(report.total_cells, spec.num_cells());
    assert_eq!(report.summary.len(), 4, "one row per (family, scheduler)");
    for row in &report.summary {
        assert_eq!(row.cells, 2, "two seeds per combination");
        assert!(row.mean_makespan_secs.unwrap() > 0.0 && row.mean_slr.unwrap() >= 1.0);
    }
}

#[test]
fn dvfs_and_fault_knobs_change_cell_outcomes() {
    let base = spec();
    let run = |json: String| {
        SweepDriver::new(1)
            .run(&CampaignSpec::from_json(&json).expect("knob spec"))
            .expect("knob run")
    };
    let nominal = SweepDriver::new(1).run(&base).unwrap();

    // Powersave pins every placement to the slowest DVFS state; no
    // device gets faster, so no cell's makespan may shrink.
    let powersave =
        run(SPEC_JSON.replace(r#""tasks": 24,"#, r#""tasks": 24, "dvfs": "powersave","#));
    assert_eq!(powersave.total_cells, nominal.total_cells);
    let mut slower = 0usize;
    for (p, n) in powersave.cells.iter().zip(&nominal.cells) {
        assert!(
            p.makespan_secs >= n.makespan_secs * (1.0 - 1e-9),
            "cell {}: powersave {} < nominal {}",
            n.cell,
            p.makespan_secs,
            n.makespan_secs
        );
        slower += usize::from(p.makespan_secs > n.makespan_secs);
    }
    assert!(slower > 0, "powersave must slow at least one cell");

    // Fault injection with a tight MTBF must produce failures and
    // retries somewhere in the grid, and stay deterministic.
    let faulty_json = SPEC_JSON.replace(
        r#""noise_cv": 0.05"#,
        r#""noise_cv": 0.05,
           "faults": {"mtbf_secs": 0.5, "restart_overhead_secs": 0.001, "max_retries": 100}"#,
    );
    let faulty = run(faulty_json.clone());
    let failures: u32 = faulty.cells.iter().map(|c| c.failures).sum();
    let retries: u32 = faulty.cells.iter().map(|c| c.retries).sum();
    assert!(failures > 0, "tight MTBF must inject failures");
    assert!(retries > 0, "failed tasks must retry");
    assert_eq!(
        report_bytes(&faulty),
        report_bytes(&run(faulty_json)),
        "fault injection must be deterministic"
    );
}

#[test]
fn committed_example_specs_are_valid() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/specs");
    let smoke = std::fs::read_to_string(dir.join("smoke.json")).expect("smoke.json");
    let smoke = CampaignSpec::from_json(&smoke).expect("smoke spec parses");
    assert_eq!(smoke.num_cells(), 8);

    let grid = std::fs::read_to_string(dir.join("paper_grid.json")).expect("paper_grid.json");
    let grid = CampaignSpec::from_json(&grid).expect("paper grid parses");
    assert_eq!(
        grid.num_cells(),
        5 * 4 * 12 * 5,
        "full F3 grid: families x platforms x schedulers x seeds"
    );
}
