//! Integration pins for the columnar store and its query pipeline.
//!
//! The refactor's contract is byte-fidelity in both directions:
//!
//! * rows written through [`StoreWriter`] and salvaged back must
//!   reproduce the exact [`CellResult`]s (`SELECT *` is the identity),
//! * `summarize` — now a group-by plan over the executor pipeline —
//!   must still produce the exact summary rows the legacy hand-rolled
//!   loop did, including the null means of rows where no cell
//!   completed.

use proptest::prelude::*;

use helios_core::store::{cell_from_row, schema_names, summarize_cells, Value};
use helios_core::{
    merge_shards, read_store, run_query, CampaignSpec, CellResult, ShardSpec, StoreHeader,
    StoreOptions, StoreWriter, SweepDriver, SweepReport,
};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("helios-store-query-tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

fn small_spec_json(extra: &str) -> String {
    format!(
        r#"{{
            "name": "store-query",
            "families": ["montage"],
            "platforms": ["workstation"],
            "schedulers": ["heft", "olb"],
            "seeds": {{"base": 0, "count": 2}},
            "tasks": 20,
            "noise_cv": 0.1{extra}
        }}"#
    )
}

fn report_bytes(report: &SweepReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// The legacy `summarize` loop, re-implemented verbatim as the test
/// oracle: group by (family, platform, scheduler) in first-seen order,
/// mean each metric over completed cells only (None when none
/// completed), accumulate sums in input order so the float math is
/// bit-identical.
fn legacy_summary(cells: &[CellResult]) -> Vec<helios_core::SummaryRow> {
    let mut order: Vec<(String, String, String)> = Vec::new();
    for c in cells {
        let key = (c.family.clone(), c.platform.clone(), c.scheduler.clone());
        if !order.contains(&key) {
            order.push(key);
        }
    }
    order
        .into_iter()
        .map(|(family, platform, scheduler)| {
            let group: Vec<&CellResult> = cells
                .iter()
                .filter(|c| {
                    c.family == family && c.platform == platform && c.scheduler == scheduler
                })
                .collect();
            let done: Vec<&&CellResult> = group.iter().filter(|c| c.completed).collect();
            let mean = |f: &dyn Fn(&CellResult) -> f64| -> Option<f64> {
                if done.is_empty() {
                    None
                } else {
                    Some(done.iter().map(|c| f(c)).sum::<f64>() / done.len() as f64)
                }
            };
            helios_core::SummaryRow {
                family,
                platform,
                scheduler,
                cells: group.len(),
                mean_makespan_secs: mean(&|c| c.makespan_secs),
                mean_slr: mean(&|c| c.slr),
                mean_energy_j: mean(&|c| c.energy_j),
                completion_probability: done.len() as f64 / group.len() as f64,
            }
        })
        .collect()
}

/// A deterministic xorshift so synthetic cells cover varied bit
/// patterns without proptest needing per-field strategies.
fn synth_cells(seed: u64, rows: usize) -> Vec<CellResult> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    // Repeating-binary fractions (n/7, n/3) make good precision bait:
    // any lossy float path shows up as an inequality.
    let frac = |n: u64, d: f64| (n % 10_000) as f64 / d;
    (0..rows)
        .map(|i| {
            let completed = next() % 3 != 0;
            CellResult {
                cell: i,
                family: ["montage", "ligo", "sipht"][(next() % 3) as usize].to_owned(),
                platform: ["workstation", "hpc_node"][(next() % 2) as usize].to_owned(),
                scheduler: ["heft", "olb", "mct"][(next() % 3) as usize].to_owned(),
                seed: next(),
                makespan_secs: if completed { frac(next(), 7.0) } else { 0.0 },
                slr: frac(next(), 3.0),
                energy_j: frac(next(), 7.0) * 1e3,
                transfers: (next() % 1000) as usize,
                transfer_bytes: frac(next(), 3.0) * 1e6,
                failures: (next() % 7) as u32,
                retries: (next() % 11) as u32,
                completed,
                wasted_work_secs: frac(next(), 7.0),
                recovery_overhead_secs: frac(next(), 3.0),
                makespan_degradation: frac(next(), 7.0) - 0.5,
                reroutes: (next() % 5) as u32,
                partition_downtime_secs: frac(next(), 3.0),
                rematerialized_tasks: (next() % 9) as u32,
                rematerialized_bytes: frac(next(), 7.0) * 1e5,
                incomplete_reason: if completed {
                    None
                } else {
                    Some(
                        ["retries_exhausted", "timed_out", "infeasible"][(next() % 3) as usize]
                            .to_owned(),
                    )
                },
                capacity_secs: frac(next(), 3.0) * 10.0,
                preemptions: (next() % 4) as u32,
                drain_migrated_tasks: (next() % 6) as u32,
                join_utilization: frac(next(), 7.0).min(1.0),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Store round-trip is the identity: synthetic cells written
    /// through the segment writer (flushed into several row groups),
    /// salvaged back and passed through `SELECT *` reproduce the exact
    /// `CellResult` rows — strings, nulls, and every float bit.
    #[test]
    fn store_round_trip_select_star_reproduces_exact_cells(
        seed in 1u64..1_000_000,
        rows in 1usize..40,
        group_every in 1usize..9,
    ) {
        let cells = synth_cells(seed, rows);
        let path = scratch(&format!("roundtrip-{seed}-{rows}-{group_every}.store"));
        let _ = std::fs::remove_file(&path);
        let header = StoreHeader {
            spec_name: "synthetic".into(),
            spec_digest: format!("{seed:016x}"),
            total_cells: rows,
            shard_index: 1,
            shard_count: 1,
            columns: schema_names(),
        };
        let mut writer = StoreWriter::create(&path, &header).expect("create store");
        for (i, cell) in cells.iter().enumerate() {
            writer.append_cell(cell).expect("append");
            if (i + 1) % group_every == 0 {
                writer.flush().expect("flush");
            }
        }
        writer.flush().expect("final flush");

        let salvage = read_store(&path).expect("read back");
        prop_assert_eq!(salvage.dropped_bytes, 0);
        prop_assert_eq!(&salvage.cells, &cells, "salvage must reproduce append order");

        let out = run_query("SELECT *", &salvage.cells).expect("SELECT *");
        prop_assert_eq!(&out.schema, &schema_names());
        let back: Vec<CellResult> = out
            .rows
            .iter()
            .map(|row| cell_from_row(row).expect("row decodes"))
            .collect();
        // SELECT * yields global cell order; the synthetic cells are
        // already indexed 0..rows, so the identity is exact.
        prop_assert_eq!(&back, &cells);
        let _ = std::fs::remove_file(&path);
    }

    /// The pipeline summary equals the legacy hand-rolled loop on
    /// arbitrary synthetic populations — bit-identical floats, not
    /// approximately.
    #[test]
    fn pipeline_summary_matches_the_legacy_loop(
        seed in 1u64..1_000_000,
        rows in 1usize..60,
    ) {
        let cells = synth_cells(seed, rows);
        prop_assert_eq!(summarize_cells(&cells), legacy_summary(&cells));
    }
}

#[test]
fn sweep_through_the_store_is_byte_identical_to_the_direct_run() {
    let spec = CampaignSpec::from_json(&small_spec_json("")).expect("spec parses");
    let reference = SweepDriver::new(1).run(&spec).expect("direct run");

    let path = scratch("sweep.store");
    let _ = std::fs::remove_file(&path);
    let driver = SweepDriver::new(1);
    let run = driver
        .run_store(&spec, ShardSpec::full(), &path, &StoreOptions::default())
        .expect("store run");
    assert_eq!(run.remaining, 0);
    assert!(!run.drained);

    // The report compiled from the store, and the report salvaged from
    // the file afterwards, both match the direct run byte for byte.
    let merged = merge_shards(&[run.report]).expect("merge");
    assert_eq!(report_bytes(&merged), report_bytes(&reference));
    let salvage = read_store(&path).expect("read back");
    let remerged = merge_shards(&[salvage.to_shard_report()]).expect("merge salvage");
    assert_eq!(report_bytes(&remerged), report_bytes(&reference));

    // The summary is the same group-by plan the query language runs.
    assert_eq!(reference.summary, legacy_summary(&reference.cells));
    let out = run_query(
        "SELECT family, platform, scheduler, count(*), avg_completed(makespan_secs), \
         avg_completed(slr), avg_completed(energy_j), frac(completed) \
         GROUP BY family, platform, scheduler",
        &reference.cells,
    )
    .expect("group-by query");
    assert_eq!(out.rows.len(), reference.summary.len());
    for (row, summary) in out.rows.iter().zip(&reference.summary) {
        assert_eq!(row[0], Value::Str(summary.family.clone()));
        assert_eq!(row[1], Value::Str(summary.platform.clone()));
        assert_eq!(row[2], Value::Str(summary.scheduler.clone()));
        assert_eq!(row[3], Value::U64(summary.cells as u64));
        let opt = |v: Option<f64>| v.map_or(Value::Null, Value::F64);
        assert_eq!(row[4], opt(summary.mean_makespan_secs));
        assert_eq!(row[5], opt(summary.mean_slr));
        assert_eq!(row[6], opt(summary.mean_energy_j));
        assert_eq!(row[7], Value::F64(summary.completion_probability));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn null_means_survive_the_store_and_the_query() {
    // The lethal-resilience fixture: a 0.1 ms MTTF with one retry loses
    // every cell, so every mean is None — the store and the query must
    // both preserve the distinction from 0.0.
    let spec = CampaignSpec::from_json(&small_spec_json(
        r#", "resilience": {
            "mttf_secs": 0.0001,
            "restart_overhead_secs": 0.0005,
            "policy": {"kind": "retry-backoff", "base_secs": 0.0, "factor": 2.0,
                       "cap_secs": 0.0, "max_retries": 1}
        }"#,
    ))
    .expect("spec parses");
    let reference = SweepDriver::new(1).run(&spec).expect("direct run");
    assert!(
        reference.cells.iter().all(|c| !c.completed),
        "the fixture must lose every cell"
    );
    for row in &reference.summary {
        assert_eq!(row.mean_makespan_secs, None);
        assert_eq!(row.mean_slr, None);
        assert_eq!(row.mean_energy_j, None);
        assert_eq!(row.completion_probability, 0.0);
    }

    let path = scratch("lethal.store");
    let _ = std::fs::remove_file(&path);
    let run = SweepDriver::new(1)
        .run_store(&spec, ShardSpec::full(), &path, &StoreOptions::default())
        .expect("store run");
    let merged = merge_shards(&[run.report]).expect("merge");
    assert_eq!(report_bytes(&merged), report_bytes(&reference));
    let json = report_bytes(&merged);
    assert!(json.contains("\"mean_makespan_secs\": null"), "{json}");

    let salvage = read_store(&path).expect("read back");
    let out = run_query(
        "SELECT avg_completed(makespan_secs), frac(completed)",
        &salvage.cells,
    )
    .expect("global aggregate");
    assert_eq!(out.rows, vec![vec![Value::Null, Value::F64(0.0)]]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn store_resume_is_byte_identical_and_foreign_stores_are_refused() {
    let spec = CampaignSpec::from_json(&small_spec_json("")).expect("spec parses");
    let reference = SweepDriver::new(1).run(&spec).expect("direct run");
    let driver = SweepDriver::new(1);

    let path = scratch("resume.store");
    let _ = std::fs::remove_file(&path);
    let cut = driver
        .run_store(
            &spec,
            ShardSpec::full(),
            &path,
            &StoreOptions {
                limit: Some(2),
                ..StoreOptions::default()
            },
        )
        .expect("cut run");
    assert_eq!(cut.report.cells.len(), 2);
    assert_eq!(cut.remaining, 2);

    let resumed = driver
        .run_store(&spec, ShardSpec::full(), &path, &StoreOptions::default())
        .expect("resume");
    assert_eq!(resumed.salvaged_rows, 2);
    assert_eq!(resumed.remaining, 0);
    let merged = merge_shards(&[resumed.report]).expect("merge");
    assert_eq!(
        report_bytes(&merged),
        report_bytes(&reference),
        "resume through the store must not change the bytes"
    );

    // A store from a different campaign is refused with a typed error
    // naming both specs.
    let foreign = CampaignSpec::from_json(&small_spec_json("").replace("store-query", "other"))
        .expect("foreign spec parses");
    let err = driver
        .run_store(&foreign, ShardSpec::full(), &path, &StoreOptions::default())
        .expect_err("foreign spec must be refused")
        .to_string();
    assert!(err.contains("different campaign"), "{err}");

    // So is a store from a different shard geometry.
    let err = driver
        .run_store(
            &spec,
            ShardSpec::new(1, 2).expect("shard parses"),
            &path,
            &StoreOptions::default(),
        )
        .expect_err("wrong shard must be refused")
        .to_string();
    assert!(err.contains("shard"), "{err}");
    let _ = std::fs::remove_file(&path);
}

/// The full paper grid (5 families × 4 platforms × 12 schedulers × 5
/// seeds = 1200 cells of 100 tasks) through the pipeline summary vs the
/// legacy loop. Minutes of work even in release — run explicitly when
/// touching the store or the summary plan:
/// `cargo test --release --test store_query -- --ignored`.
#[test]
#[ignore = "full paper grid; run explicitly in release when touching the store"]
fn paper_grid_summary_is_byte_identical_through_the_pipeline() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/specs");
    let json = std::fs::read_to_string(dir.join("paper_grid.json")).expect("paper_grid.json");
    let spec = CampaignSpec::from_json(&json).expect("paper grid parses");
    let report = SweepDriver::new(0).run(&spec).expect("paper grid runs");
    assert_eq!(report.summary, legacy_summary(&report.cells));
    assert_eq!(report.summary, summarize_cells(&report.cells));
}
