//! The bugbase harness: replays every fixture committed under
//! `tests/bugbase/` through the fuzz oracles. A fixture that diverges
//! again means a previously-fixed bug has regressed; a non-fixture file
//! in the directory means the corpus is corrupted. CI cross-checks the
//! fixture count against `helios fuzz --replay`, so a fixture this
//! harness does not pick up fails the build.

use std::path::PathBuf;

use helios_core::fuzz::BugFixture;

fn bugbase_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/bugbase")
}

#[test]
fn every_committed_fixture_replays_clean() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(bugbase_dir())
        .expect("tests/bugbase/ exists")
        .map(|e| e.expect("directory entry").path())
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "the bugbase ships at least one example fixture"
    );

    for file in &files {
        assert_eq!(
            file.extension().and_then(|e| e.to_str()),
            Some("json"),
            "stray non-fixture file in the bugbase: {file:?}"
        );
        let json = std::fs::read_to_string(file).expect("fixture is readable");
        let fixture = BugFixture::from_json(&json)
            .unwrap_or_else(|e| panic!("corrupt fixture {file:?}: {e}"));
        let verdict = fixture
            .replay(None)
            .unwrap_or_else(|e| panic!("fixture {file:?} cannot be swept: {e}"));
        assert_eq!(
            verdict, None,
            "fixture {file:?} diverges again — a fixed bug has regressed"
        );
    }
}

#[test]
fn fixture_file_names_are_canonical() {
    // `<oracle>-<digest>.json` keeps distinct bugs from colliding and
    // makes re-finding the same shrunk spec overwrite in place.
    for entry in std::fs::read_dir(bugbase_dir()).expect("tests/bugbase/ exists") {
        let file = entry.expect("directory entry").path();
        let json = std::fs::read_to_string(&file).expect("fixture is readable");
        let fixture = BugFixture::from_json(&json).expect("fixture parses");
        assert_eq!(
            file.file_name().and_then(|n| n.to_str()),
            Some(fixture.file_name().as_str()),
            "fixture {file:?} is not named <oracle>-<digest>.json"
        );
    }
}
