//! Trust-level placement: tasks with security requirements must only
//! run on devices whose trust level clears them (survey §V — a
//! heterogeneous system is only as secure as its weakest component).

use helios::core::{EngineConfig, OnlinePolicy, OnlineRunner};
use helios::platform::{
    ComputeCost, Device, DeviceBuilder, DeviceKind, Interconnect, KernelClass, Platform,
    PlatformBuilder,
};
use helios::sched::{all_schedulers, placement_feasible, SchedError};
use helios::sim::SimDuration;
use helios::workflow::{Task, Workflow, WorkflowBuilder};

/// Two trusted CPUs plus a fast but untrusted third-party accelerator.
fn mixed_trust_platform() -> Platform {
    let mut b = PlatformBuilder::new("mixed-trust");
    b.add_device(
        DeviceBuilder::new("cpu0", DeviceKind::Cpu)
            .trust_level(Device::MAX_TRUST)
            .build()
            .unwrap(),
    );
    b.add_device(
        DeviceBuilder::new("cpu1", DeviceKind::Cpu)
            .trust_level(2)
            .build()
            .unwrap(),
    );
    b.add_device(
        DeviceBuilder::new("gpu-vendor-x", DeviceKind::Gpu)
            .trust_level(0) // proprietary black box
            .build()
            .unwrap(),
    );
    b.interconnect(Interconnect::shared_bus(16.0, SimDuration::from_secs(5e-6)).unwrap());
    b.build().unwrap()
}

/// A pipeline whose middle (dense, GPU-friendly) stage handles raw
/// confidential data.
fn sensitive_wf() -> Workflow {
    let mut b = WorkflowBuilder::new("sensitive");
    let open = ComputeCost::new(10.0, 1e6, KernelClass::Reduction);
    let dense = ComputeCost::new(400.0, 1e8, KernelClass::DenseLinearAlgebra);
    let mut prev = None;
    for i in 0..9 {
        let task = if i % 3 == 1 {
            Task::new(format!("secret{i}"), "secret", dense).with_required_trust(2)
        } else {
            Task::new(format!("open{i}"), "open", open)
        };
        let id = b.add_task(task);
        if let Some(p) = prev {
            b.add_dep(p, id, 1e6).unwrap();
        }
        prev = if i % 3 == 2 { None } else { Some(id) };
    }
    b.build().unwrap()
}

#[test]
fn predicate_combines_memory_and_trust() {
    let p = mixed_trust_platform();
    let gpu = p.device_by_name("gpu-vendor-x").unwrap();
    let cpu = p.device_by_name("cpu0").unwrap();
    let secret = Task::new(
        "s",
        "s",
        ComputeCost::new(1.0, 0.0, KernelClass::DenseLinearAlgebra),
    )
    .with_required_trust(2);
    assert!(!placement_feasible(gpu, &secret));
    assert!(placement_feasible(cpu, &secret));
    let open = Task::new("o", "s", ComputeCost::new(1.0, 0.0, KernelClass::Fft));
    assert!(placement_feasible(gpu, &open));
}

#[test]
fn schedulers_keep_secrets_off_untrusted_devices() {
    let platform = mixed_trust_platform();
    let gpu = platform.device_by_name("gpu-vendor-x").unwrap().id();
    let wf = sensitive_wf();
    for scheduler in all_schedulers() {
        let plan = scheduler
            .schedule(&wf, &platform)
            .unwrap_or_else(|e| panic!("{}: {e}", scheduler.name()));
        plan.validate(&wf, &platform).unwrap();
        for p in plan.placements() {
            let task = wf.task(p.task).unwrap();
            if task.required_trust() > 0 {
                assert_ne!(
                    p.device,
                    gpu,
                    "{} leaked {} onto the untrusted GPU",
                    scheduler.name(),
                    task.name()
                );
            }
        }
        // The GPU is 10x faster on dense work: open tasks may still use it.
    }
}

#[test]
fn online_dispatch_respects_trust() {
    let platform = mixed_trust_platform();
    let gpu = platform.device_by_name("gpu-vendor-x").unwrap().id();
    let wf = sensitive_wf();
    let report = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
        .run(&platform, &wf)
        .unwrap();
    for p in report.schedule().placements() {
        if wf.task(p.task).unwrap().required_trust() > 0 {
            assert_ne!(p.device, gpu);
        }
    }
}

#[test]
fn unsatisfiable_trust_is_a_clean_error() {
    let platform = mixed_trust_platform(); // max trust = 3
    let mut b = WorkflowBuilder::new("over");
    b.add_task(
        Task::new("t", "s", ComputeCost::new(1.0, 0.0, KernelClass::Fft)).with_required_trust(200),
    );
    let wf = b.build().unwrap();
    for scheduler in all_schedulers() {
        // required_trust 200 > MAX_TRUST: nothing clears it.
        assert!(
            matches!(
                scheduler.schedule(&wf, &platform),
                Err(SchedError::NoFeasibleDevice(_))
            ),
            "{}",
            scheduler.name()
        );
    }
}

#[test]
fn trust_survives_json_roundtrip_and_defaults_to_zero() {
    let wf = sensitive_wf();
    let json = helios::workflow::io::to_json(&wf).unwrap();
    let back = helios::workflow::io::from_json(&json).unwrap();
    assert_eq!(wf, back);
    // Legacy JSON without the field parses with trust 0.
    let legacy = r#"{
        "name": "old",
        "tasks": [{"name": "a", "stage": "s",
                   "cost": {"gflop": 1.0, "bytes_touched": 0.0,
                            "kernel_class": "Fft"}}],
        "edges": []
    }"#;
    let old = helios::workflow::io::from_json(legacy).unwrap();
    assert_eq!(
        old.task(helios::workflow::TaskId(0))
            .unwrap()
            .required_trust(),
        0
    );
}
