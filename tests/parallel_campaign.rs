//! Determinism of the parallel campaign engine and the cached
//! scheduler hot path.
//!
//! Two guarantees are pinned here:
//!
//! 1. [`CampaignEngine`] output is **byte-identical** to the sequential
//!    path for every `--jobs` value, across randomized campaign grids
//!    (property-based).
//! 2. The memoized per-device-pair transfer terms inside
//!    [`SchedContext`] reproduce the uncached reference computation
//!    bit-for-bit on every Pegasus workflow family.

use helios_core::{CampaignEngine, EngineConfig, EnsembleMember, EnsemblePolicy, EnsembleRunner};
use helios_platform::presets;
use helios_sched::{HeftScheduler, SchedContext, Scheduler};
use helios_sim::SimTime;
use helios_workflow::generators::WorkflowClass;
use helios_workflow::TaskId;
use proptest::prelude::*;

/// Runs one randomized campaign grid with the given worker count and
/// renders every report to bytes (debug formatting shows every field,
/// including all f64 bits that differ under reordered arithmetic).
fn run_grid(
    jobs: usize,
    cells: &[(usize, u64, usize)], // (class index, seed, members)
) -> Result<String, String> {
    let platform = presets::workstation();
    let reports = CampaignEngine::new(jobs)
        .run(cells, |_, &(class_idx, seed, members)| {
            let class = WorkflowClass::ALL[class_idx % WorkflowClass::ALL.len()];
            let members: Vec<EnsembleMember> = (0..members)
                .map(|m| {
                    Ok(EnsembleMember {
                        workflow: class.generate(30 + 5 * m, seed + m as u64)?,
                        arrival: SimTime::from_secs(0.05 * m as f64),
                        priority: 1.0 + m as f64,
                    })
                })
                .collect::<Result<_, helios_core::EngineError>>()?;
            let config = EngineConfig {
                seed,
                noise_cv: 0.1,
                ..Default::default()
            };
            EnsembleRunner::new(config, EnsemblePolicy::Priority).run(&platform, &members)
        })
        .map_err(|e| e.to_string())?;
    Ok(format!("{reports:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn campaign_output_is_byte_identical_across_jobs(
        seed in 0u64..1_000,
        cell_count in 1usize..5,
        class_offset in 0usize..5,
        jobs in 2usize..6,
    ) {
        let cells: Vec<(usize, u64, usize)> = (0..cell_count)
            .map(|i| (class_offset + i, seed + i as u64, 1 + i % 3))
            .collect();
        let sequential = run_grid(1, &cells).unwrap();
        let parallel = run_grid(jobs, &cells).unwrap();
        prop_assert_eq!(&sequential, &parallel);
        // jobs = 0 (auto-detect) must agree too.
        let auto = run_grid(0, &cells).unwrap();
        prop_assert_eq!(&sequential, &auto);
    }
}

#[test]
fn campaign_errors_match_the_sequential_path() {
    // Cell 2 fails (zero-member ensemble); every jobs value must report
    // exactly that cell's error.
    let platform = presets::workstation();
    let run = |jobs: usize| {
        CampaignEngine::new(jobs)
            .run(&[1usize, 3, 0, 2, 0], |_, &members| {
                let members: Vec<EnsembleMember> = (0..members)
                    .map(|m| {
                        Ok(EnsembleMember {
                            workflow: WorkflowClass::ALL[0].generate(30, m as u64)?,
                            arrival: SimTime::ZERO,
                            priority: 1.0,
                        })
                    })
                    .collect::<Result<_, helios_core::EngineError>>()?;
                EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::Fifo)
                    .run(&platform, &members)
            })
            .map(|_| ())
            .unwrap_err()
            .to_string()
    };
    let sequential = run(1);
    assert!(sequential.contains("no members"), "{sequential}");
    for jobs in [2, 3, 8] {
        assert_eq!(run(jobs), sequential, "jobs = {jobs}");
    }
}

#[test]
fn cached_sched_context_matches_uncached_reference_on_all_families() {
    for platform in [presets::workstation(), presets::hpc_node()] {
        for class in WorkflowClass::ALL {
            let wf = class.generate(60, 7).expect("generator succeeds");
            // Drive a full HEFT construction; at every step compare the
            // cached data-ready/EFT values against the uncached
            // reference for every feasible device.
            let order = {
                let plan = HeftScheduler::default()
                    .schedule(&wf, &platform)
                    .expect("heft plan");
                let mut order: Vec<TaskId> = (0..wf.num_tasks()).map(TaskId).collect();
                order.sort_by_key(|&t| {
                    let p = plan.placement(t).expect("placed");
                    (p.start, t)
                });
                order
            };
            let mut ctx = SchedContext::new(&wf, &platform, true).expect("context");
            for &task in &order {
                let devices: Vec<_> = ctx.feasible_devices(task).collect();
                assert!(
                    !devices.is_empty(),
                    "{}: task {task} unplaceable",
                    class.as_str()
                );
                for &dev in &devices {
                    let cached = ctx.data_ready(task, dev).expect("data_ready");
                    let reference = ctx.data_ready_uncached(task, dev).expect("reference");
                    assert_eq!(
                        cached,
                        reference,
                        "{} on {}: data_ready({task}, {dev}) diverged",
                        class.as_str(),
                        platform.name()
                    );
                }
                let (dev, start, finish) = ctx.best_eft(task).expect("best_eft");
                // best_eft must agree with the per-device eft probe.
                let (s2, f2) = ctx.eft(task, dev).expect("eft");
                assert_eq!((start, finish), (s2, f2));
                for &d in &devices {
                    let (_, f) = ctx.eft(task, d).expect("eft");
                    assert!(
                        f > finish || (f == finish && d.0 >= dev.0),
                        "{}: best_eft missed a better device {d} for {task}",
                        class.as_str()
                    );
                }
                ctx.place(task, dev, start, finish).expect("place");
            }
            assert!(ctx.is_complete());
        }
    }
}
