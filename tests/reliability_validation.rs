//! Cross-validation: the analytic schedule-reliability model must match
//! the empirical fault-free completion rate of the engine's Poisson
//! fault injection.
//!
//! With `max_retries = 0` a single fault aborts the run, so the
//! fraction of successful runs over many seeds estimates exactly the
//! probability the closed form predicts:
//! `R = exp(−Σ duration / MTBF)`.

use helios::core::{Engine, EngineConfig, EngineError, FaultConfig};
use helios::platform::presets;
use helios::sched::reliability::{schedule_reliability, uniform_rates};
use helios::sched::{HeftScheduler, Scheduler};
use helios::sim::SimDuration;
use helios::workflow::generators::montage;

#[test]
fn analytic_reliability_matches_monte_carlo() {
    let platform = presets::hpc_node();
    let wf = montage(60, 7).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &platform).unwrap();

    // Pick an MTBF that lands the prediction mid-range, where the test
    // has discriminating power.
    let busy: f64 = plan
        .placements()
        .iter()
        .map(|p| p.duration().as_secs())
        .sum();
    let mtbf = busy / f64::ln(2.0); // predicted R = 0.5
    let rates = uniform_rates(&platform, mtbf).unwrap();
    let predicted = schedule_reliability(&plan, &platform, &rates).unwrap();
    assert!(
        (predicted - 0.5).abs() < 1e-9,
        "by construction: {predicted}"
    );

    let runs = 400u64;
    let mut successes = 0u32;
    for seed in 0..runs {
        let config = EngineConfig {
            seed,
            faults: Some(FaultConfig::new(mtbf, SimDuration::ZERO, 0).unwrap()),
            ..Default::default()
        };
        match Engine::new(config).execute_plan(&platform, &wf, &plan) {
            Ok(_) => successes += 1,
            Err(EngineError::RetriesExhausted { .. }) => {}
            Err(e) => panic!("unexpected failure mode: {e}"),
        }
    }
    let observed = f64::from(successes) / runs as f64;
    // Binomial std dev at p=0.5, n=400 is 0.025; allow 4 sigma.
    assert!(
        (observed - predicted).abs() < 0.1,
        "Monte Carlo {observed} vs analytic {predicted}"
    );
}

#[test]
fn reliability_aware_plans_survive_more_often() {
    use helios::sched::reliability::ReliabilityAwareHeft;
    let platform = presets::hpc_node();

    // The accelerators are flaky; CPUs are solid. Analytic rates drive
    // the planner; the engine injects a uniform-MTBF approximation per
    // run would not discriminate, so we compare analytically here and
    // rely on `analytic_reliability_matches_monte_carlo` to anchor the
    // analytic model to the engine.
    let mut rates = vec![1e-9; platform.num_devices()];
    for rate in &mut rates[2..6] {
        *rate = 0.5; // GPUs: MTBF 2 s
    }
    let mut heft_rel = 0.0;
    let mut rel_rel = 0.0;
    for seed in 0..6 {
        let wf = montage(80, seed).unwrap();
        let heft = HeftScheduler::default().schedule(&wf, &platform).unwrap();
        let relplan = ReliabilityAwareHeft::new(0.3, rates.clone())
            .schedule(&wf, &platform)
            .unwrap();
        heft_rel += schedule_reliability(&heft, &platform, &rates).unwrap();
        rel_rel += schedule_reliability(&relplan, &platform, &rates).unwrap();
    }
    assert!(
        rel_rel > heft_rel,
        "reliability-aware {rel_rel} must beat HEFT {heft_rel} on flaky GPUs"
    );
}
