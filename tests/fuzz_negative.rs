//! Negative-validation property tests for the campaign spec surface the
//! fuzz harness generates over, and for the `helios query` expression
//! language: every malformed input must come back as a *typed*
//! [`CampaignError`] naming the offending field (or token) — never a
//! panic, and never a silent acceptance. This is the flip side of the
//! generator's valid-by-construction guarantee: `helios fuzz` only
//! explores legal specs, so this test patrols the illegal border.

use proptest::prelude::*;

use helios_core::{run_query, CampaignError, CampaignSpec, EngineError};

/// A minimal valid spec with a hole for extra top-level fields.
fn spec_with(extra: &str) -> String {
    format!(
        r#"{{
            "name": "negative",
            "families": ["montage"],
            "platforms": ["workstation"],
            "schedulers": ["heft"],
            "seeds": {{"base": 0, "count": 1}},
            "tasks": 16{extra}
        }}"#
    )
}

/// Garbage identifiers substituted for family / platform / scheduler /
/// kind names; indexed by the proptest-drawn `tag`.
const BAD_NAMES: [&str; 5] = ["", "frobnicate", "HEFT ", "montage2", "no-such-thing"];

/// One corruption class: a label, the corrupted spec JSON, and a
/// needle the error message must contain (the offending field).
struct Corruption {
    label: &'static str,
    json: String,
    needle: &'static str,
}

/// Every corruption class, parameterized on a garbage name and a
/// poison number so repeated cases probe different illegal values.
fn corruptions(bad: &str, poison: f64) -> Vec<Corruption> {
    let resilience_with = |policy: &str| {
        spec_with(&format!(
            r#", "resilience": {{"mttf_secs": 50.0, "policy": {policy}}}"#
        ))
    };
    vec![
        Corruption {
            label: "unknown family",
            json: spec_with("").replace("montage", bad),
            needle: "family",
        },
        Corruption {
            label: "unknown platform",
            json: spec_with("").replace("workstation", bad),
            needle: "platform",
        },
        Corruption {
            label: "unknown scheduler",
            json: spec_with("").replace("heft", bad),
            needle: "scheduler",
        },
        Corruption {
            label: "empty families axis",
            json: spec_with("").replace(r#"["montage"]"#, "[]"),
            needle: "families",
        },
        Corruption {
            label: "zero seed count",
            json: spec_with("").replace(r#""count": 1"#, r#""count": 0"#),
            needle: "seeds.count",
        },
        Corruption {
            label: "zero tasks",
            json: spec_with("").replace(r#""tasks": 16"#, r#""tasks": 0"#),
            needle: "tasks",
        },
        Corruption {
            label: "negative noise_cv",
            json: spec_with(&format!(r#", "noise_cv": -{poison}"#)),
            needle: "noise_cv",
        },
        Corruption {
            label: "unknown dvfs level",
            json: spec_with(&format!(r#", "dvfs": "{bad}""#)),
            needle: "dvfs",
        },
        Corruption {
            label: "zero cell_step_budget",
            json: spec_with(r#", "cell_step_budget": 0"#),
            needle: "cell_step_budget",
        },
        Corruption {
            label: "zero annealing iterations",
            json: spec_with(r#", "scheduler_params": {"annealing_iterations": 0}"#),
            needle: "annealing_iterations",
        },
        Corruption {
            label: "faults and resilience together",
            json: spec_with(
                r#", "faults": {"mtbf_secs": 100.0},
                   "resilience": {"mttf_secs": 50.0,
                                  "policy": {"kind": "retry-backoff", "base_secs": 0,
                                             "factor": 1, "cap_secs": 0, "max_retries": 3}}"#,
            ),
            needle: "mutually exclusive",
        },
        Corruption {
            label: "negative fault mtbf",
            json: spec_with(&format!(r#", "faults": {{"mtbf_secs": -{poison}}}"#)),
            needle: "mtbf_secs",
        },
        Corruption {
            label: "interconnect faults without resilience",
            json: spec_with(
                r#", "interconnect_faults": {"distribution": "exponential",
                                             "mttf_secs": 100.0}"#,
            ),
            needle: "resilience",
        },
        Corruption {
            label: "failure domains without resilience",
            json: spec_with(
                r#", "failure_domains": [{"kind": "rack", "name": "r0",
                                          "devices": ["cpu0"], "mttf_secs": 100.0}]"#,
            ),
            needle: "resilience",
        },
        Corruption {
            label: "unknown policy kind",
            json: resilience_with(&format!(r#"{{"kind": "{bad}"}}"#)),
            needle: "kind",
        },
        Corruption {
            label: "single-copy replication",
            json: resilience_with(r#"{"kind": "replicate-k", "replicas": 1, "max_retries": 3}"#),
            needle: "replicas",
        },
        Corruption {
            label: "non-positive checkpoint interval",
            json: resilience_with(
                r#"{"kind": "checkpoint-restart", "interval_secs": 0,
                    "overhead_secs": 1, "max_retries": 3}"#,
            ),
            needle: "interval_secs",
        },
        Corruption {
            label: "dangling domain device",
            json: spec_with(&format!(
                r#", "resilience": {{"mttf_secs": 50.0,
                                     "policy": {{"kind": "retry-backoff", "base_secs": 0,
                                                 "factor": 1, "cap_secs": 0, "max_retries": 3}}}},
                    "failure_domains": [{{"kind": "rack", "name": "r0",
                                          "devices": ["{bad}"], "mttf_secs": 100.0}}]"#
            )),
            needle: "unknown device",
        },
        Corruption {
            label: "unknown domain kind",
            json: spec_with(&format!(
                r#", "resilience": {{"mttf_secs": 50.0,
                                     "policy": {{"kind": "retry-backoff", "base_secs": 0,
                                                 "factor": 1, "cap_secs": 0, "max_retries": 3}}}},
                    "failure_domains": [{{"kind": "{bad}", "name": "r0",
                                          "devices": ["cpu0"], "mttf_secs": 100.0}}]"#
            )),
            needle: "kind",
        },
        Corruption {
            label: "duplicate domain names",
            json: spec_with(
                r#", "resilience": {"mttf_secs": 50.0,
                                    "policy": {"kind": "retry-backoff", "base_secs": 0,
                                               "factor": 1, "cap_secs": 0, "max_retries": 3}},
                    "failure_domains": [
                        {"kind": "rack", "name": "r0", "devices": ["cpu0"], "mttf_secs": 100.0},
                        {"kind": "rack", "name": "r0", "devices": ["cpu1"], "mttf_secs": 100.0}]"#,
            ),
            needle: "unique",
        },
        Corruption {
            label: "elasticity event names unknown device",
            json: spec_with(&format!(
                r#", "elasticity": {{"events": [{{"kind": "join", "device": "{bad}",
                                                 "at_secs": 0.5}}]}}"#
            )),
            // "" trips the engine's empty-name check, everything else
            // the per-platform resolution; both name the device field.
            needle: "device",
        },
        Corruption {
            label: "negative elasticity event time",
            json: spec_with(&format!(
                r#", "elasticity": {{"events": [{{"kind": "join", "device": "cpu0",
                                                 "at_secs": -{poison}}}]}}"#
            )),
            needle: "at_secs",
        },
        Corruption {
            label: "zero preempt notice",
            json: spec_with(
                r#", "elasticity": {"events": [{"kind": "preempt", "device": "cpu0",
                                                "at_secs": 0.5, "notice_secs": 0}]}"#,
            ),
            needle: "notice_secs",
        },
        Corruption {
            label: "unknown elasticity event kind",
            json: spec_with(&format!(
                r#", "elasticity": {{"events": [{{"kind": "{bad}", "device": "cpu0",
                                                 "at_secs": 0.5}}]}}"#
            )),
            needle: "kind",
        },
        Corruption {
            label: "drain deadline not after its notice",
            json: spec_with(
                r#", "elasticity": {"events": [{"kind": "drain", "device": "cpu0",
                                                "at_secs": 0.5, "deadline_secs": 0.5}]}"#,
            ),
            needle: "deadline_secs",
        },
        Corruption {
            label: "empty elasticity block",
            json: spec_with(r#", "elasticity": {"events": [], "churn": []}"#),
            needle: "at least one",
        },
        Corruption {
            label: "faults and elasticity together",
            json: spec_with(
                r#", "faults": {"mtbf_secs": 100.0},
                   "elasticity": {"events": [{"kind": "join", "device": "cpu0",
                                              "at_secs": 0.5}]}"#,
            ),
            needle: "mutually exclusive",
        },
        Corruption {
            label: "non-positive churn period",
            json: spec_with(&format!(
                r#", "elasticity": {{"churn": [{{"device": "cpu0", "mtbp_secs": 0,
                                                "notice_secs": {poison},
                                                "rejoin_secs": {poison}}}]}}"#
            )),
            needle: "mtbp_secs",
        },
        Corruption {
            label: "truncated JSON",
            json: spec_with("").split_at(40).0.to_owned(),
            needle: "malformed",
        },
    ]
}

/// One query corruption class: a label, the corrupted expression, and
/// the exact token the typed error must name.
fn query_corruptions(bad: &str) -> Vec<(&'static str, String, String)> {
    vec![
        (
            "unknown projected column",
            format!("SELECT {bad}"),
            bad.to_owned(),
        ),
        (
            "unknown aggregate function",
            format!("SELECT {bad}(makespan_secs)"),
            bad.to_owned(),
        ),
        (
            "unknown WHERE column",
            format!("SELECT * WHERE {bad} = 1"),
            bad.to_owned(),
        ),
        (
            "unknown GROUP BY column",
            format!("SELECT count(*) GROUP BY {bad}"),
            bad.to_owned(),
        ),
        (
            "string literal against a numeric column",
            format!("SELECT * WHERE makespan_secs = '{bad}'"),
            format!("'{bad}'"),
        ),
        (
            "ordering comparison on a string column",
            format!("SELECT cell WHERE family < '{bad}'"),
            format!("'{bad}'"),
        ),
        (
            "grouped SELECT *",
            "SELECT * GROUP BY scheduler".into(),
            "*".into(),
        ),
        (
            "bare column mixed with an aggregate",
            "SELECT cell, count(*)".into(),
            "cell".into(),
        ),
        (
            "selected column missing from GROUP BY",
            "SELECT cell GROUP BY scheduler".into(),
            "cell".into(),
        ),
        (
            "count with an argument",
            "SELECT count(cell)".into(),
            "cell".into(),
        ),
        (
            "aggregate over a string column",
            "SELECT avg(scheduler)".into(),
            "scheduler".into(),
        ),
        (
            "frac of a non-boolean column",
            "SELECT frac(makespan_secs)".into(),
            "makespan_secs".into(),
        ),
        (
            "trailing garbage",
            format!("SELECT cell {bad}"),
            bad.to_owned(),
        ),
        (
            "unterminated string literal",
            "SELECT cell WHERE scheduler = 'oops".into(),
            "'oops".into(),
        ),
        ("empty expression", String::new(), String::new()),
        ("unknown verb", format!("{bad} *"), bad.to_owned()),
    ]
}

/// Garbage identifiers substituted into query expressions; indexed by
/// the proptest-drawn tag. Curated to collide with nothing legal: not a
/// column, not an aggregate function, not a keyword.
const QUERY_BAD: [&str; 5] = ["frobnicate", "median", "makespanx", "cellz", "zz_quux"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(BAD_NAMES.len() as u32))]

    /// Every corruption class yields a typed campaign error whose
    /// message names the offending field — across a spread of garbage
    /// names and poison values, and never a panic.
    #[test]
    fn malformed_specs_fail_typed_and_named(
        tag in 0usize..BAD_NAMES.len(),
        poison in 0.5f64..1e6,
    ) {
        for c in corruptions(BAD_NAMES[tag], poison) {
            let err = match CampaignSpec::from_json(&c.json) {
                Err(e) => e,
                Ok(_) => panic!("{}: corrupted spec was accepted:\n{}", c.label, c.json),
            };
            prop_assert!(
                matches!(
                    err,
                    EngineError::Campaign(
                        CampaignError::MalformedSpec(_) | CampaignError::InvalidSpec { .. }
                    )
                ),
                "{}: wrong error type: {err:?}",
                c.label
            );
            let msg = err.to_string();
            prop_assert!(
                msg.contains(c.needle),
                "{}: error does not name {:?}: {msg}",
                c.label,
                c.needle
            );
        }
    }

    /// Every query corruption class yields a typed [`InvalidQuery`]
    /// error carrying exactly the offending token — across a spread of
    /// garbage identifiers, and never a panic.
    #[test]
    fn malformed_queries_fail_typed_and_name_the_token(tag in 0usize..QUERY_BAD.len()) {
        let bad = QUERY_BAD[tag];
        prop_assert!(helios_core::store::Column::by_name(bad).is_none());
        for (label, expr, want) in query_corruptions(bad) {
            let err = match run_query(&expr, &[]) {
                Err(e) => e,
                Ok(_) => panic!("{label}: corrupted query was accepted: {expr:?}"),
            };
            let token = match &err {
                EngineError::Campaign(CampaignError::InvalidQuery { token, .. }) => token.clone(),
                other => panic!("{label}: wrong error type: {other:?}"),
            };
            prop_assert_eq!(
                &token, &want,
                "{}: error names token {:?}, expected {:?} ({})",
                label, token, want, err
            );
            let msg = err.to_string();
            prop_assert!(
                msg.contains("invalid query at"),
                "{}: message is not the typed rendering: {msg}",
                label
            );
        }
    }
}
