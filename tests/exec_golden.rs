//! Golden-report regression tests for the execution core, one pinned
//! cell per execution mode.
//!
//! The hook-driven core promises that every mode (plain, noisy,
//! contended, cached, legacy faults, resilient, online) is the same
//! simulated machine with different hooks engaged. Each fixture entry
//! pins an FNV-1a digest over the realized schedule (per-task device
//! and start/finish bit patterns), the makespan and energy bit
//! patterns, and the transfer/fault tallies — so any drift in the step
//! loop, the staging math, RNG stream forking, or report assembly
//! shows up as a diff against `tests/fixtures/exec_golden.json`.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test exec_golden
//! ```
//!
//! then commit the rewritten fixture alongside the change. A refactor
//! that claims byte-identity must NOT need a regeneration.

use std::fmt::Write as _;
use std::path::PathBuf;

use helios::core::{
    ElasticEvent, ElasticEventKind, ElasticityConfig, Engine, EngineConfig, ExecutionReport,
    FailureModel, FaultConfig, OnlinePolicy, OnlineRunner, RecoveryPolicy, ResilienceConfig,
    ResilientRunner,
};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Scheduler};
use helios::sim::SimDuration;
use helios::workflow::generators::montage;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/exec_golden.json")
}

/// FNV-1a (64-bit) over the report's full realized trace: per placement
/// the task id, device id and start/finish bit patterns, then the
/// makespan, energy, transfer and fault tallies. Byte-exact, so even a
/// 1-ulp drift in the shared staging/occupancy math changes the digest.
fn report_digest(report: &ExecutionReport) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    };
    for p in report.schedule().placements() {
        feed(&(p.task.0 as u64).to_le_bytes());
        feed(&(p.device.0 as u64).to_le_bytes());
        feed(&p.start.as_secs().to_bits().to_le_bytes());
        feed(&p.finish.as_secs().to_bits().to_le_bytes());
    }
    feed(&report.makespan().as_secs().to_bits().to_le_bytes());
    feed(&report.energy().total_j().to_bits().to_le_bytes());
    feed(&(report.transfers().count as u64).to_le_bytes());
    feed(&report.transfers().bytes.to_bits().to_le_bytes());
    feed(&u64::from(report.failures()).to_le_bytes());
    feed(&u64::from(report.retries()).to_le_bytes());
    format!("{hash:016x}")
}

struct GoldenEntry {
    mode: &'static str,
    makespan_bits: String,
    digest: String,
}

/// One pinned cell per execution mode: montage(40, seed 7) on the
/// hpc_node preset, planned by HEFT where a plan applies.
fn current_entries() -> Vec<GoldenEntry> {
    let platform = presets::hpc_node();
    let wf = montage(40, 7).expect("generator accepts these sizes");
    let plan = HeftScheduler::default()
        .schedule(&wf, &platform)
        .expect("HEFT plans the pinned cell");

    let resilience = ResilienceConfig::new(
        FailureModel {
            mttf_secs: 0.02,
            weibull_shape: None,
            degraded_prob: 0.1,
            permanent_prob: 0.0,
            degraded_slowdown: 2.0,
            degraded_repair_secs: 0.01,
            restart_overhead_secs: 0.0005,
        },
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.0005,
            factor: 2.0,
            cap_secs: 0.005,
            max_retries: 10_000,
        },
    );
    let elastic_resilience = resilience.clone();

    let modes: Vec<(&'static str, ExecutionReport)> = vec![
        (
            "plain",
            Engine::default()
                .execute_plan(&platform, &wf, &plan)
                .expect("plain"),
        ),
        (
            "noise",
            Engine::new(EngineConfig {
                noise_cv: 0.2,
                seed: 11,
                ..Default::default()
            })
            .execute_plan(&platform, &wf, &plan)
            .expect("noise"),
        ),
        (
            "contention_caching",
            Engine::new(EngineConfig {
                link_contention: true,
                data_caching: true,
                ..Default::default()
            })
            .execute_plan(&platform, &wf, &plan)
            .expect("contention_caching"),
        ),
        (
            "legacy_faults",
            Engine::new(EngineConfig {
                seed: 3,
                faults: Some(
                    FaultConfig::new(0.05, SimDuration::from_secs(0.0005), 100)
                        .expect("fault parameters are valid"),
                ),
                ..Default::default()
            })
            .execute_plan(&platform, &wf, &plan)
            .expect("legacy_faults"),
        ),
        (
            "resilient",
            ResilientRunner::new(EngineConfig {
                seed: 5,
                noise_cv: 0.1,
                resilience: Some(resilience),
                ..Default::default()
            })
            .execute_plan(&platform, &wf, &plan)
            .expect("resilient"),
        ),
        (
            "online_jit",
            OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
                .run(&platform, &wf)
                .expect("online_jit"),
        ),
        (
            "online_ranked",
            OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
                .run(&platform, &wf)
                .expect("online_ranked"),
        ),
        (
            // Appended after the original seven modes so their fixture
            // rows stay byte-identical: capacity events must not
            // perturb any pre-existing digest.
            "elastic",
            ResilientRunner::new(EngineConfig {
                seed: 5,
                noise_cv: 0.1,
                resilience: Some(elastic_resilience),
                elasticity: Some(ElasticityConfig {
                    events: vec![
                        ElasticEvent {
                            device: "cpu1".into(),
                            at_secs: 0.002,
                            kind: ElasticEventKind::Preempt { notice_secs: 0.001 },
                        },
                        ElasticEvent {
                            device: "gpu0".into(),
                            at_secs: 0.004,
                            kind: ElasticEventKind::Drain {
                                deadline_secs: 0.006,
                            },
                        },
                        ElasticEvent {
                            device: "cpu1".into(),
                            at_secs: 0.02,
                            kind: ElasticEventKind::Join,
                        },
                    ],
                    churn: Vec::new(),
                }),
                ..Default::default()
            })
            .run(&platform, &wf, &HeftScheduler::default())
            .expect("elastic"),
        ),
    ];

    modes
        .into_iter()
        .map(|(mode, report)| GoldenEntry {
            mode,
            makespan_bits: format!("{:016x}", report.makespan().as_secs().to_bits()),
            digest: report_digest(&report),
        })
        .collect()
}

fn render_fixture(entries: &[GoldenEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            out,
            "  {{\"mode\": \"{}\", \"makespan_bits\": \"{}\", \"digest\": \"{}\"}}{comma}",
            e.mode, e.makespan_bits, e.digest
        )
        .expect("write to string");
    }
    out.push_str("]\n");
    out
}

#[test]
fn execution_modes_match_the_committed_golden_reports() {
    let entries = current_entries();
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, render_fixture(&entries)).expect("write fixture");
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; run `UPDATE_GOLDEN=1 cargo test --test exec_golden` \
             to (re)create it",
            path.display()
        )
    });
    let golden: serde_json::Value = serde_json::from_str(&raw).expect("fixture parses");
    let golden = golden.as_array().expect("fixture is a JSON array");
    assert_eq!(
        golden.len(),
        entries.len(),
        "fixture covers a different mode set; regenerate with UPDATE_GOLDEN=1"
    );
    for (want, got) in golden.iter().zip(&entries) {
        assert_eq!(want["mode"].as_str(), Some(got.mode), "mode order drifted");
        assert_eq!(
            want["makespan_bits"].as_str(),
            Some(got.makespan_bits.as_str()),
            "{}: makespan bit pattern drifted",
            got.mode
        );
        assert_eq!(
            want["digest"].as_str(),
            Some(got.digest.as_str()),
            "{}: realized-schedule digest drifted",
            got.mode
        );
    }
}

#[test]
fn execution_modes_are_deterministic_per_seed() {
    let a = current_entries();
    let b = current_entries();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.digest, y.digest, "{}: same seed must reproduce", x.mode);
    }
}
