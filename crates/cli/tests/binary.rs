//! End-to-end tests of the compiled `helios` binary.

use std::process::Command;

fn helios() -> Command {
    Command::new(env!("CARGO_BIN_EXE_helios"))
}

#[test]
fn help_and_unknown_command() {
    let out = helios().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("generate"));

    let out = helios().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn no_args_is_usage_error() {
    let out = helios().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = std::env::temp_dir().join("helios-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let wf = dir.join("wf.json");

    let out = helios()
        .args([
            "generate",
            "--family",
            "cybershake",
            "--tasks",
            "60",
            "--seed",
            "9",
            "--out",
            wf.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = helios()
        .args([
            "schedule",
            "--workflow",
            wf.to_str().unwrap(),
            "--scheduler",
            "peft",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("peft on hpc_node"));

    let report = dir.join("report.json");
    let out = helios()
        .args([
            "run",
            "--workflow",
            wf.to_str().unwrap(),
            "--caching",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
}

const SPEC_JSON: &str = r#"{
    "name": "bin-smoke",
    "families": ["sipht"],
    "platforms": ["workstation"],
    "schedulers": ["heft"],
    "seeds": {"base": 3, "count": 2},
    "tasks": 20
}"#;

#[test]
fn campaign_sharded_sweep_through_the_binary() {
    let dir = std::env::temp_dir().join("helios-bin-sweep");
    // Stale outputs from earlier runs would trigger resume semantics.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_owned();
    std::fs::write(dir.join("spec.json"), SPEC_JSON).unwrap();

    let run = |args: &[&str]| {
        let out = helios().args(args).output().unwrap();
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--out",
        &path("full.json"),
    ]);
    run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--shard",
        "1/2",
        "--out",
        &path("s1.json"),
    ]);
    run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--shard",
        "2/2",
        "--out",
        &path("s2.json"),
    ]);
    let out = run(&[
        "campaign",
        "merge",
        "--in",
        &path("s1.json"),
        "--in",
        &path("s2.json"),
        "--out",
        &path("merged.json"),
    ]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("bin-smoke"));

    let full = std::fs::read(dir.join("full.json")).unwrap();
    let merged = std::fs::read(dir.join("merged.json")).unwrap();
    assert_eq!(full, merged, "shard merge must be byte-identical");
}

#[test]
fn killed_sweep_resumes_byte_identically() {
    let dir = std::env::temp_dir().join("helios-bin-resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_owned();
    std::fs::write(dir.join("spec.json"), SPEC_JSON).unwrap();

    // The uninterrupted reference run.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("full.json"),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // "Crash" after one cell: partial shard report, nonzero exit.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("resumed.json"),
        ])
        .env("HELIOS_SWEEP_ABORT_AFTER", "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "an aborted sweep must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("HELIOS_SWEEP_ABORT_AFTER"), "{stderr}");
    assert!(stderr.contains("resume"), "{stderr}");

    // Resume against the partial file: skips the done cell, completes.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("resumed.json"),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resuming from"), "{stdout}");
    assert!(
        stdout.contains("1 of 2 owned cells already done"),
        "{stdout}"
    );

    let full = std::fs::read(dir.join("full.json")).unwrap();
    let resumed = std::fs::read(dir.join("resumed.json")).unwrap();
    assert_eq!(
        full, resumed,
        "kill-and-resume must be byte-identical to the uninterrupted run"
    );

    // Re-running against the complete output is a cheap no-op.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("resumed.json"),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("already complete"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A foreign spec must be refused, not silently overwritten.
    std::fs::write(
        dir.join("other.json"),
        SPEC_JSON.replace(r#""tasks": 20"#, r#""tasks": 25"#),
    )
    .unwrap();
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("other.json"),
            "--out",
            &path("resumed.json"),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing"), "{stderr}");
}

#[test]
fn malformed_spec_file_is_a_hard_error() {
    let dir = std::env::temp_dir().join("helios-bin-badspec");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, r#"{"name": "x", "families": "#).unwrap();

    let out = helios()
        .args(["campaign", "run", "--spec", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed campaign spec"), "{stderr}");
}

#[test]
fn empty_sweep_grid_is_a_hard_error() {
    let dir = std::env::temp_dir().join("helios-bin-emptyspec");
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.json");
    std::fs::write(&empty, SPEC_JSON.replace(r#"["sipht"]"#, "[]")).unwrap();

    let out = helios()
        .args(["campaign", "run", "--spec", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("`families` is empty") && stderr.contains("no cells"),
        "{stderr}"
    );
}

/// A fault-topology spec must die at validation with an error naming
/// the offending value and the legal alternatives — not deep inside a
/// shard run.
#[test]
fn fault_topology_spec_errors_are_actionable() {
    let dir = std::env::temp_dir().join("helios-bin-faultspec");
    std::fs::create_dir_all(&dir).unwrap();
    let resilience = r#", "resilience": {
        "mttf_secs": 0.5, "degraded_prob": 0.1,
        "policy": {"kind": "retry-backoff", "base_secs": 0.001,
                   "factor": 2.0, "cap_secs": 0.01}
    }"#;
    let with = |extra: &str| {
        let mut s = SPEC_JSON.trim_end().trim_end_matches('}').to_owned();
        s.push_str(extra);
        s.push('}');
        s
    };
    let cases: [(&str, String, &[&str]); 5] = [
        (
            "bad-distribution.json",
            with(&format!(
                r#"{resilience}, "interconnect_faults":
                    {{"distribution": "gamma", "mttf_secs": 1.0}}"#
            )),
            &["gamma", "exponential", "weibull"],
        ),
        (
            "links-without-resilience.json",
            with(r#", "interconnect_faults": {"distribution": "exponential", "mttf_secs": 1.0}"#),
            &["resilience"],
        ),
        (
            "unknown-device.json",
            with(&format!(
                r#"{resilience}, "failure_domains": [{{"kind": "rack", "name": "r0",
                    "devices": ["xpu9"], "mttf_secs": 1.0, "degraded_prob": 1.0}}]"#
            )),
            &["xpu9", "cpu0"],
        ),
        (
            "unknown-link.json",
            with(&format!(
                r#"{resilience}, "failure_domains": [{{"kind": "rack", "name": "r0",
                    "links": ["myrinet"], "mttf_secs": 1.0, "degraded_prob": 1.0}}]"#
            )),
            &["myrinet", "pcie3-x16"],
        ),
        (
            "zero-budget.json",
            with(r#", "cell_step_budget": 0"#),
            &["cell_step_budget"],
        ),
    ];
    for (file, json, needles) in cases {
        let path = dir.join(file);
        std::fs::write(&path, json).unwrap();
        let out = helios()
            .args(["campaign", "run", "--spec", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "{file} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        for needle in needles {
            assert!(stderr.contains(needle), "{file}: {needle} not in {stderr}");
        }
    }
}

/// `HELIOS_CELL_STEP_BUDGET` starves every cell from the environment
/// without editing the spec; cells come back timed out, not as errors.
#[test]
fn step_budget_env_override_times_cells_out() {
    let dir = std::env::temp_dir().join("helios-bin-budget");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("spec.json"), SPEC_JSON).unwrap();
    let out_path = dir.join("out.json");

    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            dir.join("spec.json").to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .env("HELIOS_CELL_STEP_BUDGET", "5")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("timed_out"), "{json}");

    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            dir.join("spec.json").to_str().unwrap(),
        ])
        .env("HELIOS_CELL_STEP_BUDGET", "many")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "garbage budget must be refused");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("HELIOS_CELL_STEP_BUDGET"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_workflow_file_is_reported() {
    let out = helios()
        .args(["analyze", "--workflow", "/nonexistent/wf.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("io error"));
}
