//! End-to-end tests of the compiled `helios` binary.

use std::process::Command;

fn helios() -> Command {
    Command::new(env!("CARGO_BIN_EXE_helios"))
}

#[test]
fn help_and_unknown_command() {
    let out = helios().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("generate"));

    let out = helios().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn no_args_is_usage_error() {
    let out = helios().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = std::env::temp_dir().join("helios-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let wf = dir.join("wf.json");

    let out = helios()
        .args([
            "generate",
            "--family",
            "cybershake",
            "--tasks",
            "60",
            "--seed",
            "9",
            "--out",
            wf.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = helios()
        .args([
            "schedule",
            "--workflow",
            wf.to_str().unwrap(),
            "--scheduler",
            "peft",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("peft on hpc_node"));

    let report = dir.join("report.json");
    let out = helios()
        .args([
            "run",
            "--workflow",
            wf.to_str().unwrap(),
            "--caching",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
}

const SPEC_JSON: &str = r#"{
    "name": "bin-smoke",
    "families": ["sipht"],
    "platforms": ["workstation"],
    "schedulers": ["heft"],
    "seeds": {"base": 3, "count": 2},
    "tasks": 20
}"#;

#[test]
fn campaign_sharded_sweep_through_the_binary() {
    let dir = std::env::temp_dir().join("helios-bin-sweep");
    // Stale outputs from earlier runs would trigger resume semantics.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_owned();
    std::fs::write(dir.join("spec.json"), SPEC_JSON).unwrap();

    let run = |args: &[&str]| {
        let out = helios().args(args).output().unwrap();
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--out",
        &path("full.json"),
    ]);
    run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--shard",
        "1/2",
        "--out",
        &path("s1.json"),
    ]);
    run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--shard",
        "2/2",
        "--out",
        &path("s2.json"),
    ]);
    let out = run(&[
        "campaign",
        "merge",
        "--in",
        &path("s1.json"),
        "--in",
        &path("s2.json"),
        "--out",
        &path("merged.json"),
    ]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("bin-smoke"));

    let full = std::fs::read(dir.join("full.json")).unwrap();
    let merged = std::fs::read(dir.join("merged.json")).unwrap();
    assert_eq!(full, merged, "shard merge must be byte-identical");
}

#[test]
fn killed_sweep_resumes_byte_identically() {
    let dir = std::env::temp_dir().join("helios-bin-resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_owned();
    std::fs::write(dir.join("spec.json"), SPEC_JSON).unwrap();

    // The uninterrupted reference run.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("full.json"),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // "Crash" after one cell: partial shard report, nonzero exit.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("resumed.json"),
        ])
        .env("HELIOS_SWEEP_ABORT_AFTER", "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "an aborted sweep must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("HELIOS_SWEEP_ABORT_AFTER"), "{stderr}");
    assert!(stderr.contains("resume"), "{stderr}");

    // Resume against the partial file: skips the done cell, completes.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("resumed.json"),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resuming from"), "{stdout}");
    assert!(
        stdout.contains("1 of 2 owned cells already done"),
        "{stdout}"
    );

    let full = std::fs::read(dir.join("full.json")).unwrap();
    let resumed = std::fs::read(dir.join("resumed.json")).unwrap();
    assert_eq!(
        full, resumed,
        "kill-and-resume must be byte-identical to the uninterrupted run"
    );

    // Re-running against the complete output is a cheap no-op.
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("resumed.json"),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("already complete"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A foreign spec must be refused, not silently overwritten.
    std::fs::write(
        dir.join("other.json"),
        SPEC_JSON.replace(r#""tasks": 20"#, r#""tasks": 25"#),
    )
    .unwrap();
    let out = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("other.json"),
            "--out",
            &path("resumed.json"),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing"), "{stderr}");
}

#[test]
fn malformed_spec_file_is_a_hard_error() {
    let dir = std::env::temp_dir().join("helios-bin-badspec");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, r#"{"name": "x", "families": "#).unwrap();

    let out = helios()
        .args(["campaign", "run", "--spec", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed campaign spec"), "{stderr}");
}

#[test]
fn empty_sweep_grid_is_a_hard_error() {
    let dir = std::env::temp_dir().join("helios-bin-emptyspec");
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.json");
    std::fs::write(&empty, SPEC_JSON.replace(r#"["sipht"]"#, "[]")).unwrap();

    let out = helios()
        .args(["campaign", "run", "--spec", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("`families` is empty") && stderr.contains("no cells"),
        "{stderr}"
    );
}

#[test]
fn bad_workflow_file_is_reported() {
    let out = helios()
        .args(["analyze", "--workflow", "/nonexistent/wf.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("io error"));
}
