//! End-to-end tests of the compiled `helios` binary.

use std::process::Command;

fn helios() -> Command {
    Command::new(env!("CARGO_BIN_EXE_helios"))
}

#[test]
fn help_and_unknown_command() {
    let out = helios().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("generate"));

    let out = helios().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn no_args_is_usage_error() {
    let out = helios().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = std::env::temp_dir().join("helios-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let wf = dir.join("wf.json");

    let out = helios()
        .args([
            "generate",
            "--family",
            "cybershake",
            "--tasks",
            "60",
            "--seed",
            "9",
            "--out",
            wf.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = helios()
        .args([
            "schedule",
            "--workflow",
            wf.to_str().unwrap(),
            "--scheduler",
            "peft",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("peft on hpc_node"));

    let report = dir.join("report.json");
    let out = helios()
        .args([
            "run",
            "--workflow",
            wf.to_str().unwrap(),
            "--caching",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
}

#[test]
fn bad_workflow_file_is_reported() {
    let out = helios()
        .args(["analyze", "--workflow", "/nonexistent/wf.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("io error"));
}
