//! End-to-end tests of `helios fuzz`: determinism, the sabotage
//! acceptance path (find → shrink → fixture → replay), and the
//! CLI-level infeasible-grid smoke.

use std::path::PathBuf;
use std::process::Command;

use helios_core::fuzz::BugFixture;

fn helios() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_helios"));
    // The sabotage hook must never leak in from the ambient environment.
    cmd.env_remove("HELIOS_FUZZ_BREAK_ORACLE");
    cmd
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Repo-relative path to a committed file, resolved from the cli crate.
fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn fuzz_run_is_deterministic_and_clean() {
    let run = || {
        let out = helios()
            .args(["fuzz", "--seed", "7", "--runs", "8"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let first = run();
    assert!(
        first.contains("8 case(s) from seed 7, 0 divergences"),
        "{first}"
    );
    assert_eq!(first, run(), "same seed and runs must print identically");
}

#[test]
fn sabotaged_oracle_shrinks_to_a_replayable_fixture() {
    let dir = temp_dir("helios-fuzz-sabotage");

    // Find: the sabotaged oracle fires on the first case, the run
    // shrinks it and exits non-zero with a fixture on disk.
    let out = helios()
        .args(["fuzz", "--seed", "7", "--runs", "3"])
        .args(["--bugbase", dir.to_str().unwrap()])
        .env("HELIOS_FUZZ_BREAK_ORACLE", "jobs_identity")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--replay"), "{stderr}");

    let fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(fixtures.len(), 1, "exactly one fixture: {fixtures:?}");
    let fixture = BugFixture::from_json(&std::fs::read_to_string(&fixtures[0]).unwrap()).unwrap();
    assert_eq!(fixture.oracle, "jobs_identity");
    // The shrinker reduced the spec to the structural floor.
    assert_eq!(fixture.spec.families.len(), 1);
    assert_eq!(fixture.spec.platforms.len(), 1);
    assert_eq!(fixture.spec.schedulers.len(), 1);
    assert_eq!(fixture.spec.seeds.count, 1);
    assert!(fixture.spec.resilience.is_none());

    // Replay with the hook armed: the recorded failure reproduces.
    let out = helios()
        .args(["fuzz", "--replay", fixtures[0].to_str().unwrap()])
        .env("HELIOS_FUZZ_BREAK_ORACLE", "jobs_identity")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("DIVERGES"));

    // Replay without the hook: the "bug" is fixed, the replay is clean —
    // and a directory replay picks the fixture up the same way.
    let out = helios()
        .args(["fuzz", "--replay", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("replayed 1 fixture(s), 0 diverging"));
}

#[test]
fn unknown_sabotage_oracle_is_a_usage_error() {
    let out = helios()
        .args(["fuzz", "--seed", "1", "--runs", "1"])
        .env("HELIOS_FUZZ_BREAK_ORACLE", "no_such_oracle")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no_such_oracle"), "{stderr}");
    assert!(stderr.contains("jobs_identity"), "lists oracles: {stderr}");
}

#[test]
fn replay_of_missing_fixture_dir_is_an_error() {
    let dir = temp_dir("helios-fuzz-empty");
    let out = helios()
        .args(["fuzz", "--replay", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no *.json fixtures"));
}

#[test]
fn infeasible_grid_smoke_survives_shard_merge() {
    // cybershake working sets exceed every edge_soc device: the sweep
    // must report every cell as an `infeasible` measurement (null
    // summary means), never an error — and shard + merge must agree
    // byte-for-byte with the unsharded run.
    let dir = temp_dir("helios-infeasible-smoke");
    let spec = repo_file("examples/specs/infeasible_smoke.json");
    let spec = spec.to_str().unwrap();

    let whole = dir.join("whole.json");
    let out = helios()
        .args(["campaign", "run", "--spec", spec])
        .args(["--out", whole.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let whole_json = std::fs::read_to_string(&whole).unwrap();
    assert!(
        whole_json.contains("\"incomplete_reason\": \"infeasible\""),
        "cells carry the pinned reason"
    );
    assert!(
        whole_json.contains("\"mean_makespan_secs\": null"),
        "summary means stay null for all-incomplete rows"
    );
    assert!(!whole_json.contains("\"completed\": true"));

    // The same grid through two shards and a merge.
    let merged = dir.join("merged.json");
    for k in 1..=2 {
        let shard = dir.join(format!("shard{k}.json"));
        let out = helios()
            .args(["campaign", "run", "--spec", spec])
            .args(["--shard", &format!("{k}/2")])
            .args(["--out", shard.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = helios()
        .args(["campaign", "merge"])
        .args(["--in", dir.join("shard1.json").to_str().unwrap()])
        .args(["--in", dir.join("shard2.json").to_str().unwrap()])
        .args(["--out", merged.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        whole_json,
        std::fs::read_to_string(&merged).unwrap(),
        "sharded infeasible grid merges byte-identically"
    );
}
