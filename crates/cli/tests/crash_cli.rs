//! End-to-end crash tests of the compiled `helios` binary: SIGTERM
//! drain, torn-write injection + `campaign recover`, and the typed
//! corrupt-resume error for damaged JSON reports.

use std::process::Command;

fn helios() -> Command {
    Command::new(env!("CARGO_BIN_EXE_helios"))
}

const SPEC_JSON: &str = r#"{
    "name": "crash-cli",
    "families": ["sipht"],
    "platforms": ["workstation"],
    "schedulers": ["heft"],
    "seeds": {"base": 11, "count": 4},
    "tasks": 20
}"#;

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("helios-crashcli-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sigterm_drains_to_a_resumable_journal() {
    let dir = fresh_dir("sigterm");
    let path = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    // Enough cells that the run is still going ~0.3 s in (debug binary).
    std::fs::write(
        dir.join("spec.json"),
        SPEC_JSON.replace(r#""count": 4"#, r#""count": 2000"#),
    )
    .unwrap();

    let reference = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("ref.json"),
        ])
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );

    let child = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--journal",
            &path("sweep.journal"),
            "--out",
            &path("out.json"),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));
    let _ = Command::new("sh")
        .args(["-c", &format!("kill -TERM {}", child.id())])
        .status();
    let out = child.wait_with_output().unwrap();

    match out.status.code() {
        // Drained: exit code 3, resumable message, journal intact.
        Some(3) => {
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("re-run with the same --journal"),
                "{stderr}"
            );
            let resume = helios()
                .args([
                    "campaign",
                    "run",
                    "--spec",
                    &path("spec.json"),
                    "--journal",
                    &path("sweep.journal"),
                    "--out",
                    &path("out.json"),
                ])
                .output()
                .unwrap();
            assert!(
                resume.status.success(),
                "{}",
                String::from_utf8_lossy(&resume.stderr)
            );
        }
        // The run beat the signal: fine, it must simply have finished.
        Some(0) => {}
        other => panic!(
            "expected drain (3) or completion (0), got {other:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        ),
    }
    assert_eq!(
        std::fs::read_to_string(path("out.json")).unwrap(),
        std::fs::read_to_string(path("ref.json")).unwrap(),
        "drained-and-resumed bytes must equal the uninterrupted run"
    );
}

#[test]
fn torn_write_is_salvaged_by_recover_and_resumes_byte_identically() {
    let dir = fresh_dir("torn");
    let path = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    std::fs::write(dir.join("spec.json"), SPEC_JSON).unwrap();

    let reference = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--out",
            &path("ref.json"),
        ])
        .output()
        .unwrap();
    assert!(reference.status.success());

    // Tear the 4th journal append halfway through its bytes.
    let torn = helios()
        .env("HELIOS_JOURNAL_TORN_WRITE", "3")
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--journal",
            &path("sweep.journal"),
        ])
        .output()
        .unwrap();
    assert_eq!(torn.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&torn.stderr);
    assert!(stderr.contains("injected torn journal write"), "{stderr}");

    let recover = helios()
        .args(["campaign", "recover", &path("sweep.journal")])
        .output()
        .unwrap();
    assert!(
        recover.status.success(),
        "{}",
        String::from_utf8_lossy(&recover.stderr)
    );
    let stdout = String::from_utf8_lossy(&recover.stdout);
    assert!(stdout.contains("torn byte(s)"), "{stdout}");
    assert!(stdout.contains("resume with"), "{stdout}");

    let resume = helios()
        .args([
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--journal",
            &path("sweep.journal"),
            "--out",
            &path("out.json"),
        ])
        .output()
        .unwrap();
    assert!(
        resume.status.success(),
        "{}",
        String::from_utf8_lossy(&resume.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(path("out.json")).unwrap(),
        std::fs::read_to_string(path("ref.json")).unwrap()
    );

    // The journal itself merges directly, producing the same bytes.
    let merge = helios()
        .args([
            "campaign",
            "merge",
            "--in",
            &path("sweep.journal"),
            "--out",
            &path("merged.json"),
        ])
        .output()
        .unwrap();
    assert!(
        merge.status.success(),
        "{}",
        String::from_utf8_lossy(&merge.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(path("merged.json")).unwrap(),
        std::fs::read_to_string(path("ref.json")).unwrap()
    );
}

#[test]
fn corrupt_json_resume_is_typed_and_recover_repairs_it() {
    let dir = fresh_dir("corruptjson");
    let path = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    std::fs::write(dir.join("spec.json"), SPEC_JSON).unwrap();

    let run = |args: &[&str]| helios().args(args).output().unwrap();
    let reference = run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--out",
        &path("full.json"),
    ]);
    assert!(reference.status.success());

    for k in 1..=2 {
        let out = run(&[
            "campaign",
            "run",
            "--spec",
            &path("spec.json"),
            "--shard",
            &format!("{k}/2"),
            "--out",
            &path(&format!("s{k}.json")),
        ]);
        assert!(out.status.success());
    }

    // Simulate a crash mid-write: chop the tail off shard 1's report.
    let intact = std::fs::read_to_string(path("s1.json")).unwrap();
    std::fs::write(path("s1.json"), &intact[..intact.len() * 3 / 5]).unwrap();

    let refused = run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--shard",
        "1/2",
        "--out",
        &path("s1.json"),
    ]);
    assert_eq!(refused.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(stderr.contains("corrupt resume file"), "{stderr}");
    assert!(stderr.contains("at byte"), "{stderr}");
    assert!(stderr.contains("campaign recover"), "{stderr}");

    let recover = run(&["campaign", "recover", &path("s1.json")]);
    assert!(
        recover.status.success(),
        "{}",
        String::from_utf8_lossy(&recover.stderr)
    );
    let stdout = String::from_utf8_lossy(&recover.stdout);
    assert!(stdout.contains("salvaged"), "{stdout}");

    // The repaired file resumes cleanly, and the merged partition is
    // byte-identical to the unsharded run.
    let resumed = run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--shard",
        "1/2",
        "--out",
        &path("s1.json"),
    ]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let merged = run(&[
        "campaign",
        "merge",
        "--in",
        &path("s1.json"),
        "--in",
        &path("s2.json"),
        "--out",
        &path("merged.json"),
    ]);
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(path("merged.json")).unwrap(),
        std::fs::read_to_string(path("full.json")).unwrap()
    );

    // Handing the journal to --out (or an intact report to recover) is
    // guided, not punished.
    let run_j = run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--journal",
        &path("j.journal"),
    ]);
    assert!(run_j.status.success());
    let misuse = run(&[
        "campaign",
        "run",
        "--spec",
        &path("spec.json"),
        "--out",
        &path("j.journal"),
    ]);
    assert_eq!(misuse.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&misuse.stderr);
    assert!(stderr.contains("--journal"), "{stderr}");
    let noop = run(&["campaign", "recover", &path("full.json")]);
    assert!(noop.status.success());
    assert!(String::from_utf8_lossy(&noop.stdout).contains("nothing to recover"));
}
