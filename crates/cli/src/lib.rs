//! The `helios` command-line interface.
//!
//! Drives the whole workspace without writing Rust:
//!
//! ```sh
//! helios generate --family montage --tasks 100 --seed 1 --out wf.json
//! helios analyze  --workflow wf.json --platform hpc_node
//! helios schedule --workflow wf.json --platform hpc_node --scheduler heft --gantt
//! helios run      --workflow wf.json --platform hpc_node --scheduler heft \
//!                 --noise 0.2 --contention --caching --trace trace.json
//! helios platforms
//! ```
//!
//! The library portion holds the argument parser and command
//! implementations so they are unit-testable; `main.rs` is a thin shim.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod drain;

use std::fmt;

/// CLI-level errors: bad usage or a failure from the underlying crates.
#[derive(Debug)]
pub enum CliError {
    /// Wrong or missing arguments; the message is user-facing usage help.
    Usage(String),
    /// An I/O failure reading or writing a file.
    Io(std::io::Error),
    /// Any error surfaced by the helios crates.
    Helios(String),
    /// A journaled sweep drained on SIGINT/SIGTERM: in-flight cells were
    /// finished and flushed, and the run can resume. Maps to exit code 3
    /// so wrappers can distinguish "interrupted but resumable" from
    /// failure.
    Interrupted(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Helios(msg) => write!(f, "{msg}"),
            CliError::Interrupted(msg) => write!(f, "interrupted: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

macro_rules! from_helios_error {
    ($($ty:ty),*) => {$(
        impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError::Helios(e.to_string())
            }
        }
    )*};
}

from_helios_error!(
    helios_platform::PlatformError,
    helios_workflow::WorkflowError,
    helios_workflow::io::WorkflowIoError,
    helios_sched::SchedError,
    helios_core::EngineError,
    serde_json::Error
);

/// Top-level dispatch: parses `argv` (without the program name) and runs
/// the selected command, writing human output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on bad usage or command failure.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::Usage(usage()));
    };
    match command.as_str() {
        "generate" => commands::generate(rest, out),
        "analyze" => commands::analyze(rest, out),
        "schedule" => commands::schedule(rest, out),
        "run" => commands::run(rest, out),
        "campaign" => commands::campaign(rest, out),
        "query" => commands::query(rest, out),
        "fuzz" => commands::fuzz(rest, out),
        "platforms" => commands::platforms(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", usage())?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> String {
    "helios <command> [options]\n\
     commands:\n\
       generate   create a workflow (--family, --tasks, --seed, --out, --dot)\n\
       analyze    workflow statistics on a platform (--workflow, --platform)\n\
       schedule   plan a workflow (--workflow, --platform, --scheduler, --gantt, --out)\n\
       run        execute a workflow (--workflow, --platform, --scheduler, --noise,\n\
                  --seed, --contention, --caching, --online, --trace, --report)\n\
       campaign   run a workflow ensemble (--member path[:arrival[:prio]],\n\
                  --policy fifo|priority|fair-share)\n\
       campaign run    sweep a spec grid (--spec file.json, --shard K/N,\n\
                       --jobs N, --out report.json, --journal wal.journal,\n\
                       --store cells.store)\n\
       campaign merge  recombine shard reports, journals or stores\n\
                       (--in shard.json --in shard.store ..., --out)\n\
       campaign recover FILE  salvage a torn journal, store or JSON report\n\
                       in place (--out to write the view elsewhere)\n\
       query      run 'SELECT ... [WHERE ...] [GROUP BY ...]' over sweep\n\
                  results (--in report.json|wal.journal|cells.store, --json)\n\
       fuzz       adversarial harness: random specs vs differential oracles\n\
                  (--seed, --runs, --bugbase DIR, --replay FILE|DIR)\n\
       platforms  list the preset platforms\n\
       help       show this message"
        .to_owned()
}
