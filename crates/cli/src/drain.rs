//! SIGINT/SIGTERM drain flag for journaled sweeps.
//!
//! Installing the handler turns both signals from process death into a
//! cooperative drain request: the sweep finishes the cells already in
//! flight (each durably journaled), stops claiming new ones, and exits
//! with a typed resumable status. A second signal during the drain
//! still kills the process the hard way — which the journal survives
//! by design.
//!
//! The handler only stores into a static `AtomicBool` (async-signal
//! safe); everything else happens on the normal control path. The
//! `signal(2)` binding is declared directly — std already links libc
//! on every Unix target, so no crate dependency is needed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static DRAIN: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

/// Installs the SIGINT/SIGTERM handler (once per process) and returns
/// the drain flag it arms. On non-Unix targets the flag is returned
/// un-armed: signals keep their default behavior and the journal's
/// crash salvage covers recovery instead.
pub fn install() -> &'static AtomicBool {
    INSTALL.call_once(install_handlers);
    &DRAIN
}

#[cfg(unix)]
fn install_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_signum: i32) {
        DRAIN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        let a = install();
        let b = install();
        assert!(std::ptr::eq(a, b));
        // The flag belongs to the whole process; tests must not signal
        // themselves, so all we pin here is that installing does not
        // spuriously arm it.
        assert!(!a.load(Ordering::Relaxed) || b.load(Ordering::Relaxed));
    }
}
