//! Command implementations.

use std::io::Write;

use helios_core::{Engine, EngineConfig, OnlinePolicy, OnlineRunner};
use helios_platform::{presets, Platform};
use helios_sched::{all_schedulers, metrics::ScheduleMetrics, Scheduler};
use helios_workflow::generators::{synthetic, WorkflowClass};
use helios_workflow::{analysis, io as wfio, Workflow};

use crate::args::Args;
use crate::CliError;

/// Resolves a preset platform by name.
fn platform_by_name(name: &str) -> Result<Platform, CliError> {
    presets::by_name(name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown platform {name:?} (workstation, hpc_node, cluster<N>, edge_soc)"
        ))
    })
}

/// Resolves a scheduler by its report name.
fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, CliError> {
    helios_sched::scheduler_by_name(name).ok_or_else(|| {
        let names: Vec<String> = all_schedulers()
            .iter()
            .map(|s| s.name().to_owned())
            .collect();
        CliError::Usage(format!(
            "unknown scheduler {name:?} (available: {})",
            names.join(", ")
        ))
    })
}

/// Loads a workflow from a JSON file.
fn load_workflow(path: &str) -> Result<Workflow, CliError> {
    let json = std::fs::read_to_string(path)?;
    Ok(wfio::from_json(&json)?)
}

/// `helios generate` — create a workflow file.
pub fn generate(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "family", "tasks", "seed", "out", "dot", "levels", "width", "ccr", "platform",
        ],
        &[],
    )?;
    let family = args.require("family")?;
    let tasks = args.parse_or("tasks", 100usize)?;
    let seed = args.parse_or("seed", 0u64)?;

    let mut wf = match family {
        "montage" | "cybershake" | "epigenomics" | "ligo" | "sipht" => {
            let class = WorkflowClass::ALL
                .into_iter()
                .find(|c| c.as_str() == family)
                .expect("names match WorkflowClass::as_str");
            class.generate(tasks, seed)?
        }
        "layered" => {
            let width = args.parse_or("width", 10usize)?;
            let levels = args.parse_or("levels", tasks.div_ceil(width.max(1)))?;
            let config = synthetic::LayeredConfig {
                levels,
                width,
                ..synthetic::LayeredConfig::default()
            };
            synthetic::layered_random(&config, seed)?
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown family {other:?} (montage, cybershake, epigenomics, ligo, sipht, layered)"
            )))
        }
    };
    if let Some(ccr) = args.get("ccr") {
        let target: f64 = ccr
            .parse()
            .map_err(|_| CliError::Usage(format!("--ccr {ccr:?} is not a number")))?;
        let platform = platform_by_name(args.get("platform").unwrap_or("hpc_node"))?;
        wf = synthetic::scale_edges_to_ccr(&wf, &platform, target)?;
    }

    if let Some(path) = args.get("out") {
        std::fs::write(path, wfio::to_json(&wf)?)?;
        writeln!(
            out,
            "wrote {} ({} tasks, {} edges)",
            path,
            wf.num_tasks(),
            wf.num_edges()
        )?;
    } else {
        writeln!(out, "{}", wfio::to_json(&wf)?)?;
    }
    if let Some(path) = args.get("dot") {
        std::fs::write(path, wfio::to_dot(&wf))?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

/// `helios analyze` — workflow statistics on a platform.
pub fn analyze(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &["workflow", "platform"], &[])?;
    let wf = load_workflow(args.require("workflow")?)?;
    let platform = platform_by_name(args.get("platform").unwrap_or("hpc_node"))?;
    let stats = analysis::WorkflowStats::compute(&wf, &platform)?;
    writeln!(out, "workflow:  {}", stats.name)?;
    writeln!(out, "tasks:     {}", stats.tasks)?;
    writeln!(out, "edges:     {}", stats.edges)?;
    writeln!(out, "depth:     {}", stats.depth)?;
    writeln!(out, "width:     {}", stats.width)?;
    writeln!(out, "work:      {:.1} Gflop", stats.total_gflop)?;
    writeln!(out, "data:      {:.2} GB", stats.total_bytes / 1e9)?;
    writeln!(out, "CCR:       {:.4} (on {})", stats.ccr, platform.name())?;
    writeln!(out, "crit.path: {:.4} s", stats.cp_seconds)?;
    Ok(())
}

/// `helios schedule` — plan a workflow and report metrics.
pub fn schedule(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &["workflow", "platform", "scheduler", "out"],
        &["gantt"],
    )?;
    let wf = load_workflow(args.require("workflow")?)?;
    let platform = platform_by_name(args.get("platform").unwrap_or("hpc_node"))?;
    let scheduler = scheduler_by_name(args.get("scheduler").unwrap_or("heft"))?;
    let plan = scheduler.schedule(&wf, &platform)?;
    plan.validate(&wf, &platform)?;
    let m = ScheduleMetrics::compute(&plan, &wf, &platform)?;
    writeln!(
        out,
        "{} on {}: makespan {:.6}s | SLR {:.3} | speedup {:.2} | efficiency {:.2}",
        scheduler.name(),
        platform.name(),
        m.makespan_secs,
        m.slr,
        m.speedup,
        m.efficiency
    )?;
    if args.flag("gantt") {
        writeln!(out, "{}", plan.gantt(&wf, &platform))?;
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, serde_json::to_string_pretty(&plan)?)?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

/// `helios run` — execute a workflow and report the outcome.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "workflow",
            "platform",
            "scheduler",
            "noise",
            "seed",
            "trace",
            "report",
        ],
        &["contention", "caching", "online", "gantt"],
    )?;
    let wf = load_workflow(args.require("workflow")?)?;
    let platform = platform_by_name(args.get("platform").unwrap_or("hpc_node"))?;
    let config = EngineConfig {
        noise_cv: args.parse_or("noise", 0.0)?,
        seed: args.parse_or("seed", 0u64)?,
        link_contention: args.flag("contention"),
        data_caching: args.flag("caching"),
        tracing: args.get("trace").is_some(),
        ..Default::default()
    };

    let report = if args.flag("online") {
        OnlineRunner::new(config, OnlinePolicy::RankedJit).run(&platform, &wf)?
    } else {
        let scheduler = scheduler_by_name(args.get("scheduler").unwrap_or("heft"))?;
        Engine::new(config).run(&platform, &wf, scheduler.as_ref())?
    };
    writeln!(
        out,
        "makespan {:.6}s | energy {:.1} J (EDP {:.1}) | {} transfers ({:.1} MB) | {} failures",
        report.makespan().as_secs(),
        report.energy().total_j(),
        report.energy().edp(),
        report.transfers().count,
        report.transfers().bytes / 1e6,
        report.failures()
    )?;
    if args.flag("gantt") {
        writeln!(out, "{}", report.gantt(&wf, &platform))?;
    }
    if let Some(path) = args.get("trace") {
        match report.chrome_trace(&platform) {
            Some(json) => {
                std::fs::write(path, json)?;
                writeln!(out, "wrote {path} (open in chrome://tracing)")?;
            }
            None => writeln!(out, "tracing produced no data")?,
        }
    }
    if let Some(path) = args.get("report") {
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

/// `helios campaign` — campaigns of independent simulations.
///
/// Four forms:
///
/// * `campaign run --spec FILE [--shard K/N] [--jobs N] [--out FILE]
///   [--journal FILE | --store FILE]` — expand a declarative sweep spec
///   and run it (or one shard of it). Without `--shard` the merged
///   sweep report is produced directly; with `--shard`, a shard report
///   for later `merge`. With `--journal`, every cell is appended to a
///   fsync'd write-ahead journal first and `--out` becomes an optional
///   view compiled from it; `kill -9` at any byte loses at most the
///   torn tail record. With `--store`, cells are appended to the
///   columnar cell store instead (the `helios query` substrate) with
///   the same durability and resume semantics.
/// * `campaign merge --in FILE [--in FILE …] [--out FILE]` — recombine
///   shard reports, cell journals and/or columnar stores
///   (overlap/gap/spec-mismatch checked) into the aggregate sweep
///   report, byte-identical to an unsharded run. Input kinds are
///   detected by magic bytes and may be mixed freely in one
///   invocation.
/// * `campaign recover FILE [--out FILE]` — salvage a torn journal or
///   columnar store (truncate to the longest valid record prefix) or a
///   torn JSON shard report (cut back to the longest valid cell
///   prefix), and say how to resume.
/// * legacy member form: repeated `--member path[:arrival[:priority]]`
///   runs one ensemble campaign over `--seeds N` replicate seeds.
pub fn campaign(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    match argv.first().map(String::as_str) {
        Some("run") => campaign_run(&argv[1..], out),
        Some("merge") => campaign_merge(&argv[1..], out),
        Some("recover") => campaign_recover(&argv[1..], out),
        _ => campaign_members(argv, out),
    }
}

/// `helios campaign run` — run a sweep spec, whole or one shard.
///
/// When `--out FILE` already exists and holds a (partial) shard report
/// of the *same* spec, the run resumes: cells present in the file are
/// skipped and the merged result is byte-identical to an uninterrupted
/// run. A file from a different spec or shard geometry is refused.
///
/// With `--journal FILE` the run is crash-consistent instead: cells are
/// appended to a fsync'd write-ahead journal as they finish, resume
/// salvages the longest valid prefix of an interrupted journal (torn
/// tail truncated), and `--out` is only a view compiled from it.
///
/// With `--store FILE` the durable artifact is the columnar cell store
/// (`helios query`'s native format) instead of a journal, with the same
/// salvage-and-resume semantics.
///
/// Environment hooks (crash injection for the CI chaos smoke):
/// `HELIOS_SWEEP_ABORT_AFTER=N` stops after executing `N` cells;
/// `HELIOS_JOURNAL_CRASH_CELL=I` errors right after journaling the
/// attempt on global cell `I`; `HELIOS_JOURNAL_TORN_WRITE=N` tears the
/// Nth journal append halfway; `HELIOS_POISON_LIMIT=N` overrides the
/// attempts-without-completion quarantine threshold.
fn campaign_run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use helios_core::{
        merge_shards, CampaignSpec, ShardReport, ShardSpec, SweepDriver, SweepReport,
    };

    let args = Args::parse(
        argv,
        &["spec", "shard", "jobs", "out", "journal", "store"],
        &[],
    )?;
    let spec_path = args.require("spec")?;
    let json = std::fs::read_to_string(spec_path)
        .map_err(|e| CliError::Helios(format!("cannot read spec file {spec_path:?}: {e}")))?;
    let spec = CampaignSpec::from_json(&json)
        .map_err(|e| CliError::Helios(format!("spec file {spec_path:?}: {e}")))?;
    let jobs = args.parse_or("jobs", 1usize)?;
    let driver = SweepDriver::new(jobs);

    let abort_after: Option<usize> = env_hook("HELIOS_SWEEP_ABORT_AFTER")?;

    let shard = match args.get("shard") {
        Some(s) => Some(ShardSpec::parse(s).map_err(|e| CliError::Usage(e.to_string()))?),
        None => None,
    };
    let out_path = args.get("out");
    if args.get("journal").is_some() && args.get("store").is_some() {
        return Err(CliError::Usage(
            "--journal and --store are both durable result paths; pick one".into(),
        ));
    }
    if let Some(journal_path) = args.get("journal") {
        return campaign_run_journal(
            &driver,
            &spec,
            shard,
            journal_path,
            out_path,
            abort_after,
            out,
        );
    }
    if let Some(store_path) = args.get("store") {
        return campaign_run_store(
            &driver,
            &spec,
            shard,
            store_path,
            out_path,
            abort_after,
            out,
        );
    }
    if (shard.is_some() || abort_after.is_some()) && out_path.is_none() {
        return Err(CliError::Usage(
            "--shard (and HELIOS_SWEEP_ABORT_AFTER) produce a partial result; \
             --out FILE is required (or use --journal FILE)"
                .into(),
        ));
    }
    let effective = shard.unwrap_or_else(ShardSpec::full);

    // Resume: an existing --out file holding a shard report of the same
    // spec means "skip what is already done".
    let prior: Option<ShardReport> = match out_path {
        Some(path) if std::path::Path::new(path).exists() => {
            // Lossy so a binary cell journal handed to --out still gets
            // classified (its magic is ASCII) instead of a UTF-8 error.
            let raw = std::fs::read(path)
                .map_err(|e| CliError::Helios(format!("cannot read existing {path:?}: {e}")))?;
            let prior_json = String::from_utf8_lossy(&raw).into_owned();
            match serde_json::from_str::<ShardReport>(&prior_json) {
                Ok(report) => Some(report),
                // A complete sweep report of the same spec: nothing to do.
                Err(_) => match serde_json::from_str::<SweepReport>(&prior_json) {
                    Ok(done) if done.spec_digest == spec.digest() => {
                        writeln!(
                            out,
                            "sweep {:?} is already complete in {path} ({} cells); \
                             delete the file to re-run",
                            done.spec_name, done.total_cells
                        )?;
                        return Ok(());
                    }
                    _ => return Err(classify_bad_resume_file(path, &prior_json, &spec)),
                },
            }
        }
        _ => None,
    };
    if let Some(p) = &prior {
        let owned = (0..p.total_cells)
            .filter(|i| i % p.shard_count == p.shard_index - 1)
            .count();
        writeln!(
            out,
            "resuming from {}: {} of {owned} owned cells already done",
            out_path.expect("prior implies --out"),
            p.cells.len(),
        )?;
    }

    let outcome = driver.resume_shard(&spec, effective, prior.as_ref(), abort_after)?;
    let report = outcome.report;

    if outcome.remaining > 0 {
        let path = out_path.expect("checked above");
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        return Err(CliError::Helios(format!(
            "aborted by HELIOS_SWEEP_ABORT_AFTER after {} cells: {} of {} owned cells \
             in {path}, {} remaining; re-run with the same --out to resume",
            abort_after.unwrap_or(0),
            report.cells.len(),
            report.cells.len() + outcome.remaining,
            outcome.remaining
        )));
    }

    match shard {
        Some(shard) => {
            let path = out_path.expect("checked above");
            std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
            writeln!(
                out,
                "shard {shard} of {:?}: {} of {} cells -> {path}",
                report.spec_name,
                report.cells.len(),
                report.total_cells
            )?;
        }
        None => {
            let merged = merge_shards(&[report])?;
            write_sweep_summary(&merged, out)?;
            if let Some(path) = out_path {
                std::fs::write(path, serde_json::to_string_pretty(&merged)?)?;
                writeln!(out, "wrote {path}")?;
            }
        }
    }
    Ok(())
}

/// Parses an optional non-negative integer crash/drain hook from the
/// environment; unset or empty means "off".
fn env_hook<T: std::str::FromStr>(name: &str) -> Result<Option<T>, CliError> {
    match std::env::var(name) {
        Ok(v) if !v.trim().is_empty() => v.trim().parse().map(Some).map_err(|_| {
            CliError::Usage(format!("{name} must be a non-negative integer, got {v:?}"))
        }),
        _ => Ok(None),
    }
}

/// Classifies an existing `--out` file that failed to parse as a resume
/// artifact: a cell journal handed to the wrong flag, a torn JSON
/// report (typed [`CorruptResume`](helios_core::CampaignError) naming
/// the byte offset and the `recover` remedy), or an intact-but-foreign
/// file that is simply refused.
fn classify_bad_resume_file(
    path: &str,
    contents: &str,
    spec: &helios_core::CampaignSpec,
) -> CliError {
    use helios_core::campaign::journal;
    use helios_core::{CampaignError, EngineError};

    if journal::is_journal_bytes(contents.as_bytes()) {
        return CliError::Usage(format!(
            "{path:?} is a cell journal, not a JSON report; resume it with \
             --journal {path} (and drop --out, or point --out elsewhere for the view)"
        ));
    }
    if helios_core::store::is_store_bytes(contents.as_bytes()) {
        return CliError::Usage(format!(
            "{path:?} is a columnar cell store, not a JSON report; resume it with \
             --store {path} (and drop --out, or point --out elsewhere for the view)"
        ));
    }
    // Intact JSON that is just not ours: refuse, don't diagnose a crash.
    if serde_json::from_str::<serde_json::Value>(contents).is_ok() {
        return CliError::Helios(format!(
            "refusing to overwrite {path:?}: it is not a shard report of \
             spec {:?} (digest {}); delete the file or point --out elsewhere",
            spec.name,
            spec.digest()
        ));
    }
    // Truncated / torn JSON: report exactly where the valid bytes end
    // and how to repair it.
    let (offset, detail) = match journal::salvage_json_shard_report(contents) {
        Some(s) => (
            contents.len() as u64 - s.dropped_bytes,
            format!(
                "the JSON is torn mid-write ({} of {} cells still parse); run \
                 `helios campaign recover {path}` to cut it back to the valid \
                 prefix, then re-run with the same --out",
                s.report.cells.len(),
                s.report.total_cells
            ),
        ),
        None => (
            0,
            format!(
                "the JSON is damaged beyond salvage (no valid cell prefix); \
                 delete the file, or switch to `--journal {path}.journal` for \
                 crash-consistent sweeps"
            ),
        ),
    };
    EngineError::from(CampaignError::CorruptResume {
        file: path.to_owned(),
        offset,
        detail,
    })
    .into()
}

/// The `--journal` arm of `campaign run`: every cell goes through the
/// fsync'd write-ahead journal, `--out` is an optional view compiled
/// from it, and SIGINT/SIGTERM drain instead of killing the run.
fn campaign_run_journal(
    driver: &helios_core::SweepDriver,
    spec: &helios_core::CampaignSpec,
    shard: Option<helios_core::ShardSpec>,
    journal_path: &str,
    out_path: Option<&str>,
    abort_after: Option<usize>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use helios_core::{merge_shards, JournalOptions, ShardSpec};

    let effective = shard.unwrap_or_else(ShardSpec::full);
    let opts = JournalOptions {
        limit: abort_after,
        cancel: Some(crate::drain::install()),
        crash_cell: env_hook("HELIOS_JOURNAL_CRASH_CELL")?,
        tear_after: env_hook("HELIOS_JOURNAL_TORN_WRITE")?,
        poison_limit: env_hook("HELIOS_POISON_LIMIT")?,
    };
    let run = driver.run_journal(spec, effective, std::path::Path::new(journal_path), &opts)?;

    if run.salvaged_cells > 0 || run.dropped_bytes > 0 {
        writeln!(
            out,
            "resumed {journal_path}: {} completed cell(s) salvaged, {} torn byte(s) dropped",
            run.salvaged_cells, run.dropped_bytes
        )?;
    }
    for cell in &run.poisoned {
        writeln!(
            out,
            "cell {cell} quarantined as poisoned: it crashed the process repeatedly \
             and is reported with completed=false"
        )?;
    }

    let report = run.report;
    let done = report.cells.len();
    let owned = done + run.remaining;
    if run.drained {
        return Err(CliError::Interrupted(format!(
            "drained on signal: {done} of {owned} owned cells durable in {journal_path}; \
             re-run with the same --journal to resume"
        )));
    }
    if run.remaining > 0 {
        return Err(CliError::Helios(format!(
            "aborted by HELIOS_SWEEP_ABORT_AFTER after {} cells: {done} of {owned} owned \
             cells durable in {journal_path}, {} remaining; re-run with the same \
             --journal to resume",
            abort_after.unwrap_or(0),
            run.remaining
        )));
    }

    match shard {
        Some(shard) => {
            writeln!(
                out,
                "shard {shard} of {:?}: {} of {} cells journaled in {journal_path}",
                report.spec_name, done, report.total_cells
            )?;
            if let Some(path) = out_path {
                std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
                writeln!(out, "wrote {path} (view compiled from the journal)")?;
            }
        }
        None => {
            let merged = merge_shards(&[report])?;
            write_sweep_summary(&merged, out)?;
            if let Some(path) = out_path {
                std::fs::write(path, serde_json::to_string_pretty(&merged)?)?;
                writeln!(out, "wrote {path} (view compiled from the journal)")?;
            }
        }
    }
    Ok(())
}

/// The `--store` arm of `campaign run`: every cell is appended to the
/// columnar cell store as it finishes, `--out` is an optional JSON view
/// compiled from it, and SIGINT/SIGTERM drain instead of killing the
/// run. The store file is what `helios query` and `campaign merge`
/// consume directly.
fn campaign_run_store(
    driver: &helios_core::SweepDriver,
    spec: &helios_core::CampaignSpec,
    shard: Option<helios_core::ShardSpec>,
    store_path: &str,
    out_path: Option<&str>,
    abort_after: Option<usize>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use helios_core::{merge_shards, ShardSpec, StoreOptions};

    let effective = shard.unwrap_or_else(ShardSpec::full);
    let opts = StoreOptions {
        limit: abort_after,
        cancel: Some(crate::drain::install()),
    };
    let run = driver.run_store(spec, effective, std::path::Path::new(store_path), &opts)?;

    if run.salvaged_rows > 0 || run.dropped_bytes > 0 {
        writeln!(
            out,
            "resumed {store_path}: {} completed row(s) salvaged, {} torn byte(s) dropped",
            run.salvaged_rows, run.dropped_bytes
        )?;
    }

    let report = run.report;
    let done = report.cells.len();
    let owned = done + run.remaining;
    if run.drained {
        return Err(CliError::Interrupted(format!(
            "drained on signal: {done} of {owned} owned cells durable in {store_path}; \
             re-run with the same --store to resume"
        )));
    }
    if run.remaining > 0 {
        return Err(CliError::Helios(format!(
            "aborted by HELIOS_SWEEP_ABORT_AFTER after {} cells: {done} of {owned} owned \
             cells durable in {store_path}, {} remaining; re-run with the same \
             --store to resume",
            abort_after.unwrap_or(0),
            run.remaining
        )));
    }

    match shard {
        Some(shard) => {
            writeln!(
                out,
                "shard {shard} of {:?}: {} of {} cells stored in {store_path}",
                report.spec_name, done, report.total_cells
            )?;
            if let Some(path) = out_path {
                std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
                writeln!(out, "wrote {path} (view compiled from the store)")?;
            }
        }
        None => {
            let merged = merge_shards(&[report])?;
            write_sweep_summary(&merged, out)?;
            if let Some(path) = out_path {
                std::fs::write(path, serde_json::to_string_pretty(&merged)?)?;
                writeln!(out, "wrote {path} (view compiled from the store)")?;
            }
        }
    }
    Ok(())
}

/// `helios campaign recover FILE [--out FILE]` — salvage a torn resume
/// artifact with zero hand-repair.
///
/// * A cell journal is truncated to its longest valid record prefix
///   (in place; the `--out` view is optional) and the pending-attempt
///   tally is printed so poisoned cells are visible before resuming.
/// * A columnar cell store is likewise truncated to its longest valid
///   row-group prefix.
/// * An intact shard/sweep report needs nothing; say so.
/// * A torn JSON shard report is cut back to the longest valid cell
///   prefix (rewritten in place, or to `--out`).
/// * Anything else is a typed `corrupt resume file` error.
fn campaign_recover(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use helios_core::campaign::journal::{self, DEFAULT_POISON_LIMIT};
    use helios_core::{CampaignError, EngineError, ShardReport, SweepReport};

    let Some((file, rest)) = argv.split_first() else {
        return Err(CliError::Usage(
            "campaign recover FILE [--out FILE] — FILE is the journal or JSON report".into(),
        ));
    };
    if file.starts_with('-') {
        return Err(CliError::Usage(format!(
            "campaign recover takes the damaged file as its first argument, got {file:?}"
        )));
    }
    let args = Args::parse(rest, &["out"], &[])?;
    let bytes =
        std::fs::read(file).map_err(|e| CliError::Helios(format!("cannot read {file:?}: {e}")))?;

    if helios_core::store::is_store_bytes(&bytes) {
        let salvage = helios_core::recover_store(std::path::Path::new(file))?;
        let h = &salvage.header;
        writeln!(
            out,
            "store {file}: spec {:?} (digest {}), shard {}/{}, {} total cells",
            h.spec_name, h.spec_digest, h.shard_index, h.shard_count, h.total_cells
        )?;
        writeln!(
            out,
            "salvaged {} completed row(s); truncated {} torn byte(s)",
            salvage.cells.len(),
            salvage.dropped_bytes
        )?;
        if let Some(path) = args.get("out") {
            std::fs::write(
                path,
                serde_json::to_string_pretty(&salvage.to_shard_report())?,
            )?;
            writeln!(out, "wrote {path} (view compiled from the store)")?;
        }
        writeln!(
            out,
            "resume with: helios campaign run --spec SPEC --store {file}"
        )?;
        return Ok(());
    }

    if journal::is_journal_bytes(&bytes) {
        let salvage = journal::recover_journal(std::path::Path::new(file))?;
        let h = &salvage.header;
        writeln!(
            out,
            "journal {file}: spec {:?} (digest {}), shard {}/{}, {} total cells",
            h.spec_name, h.spec_digest, h.shard_index, h.shard_count, h.total_cells
        )?;
        writeln!(
            out,
            "salvaged {} completed cell(s); truncated {} torn byte(s)",
            salvage.cells.len(),
            salvage.dropped_bytes
        )?;
        for (cell, attempts) in salvage.pending_attempts() {
            let fate = if attempts >= DEFAULT_POISON_LIMIT {
                " — will be quarantined as poisoned on resume"
            } else {
                ""
            };
            writeln!(
                out,
                "cell {cell}: {attempts} attempt(s) without completion{fate}"
            )?;
        }
        if let Some(path) = args.get("out") {
            std::fs::write(
                path,
                serde_json::to_string_pretty(&salvage.to_shard_report())?,
            )?;
            writeln!(out, "wrote {path} (view compiled from the journal)")?;
        }
        writeln!(
            out,
            "resume with: helios campaign run --spec SPEC --journal {file}"
        )?;
        return Ok(());
    }

    let text = String::from_utf8_lossy(&bytes).into_owned();
    if serde_json::from_str::<ShardReport>(&text).is_ok()
        || serde_json::from_str::<SweepReport>(&text).is_ok()
    {
        writeln!(out, "{file}: intact report; nothing to recover")?;
        return Ok(());
    }
    match journal::salvage_json_shard_report(&text) {
        Some(s) => {
            let target = args.get("out").unwrap_or(file);
            std::fs::write(target, serde_json::to_string_pretty(&s.report)?)?;
            writeln!(
                out,
                "salvaged {} of {} cell(s) from torn JSON report ({} byte(s) dropped); \
                 wrote {target}",
                s.report.cells.len(),
                s.report.total_cells,
                s.dropped_bytes
            )?;
            writeln!(
                out,
                "resume with: helios campaign run --spec SPEC --out {target}"
            )?;
            Ok(())
        }
        None => Err(EngineError::from(CampaignError::CorruptResume {
            file: (*file).clone(),
            offset: 0,
            detail: "neither a cell journal nor a salvageable JSON report; \
                     delete the file to start fresh"
                .into(),
        })
        .into()),
    }
}

/// `helios campaign merge` — recombine shard reports, cell journals
/// and/or columnar stores (detected by magic bytes, salvaged
/// read-only). The three kinds may be mixed freely in one invocation;
/// a file from a different campaign is refused by the merge's
/// spec-digest check.
fn campaign_merge(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use helios_core::campaign::journal;
    use helios_core::{merge_shards, ShardReport};

    let args = Args::parse(argv, &["in", "out"], &[])?;
    let inputs = args.get_all("in");
    if inputs.is_empty() {
        return Err(CliError::Usage(
            "at least one --in shard-report (or journal/store) file is required".into(),
        ));
    }
    let mut shards = Vec::with_capacity(inputs.len());
    for path in inputs {
        let bytes = std::fs::read(path)
            .map_err(|e| CliError::Helios(format!("cannot read shard report {path:?}: {e}")))?;
        if helios_core::store::is_store_bytes(&bytes) {
            // Read-only, like the journal arm: a torn tail only matters
            // if it hid the last rows, and then merge_shards names the
            // missing cells.
            let salvage = helios_core::read_store(std::path::Path::new(path))?;
            shards.push(salvage.to_shard_report());
            continue;
        }
        if journal::is_journal_bytes(&bytes) {
            // Merge reads the journal without truncating it; a torn tail
            // only matters if it hid the last completions, and then
            // merge_shards reports the missing cells by index.
            let salvage = journal::read_journal(std::path::Path::new(path))?;
            shards.push(salvage.to_shard_report());
            continue;
        }
        let json = String::from_utf8_lossy(&bytes).into_owned();
        let shard: ShardReport = serde_json::from_str(&json)
            .map_err(|e| CliError::Helios(format!("shard report {path:?}: {e}")))?;
        shards.push(shard);
    }
    let report = merge_shards(&shards)?;
    write_sweep_summary(&report, out)?;
    if let Some(out_path) = args.get("out") {
        std::fs::write(out_path, serde_json::to_string_pretty(&report)?)?;
        writeln!(out, "wrote {out_path}")?;
    }
    Ok(())
}

/// Human-readable rendering of a merged sweep report.
///
/// The column list, widths and precisions are not hand-maintained here:
/// they come from the store schema's `SUMMARY_KEYS` /
/// `SUMMARY_AGGREGATES` plan, so a new summary column shows up in this
/// table by construction.
fn write_sweep_summary(
    report: &helios_core::SweepReport,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use helios_core::store::{summary_row_values, Value, SUMMARY_AGGREGATES, SUMMARY_KEYS};

    writeln!(
        out,
        "sweep {:?} (digest {}): {} cells",
        report.spec_name, report.spec_digest, report.total_cells
    )?;
    let mut header = String::new();
    for (col, width) in SUMMARY_KEYS {
        header.push_str(&format!("{:<width$}", col.name()));
    }
    for spec in SUMMARY_AGGREGATES {
        header.push_str(&format!("{:>width$}", spec.header, width = spec.width));
    }
    writeln!(out, "{header}")?;
    for row in &report.summary {
        let values = summary_row_values(row);
        let mut line = String::new();
        for (i, (_, width)) in SUMMARY_KEYS.iter().enumerate() {
            match &values[i] {
                Value::Str(s) => line.push_str(&format!("{s:<width$}")),
                other => unreachable!("summary key {i} is a string, got {other:?}"),
            }
        }
        for (j, spec) in SUMMARY_AGGREGATES.iter().enumerate() {
            let text = match (&values[SUMMARY_KEYS.len() + j], spec.precision) {
                // Rows where no cell completed have no means: print a
                // dash, not a zero that would read as an instant run.
                (Value::Null, _) => "-".to_owned(),
                (Value::F64(v), Some(prec)) => format!("{v:.prec$}"),
                (Value::U64(v), None) => v.to_string(),
                (other, prec) => {
                    unreachable!("summary {:?} with precision {prec:?}: {other:?}", spec.name)
                }
            };
            line.push_str(&format!("{text:>width$}", width = spec.width));
        }
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// `helios query` — run a `SELECT … [WHERE …] [GROUP BY …]` expression
/// over sweep results.
///
/// The expression is the first positional argument; `--in FILE`
/// (repeatable) names the inputs. Each input may be a JSON sweep or
/// shard report, a cell journal, or a columnar store — kinds are
/// detected by magic bytes and may be mixed in one invocation as long
/// as every file belongs to the same campaign. Rows are queried in
/// global cell order; `--json` emits one JSON object per row instead of
/// the aligned text table.
pub fn query(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((expr, rest)) = argv.split_first() else {
        return Err(CliError::Usage(
            "query 'EXPR' --in FILE [--in FILE ...] [--json] — e.g. helios query \
             'SELECT scheduler, avg_completed(makespan_secs) GROUP BY scheduler' \
             --in sweep.json"
                .into(),
        ));
    };
    if expr.starts_with('-') {
        return Err(CliError::Usage(format!(
            "query takes the expression as its first argument, got {expr:?}"
        )));
    }
    let args = Args::parse(rest, &["in"], &["json"])?;
    let inputs = args.get_all("in");
    if inputs.is_empty() {
        return Err(CliError::Usage(
            "at least one --in result file (JSON report, journal or store) is required".into(),
        ));
    }
    let cells = load_query_cells(&inputs)?;
    let result = helios_core::run_query(expr, &cells)?;

    if args.flag("json") {
        write_query_json(&result, out)?;
    } else {
        write_query_table(&result, out)?;
    }
    Ok(())
}

/// Loads and pools the cell rows of every `--in` file, whatever its
/// format, refusing inputs that belong to different campaigns or that
/// repeat a cell. Gaps are fine — a query over half the grid is a
/// legitimate question — which is exactly where this is laxer than
/// `campaign merge`.
fn load_query_cells(inputs: &[&str]) -> Result<Vec<helios_core::CellResult>, CliError> {
    use helios_core::campaign::journal;
    use helios_core::{CampaignError, CellResult, EngineError, ShardReport, SweepReport};

    let conflict = |detail: String| -> CliError {
        EngineError::from(CampaignError::MergeConflict(detail)).into()
    };

    let mut cells: Vec<CellResult> = Vec::new();
    let mut spec: Option<(String, String, usize)> = None;
    let mut seen_in: std::collections::HashMap<usize, String> = std::collections::HashMap::new();
    for path in inputs {
        let bytes = std::fs::read(path)
            .map_err(|e| CliError::Helios(format!("cannot read query input {path:?}: {e}")))?;
        let shard: ShardReport = if helios_core::store::is_store_bytes(&bytes) {
            helios_core::read_store(std::path::Path::new(path))?.to_shard_report()
        } else if journal::is_journal_bytes(&bytes) {
            journal::read_journal(std::path::Path::new(path))?.to_shard_report()
        } else {
            let json = String::from_utf8_lossy(&bytes).into_owned();
            match serde_json::from_str::<ShardReport>(&json) {
                Ok(shard) => shard,
                Err(_) => {
                    let full: SweepReport = serde_json::from_str(&json).map_err(|e| {
                        CliError::Helios(format!(
                            "query input {path:?} is neither a store, a journal, nor a \
                             JSON sweep/shard report: {e}"
                        ))
                    })?;
                    ShardReport {
                        spec_name: full.spec_name,
                        spec_digest: full.spec_digest,
                        total_cells: full.total_cells,
                        shard_index: 1,
                        shard_count: 1,
                        cells: full.cells,
                    }
                }
            }
        };
        match &spec {
            None => {
                spec = Some((
                    shard.spec_name.clone(),
                    shard.spec_digest.clone(),
                    shard.total_cells,
                ));
            }
            Some((name, digest, total)) => {
                if (name, digest, *total)
                    != (&shard.spec_name, &shard.spec_digest, shard.total_cells)
                {
                    return Err(conflict(format!(
                        "query inputs disagree on the spec: {path} is {:?} (digest {}, {} \
                         cells) but earlier inputs are {name:?} (digest {digest}, {total} \
                         cells)",
                        shard.spec_name, shard.spec_digest, shard.total_cells
                    )));
                }
            }
        }
        for cell in shard.cells {
            if let Some(first) = seen_in.get(&cell.cell) {
                return Err(conflict(format!(
                    "cell {} appears in both {first} and {path}; drop one of the \
                     overlapping inputs",
                    cell.cell
                )));
            }
            seen_in.insert(cell.cell, (*path).to_owned());
            cells.push(cell);
        }
    }
    Ok(cells)
}

/// Renders one query value for the text table.
fn render_query_value(v: &helios_core::store::Value) -> String {
    use helios_core::store::Value;
    match v {
        Value::U64(n) => n.to_string(),
        Value::U32(n) => n.to_string(),
        Value::F64(x) => format!("{x}"),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => s.clone(),
        Value::Null => "-".to_owned(),
    }
}

/// The aligned text rendering of a query result: columns sized to their
/// widest value, keys left-aligned like the sweep summary table.
fn write_query_table(
    result: &helios_core::QueryOutput,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let rendered: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|row| row.iter().map(render_query_value).collect())
        .collect();
    let widths: Vec<usize> = result
        .schema
        .iter()
        .enumerate()
        .map(|(i, name)| {
            rendered
                .iter()
                .map(|row| row[i].len())
                .chain(std::iter::once(name.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let write_row = |out: &mut dyn Write, fields: Vec<&str>| -> Result<(), CliError> {
        let mut line = String::new();
        for (i, field) in fields.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{field:<width$}", width = widths[i]));
        }
        writeln!(out, "{}", line.trim_end())?;
        Ok(())
    };
    write_row(out, result.schema.iter().map(String::as_str).collect())?;
    for row in &rendered {
        write_row(out, row.iter().map(String::as_str).collect())?;
    }
    writeln!(out, "({} row(s))", result.rows.len())?;
    Ok(())
}

/// The `--json` rendering of a query result: a JSON array with one
/// object per row, keys in SELECT order (built by hand so the order is
/// the plan's, not a map's).
fn write_query_json(
    result: &helios_core::QueryOutput,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use helios_core::store::Value;
    if result.rows.is_empty() {
        writeln!(out, "[]")?;
        return Ok(());
    }
    writeln!(out, "[")?;
    for (r, row) in result.rows.iter().enumerate() {
        let mut obj = String::from("  {");
        for (i, (name, value)) in result.schema.iter().zip(row).enumerate() {
            if i > 0 {
                obj.push_str(", ");
            }
            obj.push_str(&serde_json::to_string(name)?);
            obj.push_str(": ");
            let json = match value {
                Value::U64(n) => serde_json::to_string(n)?,
                Value::U32(n) => serde_json::to_string(n)?,
                Value::F64(x) => serde_json::to_string(x)?,
                Value::Bool(b) => serde_json::to_string(b)?,
                Value::Str(s) => serde_json::to_string(s)?,
                Value::Null => "null".to_owned(),
            };
            obj.push_str(&json);
        }
        obj.push('}');
        if r + 1 < result.rows.len() {
            obj.push(',');
        }
        writeln!(out, "{obj}")?;
    }
    writeln!(out, "]")?;
    Ok(())
}

/// The legacy member-based ensemble campaign.
///
/// Members are given as repeated `--member path[:arrival[:priority]]`
/// options; arrival defaults to 0 s and priority to 1. `--seeds N`
/// replicates the ensemble under N consecutive engine seeds (base
/// `--seed`), and `--jobs N` runs those replicates on N worker threads
/// (0 = one per hardware thread). Output is aggregated in seed order
/// and is byte-identical for every `--jobs` value.
fn campaign_members(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use helios_core::{CampaignEngine, EnsembleMember, EnsemblePolicy, EnsembleRunner};
    use helios_sim::SimTime;

    let args = Args::parse(
        argv,
        &["member", "platform", "policy", "seed", "seeds", "jobs"],
        &[],
    )?;
    let specs = args.get_all("member");
    if specs.is_empty() {
        return Err(CliError::Usage(
            "at least one --member path[:arrival[:priority]] is required".into(),
        ));
    }
    let mut members = Vec::new();
    for spec in specs {
        let mut parts = spec.split(':');
        let path = parts.next().expect("split yields at least one part");
        let arrival: f64 = match parts.next() {
            None => 0.0,
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad arrival in --member {spec:?}")))?,
        };
        let priority: f64 = match parts.next() {
            None => 1.0,
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad priority in --member {spec:?}")))?,
        };
        members.push(EnsembleMember {
            workflow: load_workflow(path)?,
            arrival: SimTime::try_from_secs(arrival)
                .map_err(|e| CliError::Usage(format!("bad arrival {arrival}: {e}")))?,
            priority,
        });
    }
    let policy = match args.get("policy").unwrap_or("fifo") {
        "fifo" => EnsemblePolicy::Fifo,
        "priority" => EnsemblePolicy::Priority,
        "fair-share" => EnsemblePolicy::FairShare,
        other => {
            return Err(CliError::Usage(format!(
                "unknown policy {other:?} (fifo, priority, fair-share)"
            )))
        }
    };
    let platform = platform_by_name(args.get("platform").unwrap_or("hpc_node"))?;
    let base_seed = args.parse_or("seed", 0u64)?;
    let seeds = args.parse_or("seeds", 1usize)?;
    if seeds == 0 {
        return Err(CliError::Usage("--seeds must be >= 1".into()));
    }
    let jobs = args.parse_or("jobs", 1usize)?;

    let replicate_seeds: Vec<u64> = (0..seeds as u64).map(|i| base_seed + i).collect();
    let reports = CampaignEngine::new(jobs).run(&replicate_seeds, |_, &seed| {
        let config = EngineConfig {
            seed,
            ..Default::default()
        };
        EnsembleRunner::new(config, policy).run(&platform, &members)
    })?;

    for (seed, report) in replicate_seeds.iter().zip(&reports) {
        writeln!(
            out,
            "campaign of {} members on {} ({}, seed {seed}): makespan {:.4}s, mean turnaround {:.4}s",
            report.members.len(),
            platform.name(),
            policy.as_str(),
            report.makespan.as_secs(),
            report.mean_turnaround.as_secs()
        )?;
        for (i, m) in report.members.iter().enumerate() {
            writeln!(
                out,
                "  member {i}: started {:.4}s finished {:.4}s turnaround {:.4}s",
                m.started.as_secs(),
                m.finished.as_secs(),
                m.turnaround.as_secs()
            )?;
        }
    }
    if reports.len() > 1 {
        let mean = |f: &dyn Fn(&helios_core::EnsembleReport) -> f64| {
            reports.iter().map(f).sum::<f64>() / reports.len() as f64
        };
        writeln!(
            out,
            "{} seeds: mean makespan {:.4}s, mean turnaround {:.4}s",
            reports.len(),
            mean(&|r| r.makespan.as_secs()),
            mean(&|r| r.mean_turnaround.as_secs())
        )?;
    }
    Ok(())
}

/// `helios fuzz` — the adversarial simulation harness.
///
/// Without `--replay`, generates `--runs` random campaign specs from
/// `--seed` and checks each against the differential oracles. The first
/// divergence is shrunk to a minimal spec and written as a replayable
/// fixture under `--bugbase` (default `tests/bugbase`), and the run
/// exits non-zero. A clean run prints a one-line summary.
///
/// With `--replay PATH`, re-runs one fixture (or every `*.json` fixture
/// in a directory) through the oracles; any divergence is a regression
/// and exits non-zero.
///
/// The `HELIOS_FUZZ_BREAK_ORACLE=<oracle>` environment hook sabotages
/// the named oracle so it fires on every (compatible) case — the CI
/// acceptance path proving that find → shrink → fixture → replay works
/// end to end.
pub fn fuzz(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use helios_core::fuzz::{check_spec, generate_spec, shrink_spec, BugFixture, ORACLES};

    let args = Args::parse(argv, &["seed", "runs", "bugbase", "replay"], &[])?;
    let broken_owned: Option<String> = match std::env::var("HELIOS_FUZZ_BREAK_ORACLE") {
        Ok(name) => {
            if !ORACLES.contains(&name.as_str()) {
                return Err(CliError::Usage(format!(
                    "HELIOS_FUZZ_BREAK_ORACLE names unknown oracle {name:?}; oracles: {}",
                    ORACLES.join(", ")
                )));
            }
            Some(name)
        }
        Err(_) => None,
    };
    let broken = broken_owned.as_deref();

    if let Some(path) = args.get("replay") {
        return fuzz_replay(path, broken, out);
    }

    let seed = args.parse_or("seed", 0u64)?;
    let runs = args.parse_or("runs", 50usize)?;
    let bugbase = args.get("bugbase").unwrap_or("tests/bugbase");

    for case in 0..runs {
        let spec = generate_spec(seed, case);
        let Some(div) = check_spec(&spec, broken)? else {
            continue;
        };
        writeln!(
            out,
            "case {case} of seed {seed} diverges on oracle {}: {}",
            div.oracle, div.detail
        )?;
        let shrunk = shrink_spec(&spec, &div, broken);
        writeln!(
            out,
            "shrunk in {} steps ({} oracle evaluations): {} families x {} platforms x \
             {} schedulers x {} seeds, {} tasks",
            shrunk.steps,
            shrunk.evals,
            shrunk.spec.families.len(),
            shrunk.spec.platforms.len(),
            shrunk.spec.schedulers.len(),
            shrunk.spec.seeds.count,
            shrunk.spec.tasks
        )?;
        let fixture = BugFixture::new(&shrunk.divergence, seed, case, shrunk.steps, shrunk.spec);
        std::fs::create_dir_all(bugbase)?;
        let path = std::path::Path::new(bugbase).join(fixture.file_name());
        std::fs::write(&path, fixture.to_json()?)?;
        return Err(CliError::Helios(format!(
            "fuzzing found a divergence on oracle {}; minimal fixture written to \
             {} — replay with: helios fuzz --replay {}",
            fixture.oracle,
            path.display(),
            path.display()
        )));
    }
    writeln!(out, "fuzz: {runs} case(s) from seed {seed}, 0 divergences")?;
    Ok(())
}

/// Replays one fixture file, or every `*.json` fixture in a directory,
/// through the oracles.
fn fuzz_replay(path: &str, broken: Option<&str>, out: &mut dyn Write) -> Result<(), CliError> {
    use helios_core::fuzz::BugFixture;

    let root = std::path::Path::new(path);
    let mut files: Vec<std::path::PathBuf> = if root.is_dir() {
        std::fs::read_dir(root)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect()
    } else {
        vec![root.to_path_buf()]
    };
    files.sort();
    if files.is_empty() {
        return Err(CliError::Helios(format!(
            "no *.json fixtures under {path:?}; run `helios fuzz` to populate the bugbase"
        )));
    }

    let mut diverging = 0usize;
    for file in &files {
        let json = std::fs::read_to_string(file)
            .map_err(|e| CliError::Helios(format!("cannot read fixture {file:?}: {e}")))?;
        let fixture = BugFixture::from_json(&json)
            .map_err(|e| CliError::Helios(format!("fixture {file:?}: {e}")))?;
        match fixture.replay(broken)? {
            None => writeln!(
                out,
                "{}: clean (oracle {}, seed {} case {})",
                file.display(),
                fixture.oracle,
                fixture.fuzz_seed,
                fixture.case_index
            )?,
            Some(div) => {
                diverging += 1;
                writeln!(
                    out,
                    "{}: DIVERGES on oracle {}: {}",
                    file.display(),
                    div.oracle,
                    div.detail
                )?;
            }
        }
    }
    writeln!(
        out,
        "replayed {} fixture(s), {diverging} diverging",
        files.len()
    )?;
    if diverging > 0 {
        return Err(CliError::Helios(format!(
            "{diverging} fixture(s) diverge — a fixed bug has regressed"
        )));
    }
    Ok(())
}

/// `helios platforms` — list the presets.
pub fn platforms(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let _ = Args::parse(argv, &[], &[])?;
    for platform in presets::all() {
        writeln!(out, "{platform}")?;
        for d in platform.devices() {
            writeln!(out, "  {d}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|&x| x.to_owned()).collect()
    }

    fn run_cmd(
        f: impl Fn(&[String], &mut dyn Write) -> Result<(), CliError>,
        a: &[&str],
    ) -> String {
        let mut buf = Vec::new();
        f(&argv(a), &mut buf).expect("command succeeds");
        String::from_utf8(buf).expect("utf8 output")
    }

    #[test]
    fn platform_resolution() {
        assert!(platform_by_name("workstation").is_ok());
        assert!(platform_by_name("hpc_node").is_ok());
        assert!(platform_by_name("cluster4").is_ok());
        assert!(platform_by_name("cluster0").is_err());
        assert!(platform_by_name("nope").is_err());
    }

    #[test]
    fn scheduler_resolution() {
        assert!(scheduler_by_name("heft").is_ok());
        assert!(scheduler_by_name("min-min").is_ok());
        match scheduler_by_name("sjf") {
            Err(e) => assert!(e.to_string().contains("available")),
            Ok(_) => panic!("sjf must not resolve"),
        }
    }

    #[test]
    fn generate_analyze_schedule_run_roundtrip() {
        let dir = std::env::temp_dir().join("helios-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let wf_path = dir.join("wf.json");
        let wf_str = wf_path.to_str().unwrap();

        let out = run_cmd(
            generate,
            &[
                "--family", "montage", "--tasks", "40", "--seed", "3", "--out", wf_str,
            ],
        );
        assert!(out.contains("wrote"));

        let out = run_cmd(
            analyze,
            &["--workflow", wf_str, "--platform", "workstation"],
        );
        assert!(out.contains("CCR"), "{out}");

        let out = run_cmd(
            schedule,
            &[
                "--workflow",
                wf_str,
                "--platform",
                "workstation",
                "--scheduler",
                "heft",
                "--gantt",
            ],
        );
        assert!(out.contains("makespan") && out.contains("SLR"), "{out}");

        let trace_path = dir.join("trace.json");
        let out = run_cmd(
            run,
            &[
                "--workflow",
                wf_str,
                "--platform",
                "workstation",
                "--noise",
                "0.1",
                "--seed",
                "4",
                "--contention",
                "--caching",
                "--trace",
                trace_path.to_str().unwrap(),
            ],
        );
        assert!(out.contains("makespan"), "{out}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(serde_json::from_str::<serde_json::Value>(&trace).is_ok());
    }

    #[test]
    fn generate_supports_layered_with_ccr() {
        let mut buf = Vec::new();
        generate(
            &argv(&[
                "--family", "layered", "--width", "4", "--levels", "3", "--ccr", "2.0",
            ]),
            &mut buf,
        )
        .unwrap();
        let json = String::from_utf8(buf).unwrap();
        let wf = wfio::from_json(json.lines().collect::<Vec<_>>().join("\n").as_str());
        assert!(wf.is_ok());
    }

    #[test]
    fn online_run_works() {
        let dir = std::env::temp_dir().join("helios-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let wf_path = dir.join("wf.json");
        run_cmd(
            generate,
            &[
                "--family",
                "sipht",
                "--tasks",
                "30",
                "--out",
                wf_path.to_str().unwrap(),
            ],
        );
        let out = run_cmd(run, &["--workflow", wf_path.to_str().unwrap(), "--online"]);
        assert!(out.contains("makespan"));
    }

    #[test]
    fn platforms_lists_presets() {
        let out = run_cmd(platforms, &[]);
        assert!(out.contains("workstation") && out.contains("edge_soc"));
    }
}

#[cfg(test)]
mod campaign_tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|&x| x.to_owned()).collect()
    }

    #[test]
    fn campaign_runs_multiple_members() {
        let dir = std::env::temp_dir().join("helios-cli-campaign");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        for (path, family) in [(&a, "montage"), (&b, "sipht")] {
            let mut buf = Vec::new();
            generate(
                &argv(&[
                    "--family",
                    family,
                    "--tasks",
                    "30",
                    "--out",
                    path.to_str().unwrap(),
                ]),
                &mut buf,
            )
            .unwrap();
        }
        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "--member",
                a.to_str().unwrap(),
                "--member",
                &format!("{}:0.01:5", b.to_str().unwrap()),
                "--policy",
                "fair-share",
                "--platform",
                "workstation",
            ]),
            &mut buf,
        )
        .unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("campaign of 2 members"), "{out}");
        assert!(out.contains("member 1"), "{out}");
    }

    #[test]
    fn campaign_argument_validation() {
        let mut buf = Vec::new();
        assert!(campaign(&argv(&[]), &mut buf).is_err());
        assert!(campaign(&argv(&["--member", "x.json:notanumber"]), &mut buf).is_err());
        assert!(campaign(&argv(&["--member", "x.json", "--policy", "lifo"]), &mut buf).is_err());
        assert!(campaign(&argv(&["--member", "x.json", "--seeds", "0"]), &mut buf).is_err());
    }

    const SPEC_JSON: &str = r#"{
        "name": "cli-smoke",
        "families": ["montage"],
        "platforms": ["workstation"],
        "schedulers": ["heft", "olb"],
        "seeds": {"base": 0, "count": 2},
        "tasks": 20
    }"#;

    #[test]
    fn campaign_run_merge_roundtrip_is_byte_identical() {
        let dir = std::env::temp_dir().join("helios-cli-campaign-spec");
        // Stale outputs from earlier runs would trigger resume semantics.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(&spec, SPEC_JSON).unwrap();
        let path = |name: &str| dir.join(name).to_str().unwrap().to_owned();

        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "run",
                "--spec",
                &path("spec.json"),
                "--out",
                &path("full.json"),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("sweep \"cli-smoke\""), "{text}");
        assert!(text.contains("olb"), "{text}");

        for shard in ["1/2", "2/2"] {
            let out_file = path(&format!("s{}.json", &shard[..1]));
            let mut buf = Vec::new();
            campaign(
                &argv(&[
                    "run",
                    "--spec",
                    &path("spec.json"),
                    "--shard",
                    shard,
                    "--out",
                    &out_file,
                ]),
                &mut buf,
            )
            .unwrap();
            assert!(String::from_utf8(buf).unwrap().contains("2 of 4 cells"));
        }
        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "merge",
                "--in",
                &path("s1.json"),
                "--in",
                &path("s2.json"),
                "--out",
                &path("merged.json"),
            ]),
            &mut buf,
        )
        .unwrap();
        let full = std::fs::read(dir.join("full.json")).unwrap();
        let merged = std::fs::read(dir.join("merged.json")).unwrap();
        assert_eq!(full, merged, "merged shards must equal the unsharded run");
    }

    #[test]
    fn campaign_spec_errors_are_hard_and_actionable() {
        let dir = std::env::temp_dir().join("helios-cli-campaign-spec-err");
        // Stale outputs from earlier runs would trigger resume semantics.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Malformed JSON.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        let mut buf = Vec::new();
        let err = campaign(&argv(&["run", "--spec", bad.to_str().unwrap()]), &mut buf)
            .unwrap_err()
            .to_string();
        assert!(err.contains("malformed campaign spec"), "{err}");

        // Empty grid axis.
        let empty = dir.join("empty.json");
        std::fs::write(&empty, SPEC_JSON.replace(r#"["heft", "olb"]"#, "[]")).unwrap();
        let err = campaign(&argv(&["run", "--spec", empty.to_str().unwrap()]), &mut buf)
            .unwrap_err()
            .to_string();
        assert!(err.contains("`schedulers` is empty"), "{err}");

        // Missing file, bad shard syntax, shard without --out.
        let err = campaign(&argv(&["run", "--spec", "/nonexistent/s.json"]), &mut buf)
            .unwrap_err()
            .to_string();
        assert!(err.contains("cannot read spec file"), "{err}");
        let spec = dir.join("ok.json");
        std::fs::write(&spec, SPEC_JSON).unwrap();
        let ok = spec.to_str().unwrap();
        assert!(campaign(&argv(&["run", "--spec", ok, "--shard", "9"]), &mut buf).is_err());
        let err = campaign(&argv(&["run", "--spec", ok, "--shard", "1/2"]), &mut buf)
            .unwrap_err()
            .to_string();
        assert!(err.contains("--out"), "{err}");

        // merge with no inputs, and with an unmergeable (incomplete) set.
        assert!(campaign(&argv(&["merge"]), &mut buf).is_err());
        let shard = dir.join("half.json");
        campaign(
            &argv(&[
                "run",
                "--spec",
                ok,
                "--shard",
                "1/2",
                "--out",
                shard.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let err = campaign(&argv(&["merge", "--in", shard.to_str().unwrap()]), &mut buf)
            .unwrap_err()
            .to_string();
        assert!(err.contains("incomplete partition"), "{err}");
    }

    #[test]
    fn store_run_mixed_merge_and_query_roundtrip() {
        let dir = std::env::temp_dir().join("helios-cli-campaign-store");
        // Stale outputs from earlier runs would trigger resume semantics.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(&spec, SPEC_JSON).unwrap();
        let path = |name: &str| dir.join(name).to_str().unwrap().to_owned();

        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "run",
                "--spec",
                &path("spec.json"),
                "--out",
                &path("full.json"),
            ]),
            &mut buf,
        )
        .unwrap();

        // Shard 1 to a columnar store, shard 2 to a plain JSON report:
        // merge must accept the mix and reproduce the unsharded bytes.
        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "run",
                "--spec",
                &path("spec.json"),
                "--shard",
                "1/2",
                "--store",
                &path("s1.store"),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2 of 4 cells stored"), "{text}");
        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "run",
                "--spec",
                &path("spec.json"),
                "--shard",
                "2/2",
                "--out",
                &path("s2.json"),
            ]),
            &mut buf,
        )
        .unwrap();
        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "merge",
                "--in",
                &path("s1.store"),
                "--in",
                &path("s2.json"),
                "--out",
                &path("merged.json"),
            ]),
            &mut buf,
        )
        .unwrap();
        let full = std::fs::read(dir.join("full.json")).unwrap();
        let merged = std::fs::read(dir.join("merged.json")).unwrap();
        assert_eq!(
            full, merged,
            "store+JSON merge must equal the unsharded run"
        );

        // The same aggregate through `helios query` must not depend on
        // whether the rows come from stores or from the JSON report.
        let q = "SELECT scheduler, count(*), avg_completed(makespan_secs) GROUP BY scheduler";
        let run_query = |inputs: &[&str]| {
            let mut a = vec![q.to_owned()];
            for i in inputs {
                a.push("--in".to_owned());
                a.push((*i).to_owned());
            }
            a.push("--json".to_owned());
            let mut buf = Vec::new();
            query(&a, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let over_stores = run_query(&[&path("s1.store"), &path("s2.json")]);
        let over_report = run_query(&[&path("full.json")]);
        assert_eq!(over_stores, over_report);
        assert!(
            over_report.contains("\"scheduler\": \"heft\""),
            "{over_report}"
        );

        // Resuming the finished store is a no-op run with salvage.
        let mut buf = Vec::new();
        campaign(
            &argv(&[
                "run",
                "--spec",
                &path("spec.json"),
                "--shard",
                "1/2",
                "--store",
                &path("s1.store"),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("resumed"), "{text}");
    }

    #[test]
    fn query_argument_and_input_validation() {
        let dir = std::env::temp_dir().join("helios-cli-query-err");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut buf = Vec::new();

        // No expression / flag in expression position / no inputs.
        assert!(query(&argv(&[]), &mut buf).is_err());
        assert!(query(&argv(&["--in", "x.json"]), &mut buf).is_err());
        assert!(query(&argv(&["SELECT *"]), &mut buf).is_err());

        // --journal and --store are mutually exclusive on campaign run.
        let spec = dir.join("spec.json");
        std::fs::write(&spec, SPEC_JSON).unwrap();
        let err = campaign(
            &argv(&[
                "run",
                "--spec",
                spec.to_str().unwrap(),
                "--journal",
                "a.journal",
                "--store",
                "a.store",
            ]),
            &mut buf,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("pick one"), "{err}");

        // A bad expression surfaces the typed error naming the token.
        let report = dir.join("r.json");
        campaign(
            &argv(&[
                "run",
                "--spec",
                spec.to_str().unwrap(),
                "--out",
                report.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let err = query(
            &argv(&["SELECT frobnicate", "--in", report.to_str().unwrap()]),
            &mut buf,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("invalid query at \"frobnicate\""), "{err}");

        // Inputs from different campaigns are refused.
        let other_spec = dir.join("spec2.json");
        std::fs::write(&other_spec, SPEC_JSON.replace("cli-smoke", "cli-other")).unwrap();
        let other = dir.join("r2.json");
        campaign(
            &argv(&[
                "run",
                "--spec",
                other_spec.to_str().unwrap(),
                "--out",
                other.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let err = query(
            &argv(&[
                "SELECT count(*)",
                "--in",
                report.to_str().unwrap(),
                "--in",
                other.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("disagree on the spec"), "{err}");

        // The same file twice repeats every cell.
        let err = query(
            &argv(&[
                "SELECT count(*)",
                "--in",
                report.to_str().unwrap(),
                "--in",
                report.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("appears in both"), "{err}");
    }

    #[test]
    fn campaign_jobs_do_not_change_output() {
        let dir = std::env::temp_dir().join("helios-cli-campaign-jobs");
        std::fs::create_dir_all(&dir).unwrap();
        let wf = dir.join("wf.json");
        let mut buf = Vec::new();
        generate(
            &argv(&[
                "--family",
                "montage",
                "--tasks",
                "30",
                "--out",
                wf.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let run_with = |jobs: &str| {
            let mut buf = Vec::new();
            campaign(
                &argv(&[
                    "--member",
                    wf.to_str().unwrap(),
                    "--member",
                    &format!("{}:0.1:3", wf.to_str().unwrap()),
                    "--platform",
                    "workstation",
                    "--seeds",
                    "3",
                    "--jobs",
                    jobs,
                ]),
                &mut buf,
            )
            .unwrap();
            buf
        };
        let sequential = run_with("1");
        assert_eq!(sequential, run_with("3"), "--jobs must not change bytes");
        assert_eq!(sequential, run_with("0"), "--jobs 0 (auto) must match too");
        let text = String::from_utf8(sequential).unwrap();
        assert!(text.contains("seed 2"), "{text}");
        assert!(text.contains("3 seeds: mean makespan"), "{text}");
    }
}
