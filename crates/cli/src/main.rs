//! `helios` binary entry point — see [`helios_cli`] for the commands.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = helios_cli::run(&argv, &mut stdout) {
        // A closed pipe (e.g. `helios ... | head`) is not an error.
        if let helios_cli::CliError::Io(io) = &e {
            if io.kind() == std::io::ErrorKind::BrokenPipe {
                return;
            }
        }
        eprintln!("helios: {e}");
        std::process::exit(match e {
            helios_cli::CliError::Usage(_) => 2,
            // Resumable drain (SIGINT/SIGTERM on a journaled sweep) gets
            // its own code so wrappers can re-run instead of failing.
            helios_cli::CliError::Interrupted(_) => 3,
            _ => 1,
        });
    }
}
