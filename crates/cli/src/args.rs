//! A small, dependency-free flag parser.
//!
//! Supports `--key value` options and boolean `--flag` switches; every
//! command declares which names it accepts, so typos fail fast with the
//! command's own usage string.

use crate::CliError;

/// Parsed arguments: `--key value` pairs (repeatable) plus boolean
/// flags.
#[derive(Debug, Default)]
pub struct Args {
    values: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv`, accepting only the declared option and flag names
    /// (without the `--` prefix).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on unknown names, missing values, or
    /// stray positional arguments.
    pub fn parse(argv: &[String], options: &[&str], flags: &[&str]) -> Result<Args, CliError> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument {arg:?}"
                )));
            };
            if flags.contains(&name) {
                out.flags.push(name.to_owned());
            } else if options.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                out.values.push((name.to_owned(), value.clone()));
            } else {
                return Err(CliError::Usage(format!("unknown option --{name}")));
            }
        }
        Ok(out)
    }

    /// The value of `--name` (the last occurrence), if given.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of `--name`, in order.
    #[must_use]
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// The value of a mandatory option.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when absent.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    /// Whether the boolean `--name` flag was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses `--name` as `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when present but unparseable.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} {v:?} is not a valid value"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|&x| x.to_owned()).collect()
    }

    #[test]
    fn parses_options_and_flags() {
        let a = Args::parse(
            &argv(&["--tasks", "100", "--gantt", "--seed", "7"]),
            &["tasks", "seed"],
            &["gantt"],
        )
        .unwrap();
        assert_eq!(a.get("tasks"), Some("100"));
        assert_eq!(a.parse_or("seed", 0u64).unwrap(), 7);
        assert!(a.flag("gantt"));
        assert!(!a.flag("other"));
        assert_eq!(a.parse_or("missing", 5u32).unwrap(), 5);
    }

    #[test]
    fn repeated_options_accumulate() {
        let a = Args::parse(
            &argv(&["--member", "a", "--member", "b", "--member", "c"]),
            &["member"],
            &[],
        )
        .unwrap();
        assert_eq!(a.get_all("member"), vec!["a", "b", "c"]);
        assert_eq!(a.get("member"), Some("c"), "get returns the last");
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Args::parse(&argv(&["--bogus"]), &[], &[]).is_err());
        assert!(Args::parse(&argv(&["positional"]), &[], &[]).is_err());
        assert!(Args::parse(&argv(&["--tasks"]), &["tasks"], &[]).is_err());
        let a = Args::parse(&argv(&["--tasks", "abc"]), &["tasks"], &[]).unwrap();
        assert!(a.parse_or("tasks", 0u32).is_err());
        assert!(a.require("seed").is_err());
        assert!(a.require("tasks").is_ok());
    }
}
