//! DVFS slack reclamation.

use std::collections::BTreeMap;

use helios_platform::{DvfsLevel, Platform};
use helios_sched::{Placement, SchedError, Schedule};
use helios_sim::SimTime;
use helios_workflow::{TaskId, Workflow};

/// Reclaims deadline slack with DVFS: every task is slid **as late as
/// possible** (ALAP) within `deadline` and re-assigned the lowest-power
/// DVFS state whose execution time fits its window. Device assignments
/// and per-device task order are preserved; no task starts earlier than
/// in the input schedule, so every data product still arrives in time.
///
/// Tasks are processed in decreasing original-start order. Each task's
/// *latest finish* is the minimum of:
///
/// * `deadline`,
/// * each successor's (already slid) start minus the transfer time to it,
/// * the (already slid) start of the next task on the same device.
///
/// The reclaimed window is `latest_finish − original_start`; the window
/// never shrinks below the original duration, so the input level is
/// always a feasible fallback. Because exit tasks anchor at the deadline
/// and windows propagate upstream through the slid starts, energy savings
/// grow with deadline slack until every task reaches the slowest state.
///
/// # Errors
///
/// Returns [`SchedError::Internal`] if `deadline` precedes the schedule's
/// makespan, or propagates placement errors.
pub fn reclaim_slack(
    schedule: &Schedule,
    wf: &Workflow,
    platform: &Platform,
    deadline: SimTime,
) -> Result<Schedule, SchedError> {
    let makespan_end = SimTime::ZERO + schedule.makespan();
    if deadline < makespan_end {
        return Err(SchedError::Internal(format!(
            "deadline {deadline} precedes makespan {makespan_end}"
        )));
    }

    // Successor-on-device map, from the original start order (ALAP
    // sliding preserves per-device order, so this stays correct).
    let mut next_on_device: BTreeMap<TaskId, TaskId> = BTreeMap::new();
    for (_, tasks) in schedule.tasks_by_device() {
        for pair in tasks.windows(2) {
            next_on_device.insert(pair[0], pair[1]);
        }
    }

    // Process by decreasing original start; ties broken by reverse
    // topological position so DAG successors always go first.
    let mut topo_pos = vec![0usize; wf.num_tasks()];
    for (i, &t) in wf.topo_order().iter().enumerate() {
        topo_pos[t.0] = i;
    }
    let mut order: Vec<&Placement> = schedule.placements().iter().collect();
    order.sort_by(|a, b| {
        b.start
            .cmp(&a.start)
            .then(topo_pos[b.task.0].cmp(&topo_pos[a.task.0]))
    });

    let mut new_placements: BTreeMap<TaskId, Placement> =
        schedule.placements().iter().map(|p| (p.task, *p)).collect();

    for original in order {
        let task = original.task;
        let device = platform.device(original.device)?;

        let mut latest = deadline;
        for &e in wf.successors(task) {
            let edge = wf.edge(e);
            let succ = new_placements
                .get(&edge.dst)
                .ok_or(SchedError::Unscheduled(edge.dst))?;
            let transfer = platform.transfer_time(edge.bytes, original.device, succ.device)?;
            let bound = succ.start.as_secs() - transfer.as_secs();
            if bound < latest.as_secs() {
                latest = SimTime::from_secs(bound.max(0.0));
            }
        }
        if let Some(next) = next_on_device.get(&task) {
            let next_start = new_placements
                .get(next)
                .ok_or(SchedError::Unscheduled(*next))?
                .start;
            latest = latest.min(next_start);
        }

        // The window opens at the original start (data availability is
        // only guaranteed from there) and closes at `latest`.
        let window = latest.saturating_since(original.start);
        let cost = wf.task(task)?.cost();
        let mut chosen = original.level;
        let mut exec = original.finish.saturating_since(original.start);
        for lvl in 0..device.dvfs_states().len() {
            let level = DvfsLevel(lvl);
            let t = device.execution_time(cost, level)?;
            if t <= window {
                chosen = level;
                exec = t;
                break;
            }
        }
        // Defensive: never pick a level above the original.
        if chosen.0 > original.level.0 {
            chosen = original.level;
            exec = original.finish.saturating_since(original.start);
        }
        // ALAP: anchor the finish exactly at the window's end so
        // predecessors inherit the slack and the next task on the device
        // can never be overlapped (even by floating-point rounding).
        let finish = original.start.max(latest);
        let start = SimTime::from_secs((finish.as_secs() - exec.as_secs()).max(0.0));
        new_placements.insert(
            task,
            Placement {
                task,
                device: original.device,
                level: chosen,
                start,
                finish,
            },
        );
    }

    Schedule::new(new_placements.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account;
    use helios_platform::presets;
    use helios_sched::{HeftScheduler, Scheduler};
    use helios_workflow::generators::{epigenomics, montage};

    fn base(seed: u64) -> (Workflow, Platform, Schedule) {
        let wf = epigenomics(60, seed).unwrap();
        let p = presets::hpc_node();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        (wf, p, s)
    }

    #[test]
    fn reclaimed_schedule_is_valid_and_meets_deadline() {
        let (wf, p, s) = base(1);
        for slack in [1.0, 1.2, 1.5, 2.0] {
            let deadline = SimTime::ZERO + s.makespan() * slack;
            let r = reclaim_slack(&s, &wf, &p, deadline).unwrap();
            r.validate(&wf, &p)
                .unwrap_or_else(|e| panic!("slack {slack}: {e}"));
            assert!(
                r.makespan().as_secs() <= deadline.as_secs() + 1e-9,
                "slack {slack}: makespan {} exceeds deadline {deadline}",
                r.makespan()
            );
        }
    }

    #[test]
    fn energy_never_increases_and_drops_with_slack() {
        let (wf, p, s) = base(2);
        let base_energy = account(&s, &wf, &p, false).unwrap().active_j;
        let mut prev = base_energy;
        for slack in [1.0, 1.3, 1.6, 2.0] {
            let deadline = SimTime::ZERO + s.makespan() * slack;
            let r = reclaim_slack(&s, &wf, &p, deadline).unwrap();
            let e = account(&r, &wf, &p, false).unwrap().active_j;
            assert!(e <= base_energy + 1e-9, "slack {slack}");
            assert!(e <= prev + 1e-6, "energy should be monotone in slack");
            prev = e;
        }
        // At 2x deadline, meaningful savings must appear.
        let deadline = SimTime::ZERO + s.makespan() * 2.0;
        let r = reclaim_slack(&s, &wf, &p, deadline).unwrap();
        let e = account(&r, &wf, &p, false).unwrap().active_j;
        assert!(
            e < 0.9 * base_energy,
            "2x slack should save >10% active energy: {e} vs {base_energy}"
        );
    }

    #[test]
    fn tasks_only_slide_later_on_same_device() {
        let (wf, p, s) = base(3);
        let deadline = SimTime::ZERO + s.makespan() * 1.5;
        let r = reclaim_slack(&s, &wf, &p, deadline).unwrap();
        for (a, b) in s.placements().iter().zip(r.placements()) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.device, b.device);
            assert!(
                b.start.as_secs() >= a.start.as_secs() - 1e-9,
                "{}: start moved earlier",
                a.task
            );
            assert!(b.level.0 <= a.level.0, "{}: level went up", a.task);
        }
        let _ = wf;
    }

    #[test]
    fn deadline_before_makespan_rejected() {
        let (wf, p, s) = base(4);
        let early = SimTime::from_secs(s.makespan().as_secs() * 0.5);
        assert!(matches!(
            reclaim_slack(&s, &wf, &p, early),
            Err(SchedError::Internal(_))
        ));
        let _ = wf;
    }

    #[test]
    fn generous_deadline_reaches_lowest_states() {
        let (wf, p, s) = base(5);
        let deadline = SimTime::ZERO + s.makespan() * 20.0;
        let r = reclaim_slack(&s, &wf, &p, deadline).unwrap();
        r.validate(&wf, &p).unwrap();
        let at_min = r
            .placements()
            .iter()
            .filter(|pl| pl.level == DvfsLevel(0))
            .count();
        assert!(
            at_min as f64 >= 0.9 * r.placements().len() as f64,
            "only {at_min}/{} tasks reached the slowest state",
            r.placements().len()
        );
    }

    #[test]
    fn works_on_montage_too() {
        let wf = montage(50, 5).unwrap();
        let p = presets::workstation();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let deadline = SimTime::ZERO + s.makespan() * 1.4;
        let r = reclaim_slack(&s, &wf, &p, deadline).unwrap();
        r.validate(&wf, &p).unwrap();
    }
}
