//! Energy management for heterogeneous platforms.
//!
//! Four pieces, mirroring the energy-management toolbox of the
//! heterogeneous-computing literature:
//!
//! * [`EnergyReport`] / [`account`] — post-hoc energy accounting for a
//!   schedule: active energy per placement, idle energy in gaps, and
//!   optionally dynamic-resource-sleep (DRS) savings when gaps exceed the
//!   device's sleep break-even point,
//! * [`reclaim_slack`] — classical DVFS slack reclamation: stretch
//!   non-critical tasks to lower voltage/frequency states without moving
//!   any start time or violating a deadline,
//! * [`EnergyAwareHeft`] — a HEFT variant whose device selection trades
//!   finish time against execution energy (`alpha` knob),
//! * [`DvfsGovernor`] implementations ([`Performance`], [`Powersave`],
//!   [`OnDemand`]) — dynamic level selection for the execution engine.
//!
//! # Examples
//!
//! ```
//! use helios_energy::{account, reclaim_slack};
//! use helios_platform::presets;
//! use helios_sched::{HeftScheduler, Scheduler};
//! use helios_sim::SimTime;
//! use helios_workflow::generators::epigenomics;
//!
//! let platform = presets::hpc_node();
//! let wf = epigenomics(60, 1)?;
//! let schedule = HeftScheduler::default().schedule(&wf, &platform)?;
//! let before = account(&schedule, &wf, &platform, false)?;
//!
//! // Allow 50% deadline slack and reclaim it with DVFS.
//! let deadline = SimTime::ZERO + schedule.makespan() * 1.5;
//! let relaxed = reclaim_slack(&schedule, &wf, &platform, deadline)?;
//! let after = account(&relaxed, &wf, &platform, false)?;
//! assert!(after.active_j <= before.active_j);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accounting;
mod budget;
mod eaheft;
mod governor;
mod slack;

pub use accounting::{account, DeviceEnergy, EnergyReport};
pub use budget::{plan_within_budget, BudgetPlan};
pub use eaheft::EnergyAwareHeft;
pub use governor::{DvfsGovernor, OnDemand, Performance, Powersave};
pub use slack::reclaim_slack;
