//! Energy-budget-constrained planning.
//!
//! Battery-powered instruments and power-capped facilities ask the dual
//! of the usual question: *given at most `B` joules of active energy,
//! how fast can this workflow run?* [`plan_within_budget`] answers with
//! a deterministic grid search over the two energy knobs this crate
//! provides — energy-aware device selection ([`EnergyAwareHeft`]'s
//! `alpha`) and DVFS slack reclamation ([`reclaim_slack`]'s deadline) —
//! returning the fastest plan whose active energy fits the budget.

use helios_platform::Platform;
use helios_sched::{SchedError, Schedule, Scheduler};
use helios_sim::SimTime;
use helios_workflow::Workflow;

use crate::accounting::account;
use crate::eaheft::EnergyAwareHeft;
use crate::slack::reclaim_slack;

/// A budget-feasible plan and its accounting.
#[derive(Debug, Clone)]
pub struct BudgetPlan {
    /// The schedule to execute.
    pub schedule: Schedule,
    /// Active energy of the plan, joules.
    pub active_j: f64,
    /// Makespan, seconds.
    pub makespan_secs: f64,
    /// The `alpha` that produced it.
    pub alpha: f64,
    /// The deadline stretch applied by slack reclamation (1.0 = none).
    pub deadline_factor: f64,
}

/// Finds the fastest plan whose **active** energy is at most
/// `budget_j`, searching `alpha ∈ {1.0, 0.9, …, 0.0}` ×
/// `deadline ∈ {1.0, 1.1, …, max_deadline_factor}` (grid, deterministic).
///
/// Returns `None` when even the most frugal combination exceeds the
/// budget. Idle energy is excluded: it depends on what else the
/// platform does during the makespan, which is the operator's concern,
/// not the plan's.
///
/// # Errors
///
/// Returns [`SchedError::Internal`] for a non-positive budget or
/// `max_deadline_factor < 1`, or propagates planning errors.
pub fn plan_within_budget(
    wf: &Workflow,
    platform: &Platform,
    budget_j: f64,
    max_deadline_factor: f64,
) -> Result<Option<BudgetPlan>, SchedError> {
    if !(budget_j.is_finite() && budget_j > 0.0) {
        return Err(SchedError::Internal(format!(
            "budget must be positive, got {budget_j}"
        )));
    }
    if !(max_deadline_factor.is_finite() && max_deadline_factor >= 1.0) {
        return Err(SchedError::Internal(format!(
            "max_deadline_factor must be >= 1, got {max_deadline_factor}"
        )));
    }

    let mut best: Option<BudgetPlan> = None;
    let mut alpha = 1.0f64;
    while alpha >= -1e-9 {
        let base = EnergyAwareHeft::new(alpha.clamp(0.0, 1.0)).schedule(wf, platform)?;
        let mut factor = 1.0f64;
        while factor <= max_deadline_factor + 1e-9 {
            let candidate = if factor > 1.0 {
                let deadline = SimTime::ZERO + base.makespan() * factor;
                reclaim_slack(&base, wf, platform, deadline)?
            } else {
                base.clone()
            };
            let report = account(&candidate, wf, platform, false)?;
            if report.active_j <= budget_j {
                let makespan = candidate.makespan().as_secs();
                let better = best.as_ref().is_none_or(|b| makespan < b.makespan_secs);
                if better {
                    best = Some(BudgetPlan {
                        schedule: candidate,
                        active_j: report.active_j,
                        makespan_secs: makespan,
                        alpha: alpha.clamp(0.0, 1.0),
                        deadline_factor: factor,
                    });
                }
                // Larger stretches only get slower: next alpha.
                break;
            }
            factor += 0.1;
        }
        alpha -= 0.1;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_workflow::generators::ligo_inspiral;

    fn setup() -> (Workflow, Platform, f64) {
        let wf = ligo_inspiral(80, 1).unwrap();
        let p = presets::hpc_node();
        let heft = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let heft_energy = account(&heft, &wf, &p, false).unwrap().active_j;
        (wf, p, heft_energy)
    }

    #[test]
    fn loose_budget_returns_fastest_plan() {
        let (wf, p, heft_energy) = setup();
        let plan = plan_within_budget(&wf, &p, heft_energy * 2.0, 2.0)
            .unwrap()
            .expect("loose budget must be feasible");
        assert!((plan.alpha - 1.0).abs() < 1e-9, "alpha {}", plan.alpha);
        assert!((plan.deadline_factor - 1.0).abs() < 1e-9);
        plan.schedule.validate(&wf, &p).unwrap();
    }

    #[test]
    fn tight_budget_trades_makespan() {
        let (wf, p, heft_energy) = setup();
        let loose = plan_within_budget(&wf, &p, heft_energy * 2.0, 2.0)
            .unwrap()
            .unwrap();
        let tight = plan_within_budget(&wf, &p, heft_energy * 0.8, 2.0)
            .unwrap()
            .expect("20% cut must be reachable");
        assert!(tight.active_j <= heft_energy * 0.8 + 1e-9);
        assert!(
            tight.makespan_secs >= loose.makespan_secs,
            "paying energy must cost time: {} vs {}",
            tight.makespan_secs,
            loose.makespan_secs
        );
        tight.schedule.validate(&wf, &p).unwrap();
    }

    #[test]
    fn impossible_budget_returns_none() {
        let (wf, p, heft_energy) = setup();
        let plan = plan_within_budget(&wf, &p, heft_energy * 1e-4, 1.5).unwrap();
        assert!(plan.is_none());
    }

    #[test]
    fn budget_monotonicity() {
        let (wf, p, heft_energy) = setup();
        let mut last_makespan = f64::INFINITY;
        for frac in [0.75, 0.85, 0.95, 1.2] {
            if let Some(plan) = plan_within_budget(&wf, &p, heft_energy * frac, 2.0).unwrap() {
                assert!(
                    plan.makespan_secs <= last_makespan + 1e-9,
                    "looser budget cannot be slower"
                );
                last_makespan = plan.makespan_secs;
            }
        }
        assert!(last_makespan.is_finite());
    }

    #[test]
    fn invalid_arguments_rejected() {
        let (wf, p, _) = setup();
        assert!(plan_within_budget(&wf, &p, 0.0, 1.5).is_err());
        assert!(plan_within_budget(&wf, &p, 100.0, 0.5).is_err());
    }
}
