//! Post-hoc energy accounting for schedules.

use serde::{Deserialize, Serialize};

use helios_platform::Platform;
use helios_sched::{SchedError, Schedule};
use helios_sim::SimTime;
use helios_workflow::Workflow;

/// Energy breakdown for one device, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeviceEnergy {
    /// Energy while executing tasks.
    pub active_j: f64,
    /// Energy while powered but idle.
    pub idle_j: f64,
    /// Energy while in DRS sleep.
    pub sleep_j: f64,
}

impl DeviceEnergy {
    /// Total joules for the device.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.active_j + self.idle_j + self.sleep_j
    }
}

/// Platform-wide energy report for one executed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Per-device breakdown, indexed by device id.
    pub per_device: Vec<DeviceEnergy>,
    /// Total active energy, joules.
    pub active_j: f64,
    /// Total idle energy, joules.
    pub idle_j: f64,
    /// Total sleep energy, joules.
    pub sleep_j: f64,
    /// The schedule's makespan, seconds.
    pub makespan_secs: f64,
}

impl EnergyReport {
    /// Total platform energy, joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.active_j + self.idle_j + self.sleep_j
    }

    /// Energy-delay product (J·s) — the metric the energy experiments
    /// rank schedulers by.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.total_j() * self.makespan_secs
    }

    /// Mean power draw over the makespan, watts.
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        if self.makespan_secs == 0.0 {
            0.0
        } else {
            self.total_j() / self.makespan_secs
        }
    }
}

/// Computes the energy a schedule dissipates on `platform`.
///
/// Each placement contributes active energy at its DVFS level. Device
/// time not covered by a placement — before the first task, between
/// tasks, and after the last task until the makespan — contributes idle
/// energy, unless `drs` is set and the gap exceeds the device's sleep
/// break-even point, in which case the gap (minus the wake-up latency at
/// idle power) is billed at sleep power.
///
/// # Errors
///
/// Propagates platform and placement errors.
pub fn account(
    schedule: &Schedule,
    wf: &Workflow,
    platform: &Platform,
    drs: bool,
) -> Result<EnergyReport, SchedError> {
    let makespan = schedule.makespan();
    let end = SimTime::ZERO + makespan;
    let mut per_device = vec![DeviceEnergy::default(); platform.num_devices()];

    let by_device = schedule.tasks_by_device();
    for (d, acc) in per_device.iter_mut().enumerate() {
        let device = platform.device(helios_platform::DeviceId(d))?;
        let power = device.power_model();
        let sleep = device.sleep_model();

        // Busy intervals in start order (validated schedules have
        // single-slot devices non-overlapping; multi-slot devices are
        // billed per-task for active and by gaps in the merged timeline
        // for idle).
        let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
        if let Some(tasks) = by_device.get(&helios_platform::DeviceId(d)) {
            for &t in tasks {
                let p = schedule.placement(t)?;
                let state = device.dvfs_state(p.level)?;
                acc.active_j += power.active_energy(state, p.duration());
                intervals.push((p.start, p.finish));
            }
        }
        intervals.sort();
        // Merge overlapping intervals (multi-slot devices).
        let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
        for (s, f) in intervals {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(f),
                _ => merged.push((s, f)),
            }
        }
        // Bill the gaps.
        let mut cursor = SimTime::ZERO;
        let break_even = sleep.break_even(power.idle_power());
        let bill_gap = |from: SimTime, to: SimTime, acc: &mut DeviceEnergy| {
            let gap = to.saturating_since(from);
            if gap.as_secs() == 0.0 {
                return;
            }
            let can_sleep = drs && break_even.is_some_and(|be| gap > be);
            if can_sleep {
                // Pay wake latency at idle power, the rest asleep.
                let wake = sleep.wake_latency();
                let asleep = gap - wake;
                acc.sleep_j += sleep.sleep_energy(asleep);
                acc.idle_j += power.idle_energy(wake);
            } else {
                acc.idle_j += power.idle_energy(gap);
            }
        };
        for &(s, f) in &merged {
            bill_gap(cursor, s, acc);
            cursor = cursor.max(f);
        }
        bill_gap(cursor, end, acc);
    }

    let _ = wf; // workflow kept in the signature for future per-stage breakdowns
    Ok(EnergyReport {
        active_j: per_device.iter().map(|d| d.active_j).sum(),
        idle_j: per_device.iter().map(|d| d.idle_j).sum(),
        sleep_j: per_device.iter().map(|d| d.sleep_j).sum(),
        per_device,
        makespan_secs: makespan.as_secs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_sched::{HeftScheduler, Scheduler};
    use helios_workflow::generators::montage;

    fn setup() -> (Workflow, Platform, Schedule) {
        let wf = montage(50, 1).unwrap();
        let p = presets::hpc_node();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        (wf, p, s)
    }

    #[test]
    fn energy_is_positive_and_consistent() {
        let (wf, p, s) = setup();
        let r = account(&s, &wf, &p, false).unwrap();
        assert!(r.active_j > 0.0);
        assert!(r.idle_j > 0.0, "unused devices must idle");
        assert_eq!(r.sleep_j, 0.0, "no DRS requested");
        let sum: f64 = r.per_device.iter().map(DeviceEnergy::total_j).sum();
        assert!((sum - r.total_j()).abs() < 1e-9);
        assert!(r.edp() > 0.0);
        assert!(r.mean_power_w() > 0.0);
    }

    #[test]
    fn drs_never_increases_energy() {
        let (wf, p, s) = setup();
        let plain = account(&s, &wf, &p, false).unwrap();
        let drs = account(&s, &wf, &p, true).unwrap();
        assert!(
            drs.total_j() <= plain.total_j() + 1e-9,
            "DRS {} vs plain {}",
            drs.total_j(),
            plain.total_j()
        );
        assert!(drs.sleep_j > 0.0, "long gaps should trigger sleep");
    }

    #[test]
    fn active_energy_matches_manual_sum() {
        let (wf, p, s) = setup();
        let r = account(&s, &wf, &p, false).unwrap();
        let mut manual = 0.0;
        for pl in s.placements() {
            let dev = p.device(pl.device).unwrap();
            let state = dev.dvfs_state(pl.level).unwrap();
            manual += dev.power_model().active_energy(state, pl.duration());
        }
        assert!((manual - r.active_j).abs() < 1e-6);
        let _ = wf;
    }

    #[test]
    fn empty_gap_handling() {
        // Single-task schedule: gap after the task is zero (task defines
        // the makespan), gap before is zero.
        use helios_platform::{ComputeCost, KernelClass};
        use helios_workflow::{Task, WorkflowBuilder};
        let mut b = WorkflowBuilder::new("one");
        b.add_task(Task::new(
            "a",
            "s",
            ComputeCost::new(100.0, 0.0, KernelClass::BranchyScalar),
        ));
        let wf = b.build().unwrap();
        let p = presets::workstation();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let r = account(&s, &wf, &p, false).unwrap();
        // The executing device never idles; the others idle the whole time.
        let exec_dev = s.placements()[0].device.0;
        assert_eq!(r.per_device[exec_dev].idle_j, 0.0);
        for (i, d) in r.per_device.iter().enumerate() {
            if i != exec_dev {
                assert!(d.idle_j > 0.0);
                assert_eq!(d.active_j, 0.0);
            }
        }
    }
}
