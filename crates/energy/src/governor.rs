//! DVFS governors: dynamic operating-point selection for the execution
//! engine.
//!
//! Governors answer one question at task-dispatch time: *at which DVFS
//! level should this device run the task it is about to start?* The
//! engine supplies the current **pressure** — the ratio of ready tasks to
//! idle devices — as the load signal, mirroring how OS cpufreq governors
//! react to run-queue depth.

use std::fmt::Debug;

use helios_platform::{Device, DvfsLevel};

/// A dynamic DVFS policy.
pub trait DvfsGovernor: Debug + Send + Sync {
    /// A short stable name for reports.
    fn name(&self) -> &str;

    /// Chooses the DVFS level for a task about to start on `device`,
    /// given the scheduler `pressure` (ready tasks per idle device;
    /// `1.0` means exactly enough work to go around).
    fn select_level(&self, device: &Device, pressure: f64) -> DvfsLevel;
}

/// Always run at the nominal (fastest) state.
#[derive(Debug, Clone, Copy, Default)]
pub struct Performance;

impl DvfsGovernor for Performance {
    fn name(&self) -> &str {
        "performance"
    }

    fn select_level(&self, device: &Device, _pressure: f64) -> DvfsLevel {
        device.nominal_level()
    }
}

/// Always run at the slowest state.
#[derive(Debug, Clone, Copy, Default)]
pub struct Powersave;

impl DvfsGovernor for Powersave {
    fn name(&self) -> &str {
        "powersave"
    }

    fn select_level(&self, device: &Device, _pressure: f64) -> DvfsLevel {
        device.min_level()
    }
}

/// Load-proportional selection: at or above the `threshold` pressure the
/// device runs at nominal; below it, the level scales down linearly with
/// pressure (pressure 0 → slowest state).
#[derive(Debug, Clone, Copy)]
pub struct OnDemand {
    threshold: f64,
}

impl OnDemand {
    /// Creates the governor; `threshold` is the pressure at which the
    /// device saturates to its nominal state.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    #[must_use]
    pub fn new(threshold: f64) -> OnDemand {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold {threshold} must be positive"
        );
        OnDemand { threshold }
    }
}

impl Default for OnDemand {
    /// Saturates at pressure 1.0 (one ready task per idle device).
    fn default() -> Self {
        OnDemand::new(1.0)
    }
}

impl DvfsGovernor for OnDemand {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn select_level(&self, device: &Device, pressure: f64) -> DvfsLevel {
        let n = device.dvfs_states().len();
        let frac = (pressure / self.threshold).clamp(0.0, 1.0);
        // frac 0 → level 0; frac 1 → nominal (n-1).
        let level = (frac * (n - 1) as f64).round() as usize;
        DvfsLevel(level.min(n - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::{DeviceBuilder, DeviceKind};

    fn dev() -> Device {
        DeviceBuilder::new("d", DeviceKind::Cpu).build().unwrap()
    }

    #[test]
    fn performance_and_powersave_extremes() {
        let d = dev();
        assert_eq!(Performance.select_level(&d, 0.0), d.nominal_level());
        assert_eq!(Performance.select_level(&d, 99.0), d.nominal_level());
        assert_eq!(Powersave.select_level(&d, 99.0), d.min_level());
    }

    #[test]
    fn ondemand_scales_with_pressure() {
        let d = dev(); // 3 states
        let g = OnDemand::default();
        assert_eq!(g.select_level(&d, 0.0), DvfsLevel(0));
        assert_eq!(g.select_level(&d, 0.5), DvfsLevel(1));
        assert_eq!(g.select_level(&d, 1.0), d.nominal_level());
        assert_eq!(g.select_level(&d, 5.0), d.nominal_level());
    }

    #[test]
    fn ondemand_threshold_shifts_saturation() {
        let d = dev();
        let g = OnDemand::new(2.0);
        assert_eq!(g.select_level(&d, 1.0), DvfsLevel(1));
        assert_eq!(g.select_level(&d, 2.0), d.nominal_level());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_threshold_panics() {
        let _ = OnDemand::new(0.0);
    }

    #[test]
    fn governors_are_object_safe() {
        let governors: Vec<Box<dyn DvfsGovernor>> = vec![
            Box::new(Performance),
            Box::new(Powersave),
            Box::new(OnDemand::default()),
        ];
        let names: Vec<_> = governors.iter().map(|g| g.name()).collect();
        assert_eq!(names, ["performance", "powersave", "ondemand"]);
    }
}
