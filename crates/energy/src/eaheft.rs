//! Energy-aware HEFT.

use helios_platform::{DeviceId, Platform};
use helios_sched::{SchedContext, SchedError, Schedule, Scheduler};
use helios_workflow::{analysis, TaskId, Workflow};

/// A HEFT variant whose device-selection objective is a weighted blend of
/// normalized earliest finish time and normalized execution energy:
///
/// `score(d) = alpha · EFT(d)/min_EFT + (1 − alpha) · E(d)/min_E`
///
/// `alpha = 1` reproduces plain HEFT; `alpha = 0` greedily minimizes
/// per-task energy. The interesting regime is in between, where a few
/// percent of makespan buys a large energy cut by steering work away
/// from power-hungry devices whose speed advantage is marginal.
#[derive(Debug, Clone)]
pub struct EnergyAwareHeft {
    alpha: f64,
}

impl EnergyAwareHeft {
    /// Creates the scheduler with the given time/energy weight.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> EnergyAwareHeft {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha {alpha} must be in [0, 1]"
        );
        EnergyAwareHeft { alpha }
    }

    /// The time/energy weight.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for EnergyAwareHeft {
    /// A balanced trade-off (`alpha = 0.5`).
    fn default() -> Self {
        EnergyAwareHeft::new(0.5)
    }
}

impl Scheduler for EnergyAwareHeft {
    fn name(&self) -> &str {
        "ea-heft"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let ranks = analysis::bottom_levels(wf, platform)?;
        let mut order: Vec<TaskId> = (0..wf.num_tasks()).map(TaskId).collect();
        order.sort_by(|a, b| ranks[b.0].total_cmp(&ranks[a.0]).then(a.0.cmp(&b.0)));

        let mut ctx = SchedContext::new(wf, platform, true)?;
        for task in order {
            let cost = wf.task(task)?.cost();
            // Gather candidates with EFT and energy.
            let mut candidates = Vec::with_capacity(platform.num_devices());
            for d in 0..platform.num_devices() {
                let dev_id = DeviceId(d);
                if !ctx.feasible(task, dev_id) {
                    continue;
                }
                let (start, finish) = ctx.eft(task, dev_id)?;
                let device = platform.device(dev_id)?;
                let energy = device.execution_energy(cost, device.nominal_level())?;
                candidates.push((dev_id, start, finish, energy));
            }
            if candidates.is_empty() {
                return Err(SchedError::NoFeasibleDevice(task));
            }
            let min_finish = candidates
                .iter()
                .map(|c| c.2.as_secs())
                .fold(f64::INFINITY, f64::min);
            let min_energy = candidates.iter().map(|c| c.3).fold(f64::INFINITY, f64::min);
            let (dev, start, finish, _) = candidates
                .into_iter()
                .min_by(|a, b| {
                    let score = |c: &(DeviceId, _, helios_sim::SimTime, f64)| {
                        self.alpha * c.2.as_secs() / min_finish.max(1e-30)
                            + (1.0 - self.alpha) * c.3 / min_energy.max(1e-30)
                    };
                    score(a).total_cmp(&score(b)).then(a.0.cmp(&b.0))
                })
                .ok_or_else(|| SchedError::Internal("no devices".into()))?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account;
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_workflow::generators::ligo_inspiral;

    #[test]
    fn valid_across_alpha_range() {
        let wf = ligo_inspiral(60, 1).unwrap();
        let p = presets::hpc_node();
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let s = EnergyAwareHeft::new(alpha).schedule(&wf, &p).unwrap();
            s.validate(&wf, &p)
                .unwrap_or_else(|e| panic!("alpha {alpha}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn alpha_out_of_range_panics() {
        let _ = EnergyAwareHeft::new(1.5);
    }

    #[test]
    fn alpha_one_matches_heft() {
        let wf = ligo_inspiral(50, 2).unwrap();
        let p = presets::hpc_node();
        let ea = EnergyAwareHeft::new(1.0).schedule(&wf, &p).unwrap();
        let heft = HeftScheduler::default().schedule(&wf, &p).unwrap();
        assert_eq!(ea.placements(), heft.placements());
    }

    #[test]
    fn lower_alpha_trades_time_for_energy() {
        let p = presets::hpc_node();
        let mut time_sum = [0.0f64; 2];
        let mut energy_sum = [0.0f64; 2];
        for seed in 0..6 {
            let wf = ligo_inspiral(60, seed).unwrap();
            for (i, alpha) in [1.0, 0.3].into_iter().enumerate() {
                let s = EnergyAwareHeft::new(alpha).schedule(&wf, &p).unwrap();
                time_sum[i] += s.makespan().as_secs();
                energy_sum[i] += account(&s, &wf, &p, false).unwrap().active_j;
            }
        }
        assert!(
            energy_sum[1] < energy_sum[0],
            "alpha 0.3 active energy {} should undercut heft {}",
            energy_sum[1],
            energy_sum[0]
        );
        assert!(
            time_sum[1] >= time_sum[0] * 0.95,
            "energy priority should not magically beat HEFT makespan"
        );
    }
}
