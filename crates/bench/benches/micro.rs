//! Micro-benchmarks of the substrate layers: event queue, DAG analysis,
//! workflow generation, transfer routing and full engine execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use helios_core::{Engine, EngineConfig};
use helios_platform::{presets, DeviceId};
use helios_sched::{HeftScheduler, Scheduler};
use helios_sim::{EventQueue, SimTime};
use helios_workflow::generators::{montage, WorkflowClass};
use helios_workflow::{analysis, Workflow};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Pseudo-random interleaving without an RNG in the loop.
                    let t = ((i * 2_654_435_761) % 1_000_000) as f64 * 1e-3;
                    q.push(SimTime::from_secs(t), i);
                }
                let mut count = 0usize;
                while q.pop().is_some() {
                    count += 1;
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let platform = presets::hpc_node();
    let wf: Workflow = montage(1000, 7).expect("valid size");
    let mut group = c.benchmark_group("dag_analysis");
    group.bench_function("bottom_levels_1000", |b| {
        b.iter(|| analysis::bottom_levels(&wf, &platform).expect("analyzes"))
    });
    group.bench_function("critical_path_1000", |b| {
        b.iter(|| analysis::critical_path(&wf, &platform).expect("analyzes"))
    });
    group.bench_function("ccr_1000", |b| {
        b.iter(|| analysis::ccr(&wf, &platform).expect("analyzes"))
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for class in WorkflowClass::ALL {
        group.bench_function(format!("{class}_500"), |b| {
            b.iter(|| class.generate(500, 3).expect("valid size"))
        });
    }
    group.finish();
}

fn bench_transfers(c: &mut Criterion) {
    let platform = presets::hpc_node();
    c.bench_function("transfer_time_all_pairs", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for from in 0..platform.num_devices() {
                for to in 0..platform.num_devices() {
                    total += platform
                        .transfer_time(1e8, DeviceId(from), DeviceId(to))
                        .expect("routes exist")
                        .as_secs();
                }
            }
            total
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let platform = presets::hpc_node();
    let wf = montage(500, 1).expect("valid size");
    let plan = HeftScheduler::default()
        .schedule(&wf, &platform)
        .expect("schedules");
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.bench_function("execute_plan_montage500", |b| {
        b.iter(|| {
            Engine::new(EngineConfig::default())
                .execute_plan(&platform, &wf, &plan)
                .expect("executes")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_analysis,
    bench_generators,
    bench_transfers,
    bench_engine
);
criterion_main!(benches);
