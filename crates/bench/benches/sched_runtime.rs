//! Experiment F7 — scheduler runtime scalability.
//!
//! Criterion micro-benchmarks of scheduling time vs. DAG size for the
//! main algorithms on the `hpc_node` (8 devices). Random layered DAGs
//! of 100..2000 tasks. HEFT/CPOP/PEFT are near-quadratic in practice
//! (EFT evaluation dominates); Min-Min is cubic-ish in the ready width;
//! lookahead pays an extra device × children factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use helios_platform::presets;
use helios_sched::{
    CpopScheduler, HeftScheduler, LookaheadScheduler, MinMinScheduler, PeftScheduler, Scheduler,
};
use helios_workflow::generators::synthetic::{layered_random, LayeredConfig};
use helios_workflow::Workflow;

fn dag(tasks: usize) -> Workflow {
    let width = (tasks as f64).sqrt().round() as usize;
    let levels = tasks.div_ceil(width);
    let config = LayeredConfig {
        levels,
        width,
        edge_prob: 0.3,
        ..LayeredConfig::default()
    };
    layered_random(&config, 42).expect("valid config")
}

fn bench_schedulers(c: &mut Criterion) {
    let platform = presets::hpc_node();
    let mut group = c.benchmark_group("f7_sched_runtime");
    group.sample_size(10);
    for tasks in [100usize, 300, 1000, 2000] {
        let wf = dag(tasks);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(HeftScheduler::default()),
            Box::new(CpopScheduler::default()),
            Box::new(PeftScheduler::default()),
            Box::new(MinMinScheduler::default()),
        ];
        for s in schedulers {
            group.bench_with_input(
                BenchmarkId::new(s.name().to_owned(), tasks),
                &wf,
                |b, wf| b.iter(|| s.schedule(wf, &platform).expect("schedules")),
            );
        }
        // Lookahead is markedly slower; cap its size to keep runs sane.
        if tasks <= 1000 {
            let s = LookaheadScheduler::default();
            group.bench_with_input(BenchmarkId::new("lookahead", tasks), &wf, |b, wf| {
                b.iter(|| s.schedule(wf, &platform).expect("schedules"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
