//! Experiment T11 — real-time schedulability: acceptance ratio per test
//! across a utilization sweep.
//!
//! 500 random implicit-deadline tasksets (8 tasks, log-uniform periods)
//! per utilization point; columns are the fraction accepted by each
//! test. RTA (exact for fixed priority) dominates the closed-form
//! bounds; EDF accepts everything up to U = 1. A mixed-criticality
//! column reports AMC-rtb acceptance on two-level tasksets with HI
//! budgets inflated 2×.

use helios_bench::{print_series_table, Series};
use helios_rt::{analysis, taskset};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let utils = [0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0];
    let runs = 500u64;

    let mut ll = Series::new("liu-layland");
    let mut hyper = Series::new("hyperbolic");
    let mut rta = Series::new("rta (exact)");
    let mut edf = Series::new("edf");
    let mut amc = Series::new("amc-rtb");

    for &u in &utils {
        let mut counts = [0u32; 5];
        for seed in 0..runs {
            let mut rng = ChaCha8Rng::seed_from_u64(seed * 31 + (u * 1000.0) as u64);
            let ts = taskset::random_taskset(8, u, 10.0, 1000.0, &mut rng)?;
            if analysis::rm_utilization_test(&ts) {
                counts[0] += 1;
            }
            if analysis::hyperbolic_test(&ts) {
                counts[1] += 1;
            }
            if analysis::rta_fixed_priority(&ts)?.is_some() {
                counts[2] += 1;
            }
            if analysis::edf_test(&ts) {
                counts[3] += 1;
            }
            let mc = taskset::random_mc_taskset(8, u * 0.7, 0.5, 2.0, 10.0, 1000.0, &mut rng)?;
            if analysis::amc_rtb_test(&mc) {
                counts[4] += 1;
            }
        }
        let ratio = |c: u32| f64::from(c) / runs as f64;
        ll.push(u, ratio(counts[0]));
        hyper.push(u, ratio(counts[1]));
        rta.push(u, ratio(counts[2]));
        edf.push(u, ratio(counts[3]));
        amc.push(u, ratio(counts[4]));
    }

    println!("acceptance ratio vs total utilization, 8-task sets, 500 sets/point");
    println!("(amc-rtb column: LO-mode utilization = 0.7 x U, HI budgets 2x)");
    print_series_table("U", &[ll, hyper, rta, edf, amc]);
    Ok(())
}
