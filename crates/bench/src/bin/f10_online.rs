//! Experiment F10 — static plans vs. online dispatch under runtime
//! degradation.
//!
//! SIPHT-500 on `hpc_node`. The planner believes the nominal platform;
//! at run time two of the four GPUs are throttled by a sweep factor.
//! Series: static HEFT plan execution, online JIT, online ranked-JIT
//! (both with per-device calibration), 8 seeds each.

use helios_bench::{print_series_table, Agg, Series};
use helios_core::{Engine, EngineConfig, OnlinePolicy, OnlineRunner};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_workflow::generators::sipht;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..8u64;
    let factors = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];

    let mut static_series = Series::new("static heft");
    let mut jit_series = Series::new("online jit");
    let mut ranked_series = Series::new("online ranked");

    for &factor in &factors {
        let mut slow = vec![1.0; platform.num_devices()];
        slow[2] = factor; // gpu0
        slow[3] = factor; // gpu1
        let mut st = Agg::new();
        let mut jit = Agg::new();
        let mut ranked = Agg::new();
        for seed in seeds.clone() {
            let wf = sipht(500, seed)?;
            let config = EngineConfig {
                device_slowdown: Some(slow.clone()),
                seed,
                ..Default::default()
            };
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            st.push(
                Engine::new(config.clone())
                    .execute_plan(&platform, &wf, &plan)?
                    .makespan()
                    .as_secs(),
            );
            jit.push(
                OnlineRunner::new(config.clone(), OnlinePolicy::Jit)
                    .run(&platform, &wf)?
                    .makespan()
                    .as_secs(),
            );
            ranked.push(
                OnlineRunner::new(config, OnlinePolicy::RankedJit)
                    .run(&platform, &wf)?
                    .makespan()
                    .as_secs(),
            );
        }
        static_series.push(factor, st.mean());
        jit_series.push(factor, jit.mean());
        ranked_series.push(factor, ranked.mean());
    }

    println!("mean makespan (s) vs GPU throttle factor (gpu0+gpu1), sipht-500, 8 seeds");
    print_series_table("throttle x", &[static_series, jit_series, ranked_series]);
    Ok(())
}
