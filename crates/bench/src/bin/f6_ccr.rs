//! Experiment F6 — makespan sensitivity to the communication-to-
//! computation ratio.
//!
//! A layered synthetic DAG (10×10) is rescaled to CCR ∈ {0.1 .. 10} on
//! `hpc_node`; six schedulers run at each point (8 seeds). Expected
//! shape: at low CCR the cost-matrix-aware schedulers dominate; as CCR
//! rises communication swamps everything, makespans converge and
//! locality-blind heuristics collapse first.

use helios_bench::{print_series_table, Agg, Series};
use helios_platform::presets;
use helios_sched::{
    CpopScheduler, HeftScheduler, MctScheduler, MinMinScheduler, OlbScheduler, PeftScheduler,
    Scheduler,
};
use helios_workflow::generators::synthetic::{layered_random, scale_edges_to_ccr, LayeredConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(HeftScheduler::default()),
        Box::new(CpopScheduler::default()),
        Box::new(PeftScheduler::default()),
        Box::new(MinMinScheduler::default()),
        Box::new(MctScheduler::default()),
        Box::new(OlbScheduler::default()),
    ];
    let ccrs = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0];
    let seeds = 0..8u64;

    let mut series: Vec<Series> = schedulers
        .iter()
        .map(|s| Series::new(s.name().to_owned()))
        .collect();

    for &ccr in &ccrs {
        let mut aggs: Vec<Agg> = schedulers.iter().map(|_| Agg::new()).collect();
        for seed in seeds.clone() {
            let wf = layered_random(&LayeredConfig::default(), seed)?;
            let wf = scale_edges_to_ccr(&wf, &platform, ccr)?;
            for (i, s) in schedulers.iter().enumerate() {
                let plan = s.schedule(&wf, &platform)?;
                aggs[i].push(plan.makespan().as_secs());
            }
        }
        for (i, agg) in aggs.iter().enumerate() {
            series[i].push(ccr, agg.mean());
        }
    }

    println!("mean makespan (s) vs CCR, layered 10x10 DAG, hpc_node, 8 seeds");
    print_series_table("CCR", &series);
    Ok(())
}
