//! Experiment F3 — normalized makespan (SLR) per scheduler per workflow
//! family.
//!
//! Every scheduler in the lineup schedules every scientific workflow
//! family (n ≈ 300, 10 seeds) on the `hpc_node`; cells are mean SLR
//! (lower is better, 1.0 is the heterogeneous critical-path bound).

use helios_bench::Agg;
use helios_platform::presets;
use helios_sched::{all_schedulers, metrics};
use helios_workflow::generators::WorkflowClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..10u64;
    let schedulers = all_schedulers();

    print!("{:>12}", "scheduler");
    for class in WorkflowClass::ALL {
        print!(" {:>12}", class.as_str());
    }
    println!(" {:>12}", "mean");

    for scheduler in &schedulers {
        print!("{:>12}", scheduler.name());
        let mut overall = Agg::new();
        for class in WorkflowClass::ALL {
            let mut agg = Agg::new();
            for seed in seeds.clone() {
                let wf = class.generate(300, seed)?;
                let plan = scheduler.schedule(&wf, &platform)?;
                let slr = metrics::slr(&plan, &wf, &platform)?;
                agg.push(slr);
                overall.push(slr);
            }
            print!(" {:>12.3}", agg.mean());
        }
        println!(" {:>12.3}", overall.mean());
    }
    Ok(())
}
