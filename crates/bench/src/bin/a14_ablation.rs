//! Experiment A14 — ablations of the engine's and schedulers' design
//! choices (DESIGN.md §4 calls these out explicitly).
//!
//! Each row flips exactly one mechanism on the same workload
//! (CyberShake-300 on `hpc_node`, 6 seeds) and reports the makespan
//! impact:
//!
//! * HEFT gap-insertion vs. append-only placement,
//! * data-product caching on vs. off (under link contention),
//! * link contention modeled vs. ignored,
//! * simulated-annealing refinement vs. plain HEFT,
//! * online per-device calibration payoff under GPU throttling
//!   (calibrated JIT vs. the static plan on the same degraded node).

use helios_bench::{print_header, Agg};
use helios_core::{Engine, EngineConfig, OnlinePolicy, OnlineRunner};
use helios_platform::presets;
use helios_sched::{AnnealingScheduler, HeftScheduler, Scheduler};
use helios_workflow::generators::cybershake;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..6u64;
    print_header(&["ablation", "baseline (s)", "variant (s)", "delta %"]);

    let report = |name: &str, base: &Agg, var: &Agg| {
        println!(
            "{name:>16}{:>16.4}{:>16.4}{:>16.2}",
            base.mean(),
            var.mean(),
            (var.mean() / base.mean() - 1.0) * 100.0
        );
    };

    // 1. Insertion policy.
    {
        let mut with = Agg::new();
        let mut without = Agg::new();
        for seed in seeds.clone() {
            let wf = cybershake(300, seed)?;
            with.push(
                HeftScheduler::default()
                    .schedule(&wf, &platform)?
                    .makespan()
                    .as_secs(),
            );
            without.push(
                HeftScheduler { no_insertion: true }
                    .schedule(&wf, &platform)?
                    .makespan()
                    .as_secs(),
            );
        }
        report("no-insertion", &with, &without);
    }

    // 2. Data caching (under contention, where duplicate transfers bite).
    {
        let mut off = Agg::new();
        let mut on = Agg::new();
        for seed in seeds.clone() {
            let wf = cybershake(300, seed)?;
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            let mut cfg = EngineConfig {
                link_contention: true,
                ..Default::default()
            };
            off.push(
                Engine::new(cfg.clone())
                    .execute_plan(&platform, &wf, &plan)?
                    .makespan()
                    .as_secs(),
            );
            cfg.data_caching = true;
            on.push(
                Engine::new(cfg)
                    .execute_plan(&platform, &wf, &plan)?
                    .makespan()
                    .as_secs(),
            );
        }
        report("data-caching", &off, &on);
    }

    // 3. Link contention modeling.
    {
        let mut free = Agg::new();
        let mut contended = Agg::new();
        for seed in seeds.clone() {
            let wf = cybershake(300, seed)?;
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            free.push(
                Engine::new(EngineConfig::default())
                    .execute_plan(&platform, &wf, &plan)?
                    .makespan()
                    .as_secs(),
            );
            let cfg = EngineConfig {
                link_contention: true,
                ..Default::default()
            };
            contended.push(
                Engine::new(cfg)
                    .execute_plan(&platform, &wf, &plan)?
                    .makespan()
                    .as_secs(),
            );
        }
        report("contention", &free, &contended);
    }

    // 4. Annealing refinement over HEFT (plans only).
    {
        let mut heft = Agg::new();
        let mut sa = Agg::new();
        for seed in seeds.clone() {
            let wf = cybershake(300, seed)?;
            heft.push(
                HeftScheduler::default()
                    .schedule(&wf, &platform)?
                    .makespan()
                    .as_secs(),
            );
            sa.push(
                AnnealingScheduler::new(1000, seed)
                    .schedule(&wf, &platform)?
                    .makespan()
                    .as_secs(),
            );
        }
        report("annealing", &heft, &sa);
    }

    // 5. Online calibration payoff under 4x GPU throttling.
    {
        let mut slow = vec![1.0; platform.num_devices()];
        slow[2] = 4.0;
        slow[3] = 4.0;
        let mut static_run = Agg::new();
        let mut online = Agg::new();
        for seed in seeds.clone() {
            let wf = cybershake(300, seed)?;
            let cfg = EngineConfig {
                device_slowdown: Some(slow.clone()),
                ..Default::default()
            };
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            static_run.push(
                Engine::new(cfg.clone())
                    .execute_plan(&platform, &wf, &plan)?
                    .makespan()
                    .as_secs(),
            );
            online.push(
                OnlineRunner::new(cfg, OnlinePolicy::RankedJit)
                    .run(&platform, &wf)?
                    .makespan()
                    .as_secs(),
            );
        }
        report("calib@4x-gpu", &static_run, &online);
    }
    Ok(())
}
