//! Experiment F4 — speedup vs. accelerator count.
//!
//! Montage-500 scheduled with HEFT on `hpc_node` variants with 0..8
//! GPUs; speedup is relative to the best single device of the 0-GPU
//! configuration. Saturation appears once the workflow's width or the
//! PCIe links bottleneck.

use helios_bench::{print_series_table, Agg, Series};
use helios_core::{Engine, EngineConfig};
use helios_platform::presets;
use helios_sched::HeftScheduler;
use helios_workflow::generators::montage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds = 0..8u64;
    let mut makespan_series = Series::new("makespan (s)");
    let mut speedup_series = Series::new("speedup vs 0-GPU");
    let mut utilization_series = Series::new("mean GPU util");

    // Baseline: the accelerator-free node.
    let mut base = Agg::new();
    for seed in seeds.clone() {
        let wf = montage(500, seed)?;
        let platform = presets::hpc_node_with_gpus(0);
        let report =
            Engine::new(EngineConfig::default()).run(&platform, &wf, &HeftScheduler::default())?;
        base.push(report.makespan().as_secs());
    }

    for gpus in 0..=8usize {
        let platform = presets::hpc_node_with_gpus(gpus);
        let mut makespan = Agg::new();
        let mut gpu_util = Agg::new();
        for seed in seeds.clone() {
            let wf = montage(500, seed)?;
            let report = Engine::new(EngineConfig::default()).run(
                &platform,
                &wf,
                &HeftScheduler::default(),
            )?;
            makespan.push(report.makespan().as_secs());
            let util = report.schedule().utilization(&platform);
            for (i, d) in platform.devices().iter().enumerate() {
                if d.kind() == helios_platform::DeviceKind::Gpu {
                    gpu_util.push(util[i]);
                }
            }
        }
        makespan_series.push(gpus as f64, makespan.mean());
        speedup_series.push(gpus as f64, base.mean() / makespan.mean());
        utilization_series.push(gpus as f64, if gpus == 0 { 0.0 } else { gpu_util.mean() });
    }

    print_series_table(
        "GPUs",
        &[makespan_series, speedup_series, utilization_series],
    );
    Ok(())
}
