//! Experiment F9 — DVFS slack reclamation: energy saved vs. deadline
//! slack.
//!
//! Epigenomics-500 planned with HEFT on `hpc_node`; deadlines from 1.0×
//! to 2.0× the plan makespan; ALAP slack reclamation stretches
//! non-critical tasks onto lower DVFS states. Savings grow with slack
//! and saturate once (nearly) every task sits at the lowest state.

use helios_bench::{print_series_table, Agg, Series};
use helios_energy::{account, reclaim_slack};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_sim::SimTime;
use helios_workflow::generators::epigenomics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..8u64;
    let slacks = [1.0, 1.1, 1.2, 1.4, 1.6, 1.8, 2.0, 3.0];

    let mut active_saved = Series::new("active saved %");
    let mut total_saved = Series::new("total saved %");
    let mut at_min_level = Series::new("tasks at Pmin %");

    for &slack in &slacks {
        let mut active = Agg::new();
        let mut total = Agg::new();
        let mut at_min = Agg::new();
        for seed in seeds.clone() {
            let wf = epigenomics(500, seed)?;
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            let before = account(&plan, &wf, &platform, false)?;
            let deadline = SimTime::ZERO + plan.makespan() * slack;
            let relaxed = reclaim_slack(&plan, &wf, &platform, deadline)?;
            let after = account(&relaxed, &wf, &platform, false)?;
            active.push((1.0 - after.active_j / before.active_j) * 100.0);
            total.push((1.0 - after.total_j() / before.total_j()) * 100.0);
            let min_count = relaxed
                .placements()
                .iter()
                .filter(|p| p.level.0 == 0)
                .count();
            at_min.push(min_count as f64 / relaxed.placements().len() as f64 * 100.0);
        }
        active_saved.push(slack, active.mean());
        total_saved.push(slack, total.mean());
        at_min_level.push(slack, at_min.mean());
    }

    println!("energy saved by ALAP DVFS slack reclamation, epigenomics-500, 8 seeds");
    print_series_table("deadline x", &[active_saved, total_saved, at_min_level]);
    Ok(())
}
