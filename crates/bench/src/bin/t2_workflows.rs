//! Experiment T2 — workflow suite characteristics.
//!
//! Structural and platform-relative statistics of the five scientific
//! workflow families at four sizes, on the reference `hpc_node`.

use helios_bench::print_header;
use helios_platform::presets;
use helios_workflow::analysis::WorkflowStats;
use helios_workflow::generators::WorkflowClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    print_header(&[
        "workflow", "tasks", "edges", "depth", "width", "Gflop", "GB moved", "CCR", "CP (s)",
    ]);
    for class in WorkflowClass::ALL {
        for n in [50, 100, 500, 1000] {
            let wf = class.generate(n, 1)?;
            let s = WorkflowStats::compute(&wf, &platform)?;
            println!(
                "{:>16}{:>16}{:>16}{:>16}{:>16}{:>16.0}{:>16.2}{:>16.3}{:>16.4}",
                format!("{class}-{n}"),
                s.tasks,
                s.edges,
                s.depth,
                s.width,
                s.total_gflop,
                s.total_bytes / 1e9,
                s.ccr,
                s.cp_seconds
            );
        }
    }
    Ok(())
}
