//! The pinned perf trajectory: emits `BENCH_<PR>.json` with the four
//! series every PR must keep honest (ROADMAP item 2).
//!
//! * `paper_grid_cells_per_sec` — grid cells executed per second,
//!   sweeping `examples/specs/paper_grid.json` (5 families × 4
//!   platforms × 12 schedulers × 5 seeds = 1200 cells of 100 tasks,
//!   link contention + data caching on) through the sequential
//!   `SweepDriver`. This is the end-to-end number: generation,
//!   planning and the exec-core step loop together.
//! * `paper_grid_journal_cells_per_sec` — the same grid driven through
//!   the write-ahead cell journal (`SweepDriver::run_journal`), so the
//!   durability tax — two fsync'd appends per cell — is a pinned number
//!   next to the journal-free baseline instead of folklore.
//! * `merge_rows_per_sec` — shard-merge throughput over the columnar
//!   cell store: a 100k-row synthetic sweep split into 4 shard
//!   segments, read back and recombined by `merge_shards`. The JSON
//!   path (4 pretty-printed `ShardReport` files through serde) is
//!   timed next to it, so the store-vs-JSON gap is a pinned number.
//! * `synthetic_dag_steps_per_sec` — simulated events processed per
//!   second executing a 10⁵-task layered DAG through
//!   `Engine::execute_plan` (one Finish per task, one Arrival per
//!   edge), planning excluded. This isolates the `exec::drive` hot
//!   path the arena/batching work targets.
//!
//! Usage: `perf_trajectory [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks both series (a 1/40 shard of the grid, one
//! iteration of a 10⁴-task DAG) so CI can verify the harness and the
//! JSON shape in seconds; committed trajectory files must come from a
//! full run. The JSON is stable-keyed so `BENCH_*.json` files diff
//! cleanly across PRs.

use std::time::Instant;

use helios_core::campaign::{CampaignSpec, ShardSpec, SweepDriver};
use helios_core::{Engine, EngineConfig};
use helios_platform::presets;
use helios_sched::{RoundRobinScheduler, Scheduler};
use helios_workflow::generators::synthetic::{layered_random, LayeredConfig};

/// The PR number this trajectory file belongs to.
const PR: u32 = 10;

struct SeriesOut {
    name: &'static str,
    unit: &'static str,
    value: f64,
    detail: Vec<(&'static str, f64)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{PR}.json"));
    if let Err(e) = run(smoke, &out_path) {
        eprintln!("perf_trajectory failed: {e}");
        std::process::exit(1);
    }
}

fn run(smoke: bool, out_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let grid = bench_paper_grid(smoke)?;
    let journal = bench_paper_grid_journal(smoke)?;
    let merge = bench_merge_rows(smoke)?;
    let dag = bench_synthetic_dag(smoke)?;
    let json = render(smoke, &[grid, journal, merge, dag]);
    std::fs::write(out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

/// Cells/sec sweeping the committed paper grid spec (sequential, so the
/// number measures the exec core and not the `--jobs` fan-out).
fn bench_paper_grid(smoke: bool) -> Result<SeriesOut, Box<dyn std::error::Error>> {
    let spec_path = spec_path("examples/specs/paper_grid.json");
    let spec = CampaignSpec::from_json(&std::fs::read_to_string(&spec_path)?)?;
    let shard = if smoke {
        // 30 of 1200 cells: enough to touch every family and platform.
        ShardSpec::new(1, 40)?
    } else {
        ShardSpec::full()
    };
    let driver = SweepDriver::new(1);
    let start = Instant::now();
    let report = driver.run_shard(&spec, shard)?;
    let wall = start.elapsed().as_secs_f64();
    let cells = report.cells.len() as f64;
    Ok(SeriesOut {
        name: "paper_grid_cells_per_sec",
        unit: "cells/sec",
        value: cells / wall,
        detail: vec![("cells", cells), ("wall_secs", wall)],
    })
}

/// Cells/sec for the same grid slice through the write-ahead journal:
/// identical execution plus two fsync'd record appends per cell. The
/// gap between this and `paper_grid_cells_per_sec` is the durability
/// overhead.
fn bench_paper_grid_journal(smoke: bool) -> Result<SeriesOut, Box<dyn std::error::Error>> {
    use helios_core::JournalOptions;

    let spec_path = spec_path("examples/specs/paper_grid.json");
    let spec = CampaignSpec::from_json(&std::fs::read_to_string(&spec_path)?)?;
    let shard = if smoke {
        ShardSpec::new(1, 40)?
    } else {
        ShardSpec::full()
    };
    let journal_path = std::env::temp_dir().join(format!(
        "helios-bench-journal-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal_path);
    let driver = SweepDriver::new(1);
    let start = Instant::now();
    let run = driver.run_journal(&spec, shard, &journal_path, &JournalOptions::default())?;
    let wall = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&journal_path);
    let cells = run.report.cells.len() as f64;
    Ok(SeriesOut {
        name: "paper_grid_journal_cells_per_sec",
        unit: "cells/sec",
        value: cells / wall,
        detail: vec![("cells", cells), ("wall_secs", wall)],
    })
}

/// Merge rows/sec over the columnar store: a synthetic sweep split into
/// 4 shard segment files, read back (salvage + checksum verification)
/// and recombined by `merge_shards`. The same shards as pretty-printed
/// JSON `ShardReport`s are timed next to it so the committed file pins
/// both sides of the store-vs-JSON comparison.
fn bench_merge_rows(smoke: bool) -> Result<SeriesOut, Box<dyn std::error::Error>> {
    use helios_core::store::{schema_names, StoreHeader, StoreWriter};
    use helios_core::{merge_shards, read_store, CellResult, ShardReport};

    let rows: usize = if smoke { 4_000 } else { 100_000 };
    let shard_count = 4usize;
    let dir = std::env::temp_dir().join(format!("helios-bench-merge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // A deterministic synthetic population: varied groups, ~1/7 lost
    // cells, repeating-binary float fractions.
    let cell = |i: usize| -> CellResult {
        let completed = i % 7 != 3;
        CellResult {
            cell: i,
            family: ["montage", "ligo", "sipht", "cybershake"][i % 4].to_owned(),
            platform: ["workstation", "hpc_node"][(i / 4) % 2].to_owned(),
            scheduler: ["heft", "olb", "mct"][(i / 8) % 3].to_owned(),
            seed: i as u64,
            makespan_secs: if completed { i as f64 / 7.0 } else { 0.0 },
            slr: i as f64 / 3.0,
            energy_j: i as f64 * 1.5,
            transfers: i % 100,
            transfer_bytes: i as f64 * 3e4,
            failures: (i % 5) as u32,
            retries: (i % 3) as u32,
            completed,
            wasted_work_secs: 0.0,
            recovery_overhead_secs: 0.0,
            makespan_degradation: 0.0,
            reroutes: 0,
            partition_downtime_secs: 0.0,
            rematerialized_tasks: 0,
            rematerialized_bytes: 0.0,
            incomplete_reason: (!completed).then(|| "retries_exhausted".to_owned()),
            capacity_secs: 0.0,
            preemptions: 0,
            drain_migrated_tasks: 0,
            join_utilization: 0.0,
        }
    };

    let mut store_bytes = 0u64;
    let mut json_bytes = 0u64;
    for s in 1..=shard_count {
        let shard_cells: Vec<CellResult> = (0..rows)
            .filter(|i| i % shard_count == s - 1)
            .map(cell)
            .collect();
        let header = StoreHeader {
            spec_name: "merge-bench".into(),
            spec_digest: "synthetic".into(),
            total_cells: rows,
            shard_index: s,
            shard_count,
            columns: schema_names(),
        };
        let path = dir.join(format!("s{s}.store"));
        let mut writer = StoreWriter::create(&path, &header)?;
        for c in &shard_cells {
            writer.append_cell(c)?;
        }
        writer.flush()?;
        store_bytes += std::fs::metadata(&path)?.len();
        let report = ShardReport {
            spec_name: "merge-bench".into(),
            spec_digest: "synthetic".into(),
            total_cells: rows,
            shard_index: s,
            shard_count,
            cells: shard_cells,
        };
        let jpath = dir.join(format!("s{s}.json"));
        std::fs::write(&jpath, serde_json::to_string_pretty(&report)?)?;
        json_bytes += std::fs::metadata(&jpath)?.len();
    }

    let start = Instant::now();
    let mut store_shards = Vec::with_capacity(shard_count);
    for s in 1..=shard_count {
        store_shards.push(read_store(&dir.join(format!("s{s}.store")))?.to_shard_report());
    }
    let store_merged = merge_shards(&store_shards)?;
    let store_wall = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut json_shards = Vec::with_capacity(shard_count);
    for s in 1..=shard_count {
        let text = std::fs::read_to_string(dir.join(format!("s{s}.json")))?;
        json_shards.push(serde_json::from_str::<ShardReport>(&text)?);
    }
    let json_merged = merge_shards(&json_shards)?;
    let json_wall = start.elapsed().as_secs_f64();

    assert_eq!(
        store_merged, json_merged,
        "store and JSON merge paths must agree"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(SeriesOut {
        name: "merge_rows_per_sec",
        unit: "rows/sec",
        value: rows as f64 / store_wall,
        detail: vec![
            ("rows", rows as f64),
            ("store_wall_secs", store_wall),
            ("json_wall_secs", json_wall),
            ("store_bytes", store_bytes as f64),
            ("json_bytes", json_bytes as f64),
        ],
    })
}

/// Steps/sec of `exec::drive` on a huge synthetic DAG: the engine
/// processes exactly one Finish event per task and one Arrival event
/// per edge, so events/wall-clock is the step-loop throughput.
fn bench_synthetic_dag(smoke: bool) -> Result<SeriesOut, Box<dyn std::error::Error>> {
    let (levels, width, iters) = if smoke {
        (50, 200, 1) // 10^4 tasks: shape check only.
    } else {
        (250, 400, 3) // 10^5 tasks, best-of-3.
    };
    let wf = layered_random(
        &LayeredConfig {
            levels,
            width,
            edge_prob: 0.004,
            // Small working sets so every task fits every device: the
            // series measures the step loop, not feasibility pruning.
            mean_gflop: 1.0,
            mean_bytes: 1e6,
            ..LayeredConfig::default()
        },
        42,
    )?;
    let platform = presets::hpc_node();
    // Round-robin keeps planning O(n): the series measures execution.
    let plan = RoundRobinScheduler::default().schedule(&wf, &platform)?;
    let engine = Engine::new(EngineConfig {
        link_contention: true,
        data_caching: true,
        ..Default::default()
    });
    let events = (wf.num_tasks() + wf.num_edges()) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let report = engine.execute_plan(&platform, &wf, &plan)?;
        let wall = start.elapsed().as_secs_f64();
        assert!(report.makespan().as_secs() > 0.0);
        best = best.min(wall);
    }
    Ok(SeriesOut {
        name: "synthetic_dag_steps_per_sec",
        unit: "steps/sec",
        value: events / best,
        detail: vec![
            ("tasks", wf.num_tasks() as f64),
            ("events", events),
            ("wall_secs", best),
        ],
    })
}

/// Locates a repo-relative path from either the repo root or a crate dir.
fn spec_path(rel: &str) -> std::path::PathBuf {
    let direct = std::path::PathBuf::from(rel);
    if direct.exists() {
        return direct;
    }
    // Fall back to CARGO_MANIFEST_DIR/../.. (crates/bench → repo root).
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p
}

/// Hand-rendered stable-keyed JSON (two decimal places on rates keeps
/// run-to-run jitter out of diffs while pinning the magnitude).
fn render(smoke: bool, series: &[SeriesOut]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"pr\": {PR},\n"));
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str("  \"series\": [\n");
    for (i, sr) in series.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", sr.name));
        s.push_str(&format!("      \"unit\": \"{}\",\n", sr.unit));
        s.push_str(&format!("      \"value\": {:.2},\n", sr.value));
        for (j, (k, v)) in sr.detail.iter().enumerate() {
            let comma = if j + 1 == sr.detail.len() { "" } else { "," };
            // Counts render as integers, timings keep microsecond detail.
            if v.fract() == 0.0 && *v < 1e15 {
                s.push_str(&format!("      \"{k}\": {}{comma}\n", *v as u64));
            } else {
                s.push_str(&format!("      \"{k}\": {v:.6}{comma}\n"));
            }
        }
        s.push_str(if i + 1 == series.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}
