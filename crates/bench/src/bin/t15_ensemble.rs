//! Experiment T15 — ensemble arbitration policies.
//!
//! A campaign of four workflows (two CyberShake, one LIGO, one Montage)
//! arrives over 0.3 s on the `hpc_node`; each arbitration policy runs
//! the same campaign (6 seeds). Rows report mean turnaround of the
//! high-priority member, mean turnaround across members, the spread
//! between best- and worst-served member, and overall makespan.
//!
//! The 18 (policy, seed) cells are independent simulations, so they run
//! through [`CampaignEngine`]: pass `--jobs N` to use N worker threads
//! (default 1; 0 = one per hardware thread). The table is aggregated in
//! cell order and is identical for every `--jobs` value.
//!
//! Alternatively, `--spec grid.json` runs a declarative
//! [`CampaignSpec`] sweep instead of the built-in policy table
//! (optionally one `--shard K/N` of it, written to `--out FILE`), so
//! the same harness drives file-defined campaign grids.

use helios_bench::{print_header, Agg};
use helios_core::{
    CampaignEngine, CampaignSpec, EngineConfig, EnsembleMember, EnsemblePolicy, EnsembleRunner,
    ShardSpec, SweepDriver,
};
use helios_platform::presets;
use helios_sim::SimTime;
use helios_workflow::generators::{cybershake, ligo_inspiral, montage};

const POLICIES: [EnsemblePolicy; 3] = [
    EnsemblePolicy::Fifo,
    EnsemblePolicy::Priority,
    EnsemblePolicy::FairShare,
];
const SEEDS: u64 = 6;

#[derive(Default)]
struct CliArgs {
    jobs: usize,
    spec: Option<String>,
    shard: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Result<CliArgs, String> {
    let mut args = CliArgs {
        jobs: 1,
        ..CliArgs::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--jobs" => {
                let v = value("--jobs")?;
                args.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs {v:?} is not a number"))?;
            }
            "--spec" => args.spec = Some(value("--spec")?),
            "--shard" => args.shard = Some(value("--shard")?),
            "--out" => args.out = Some(value("--out")?),
            other => {
                return Err(format!(
                    "usage: t15_ensemble [--jobs N] [--spec FILE [--shard K/N] [--out FILE]], \
                     got {other:?}"
                ))
            }
        }
    }
    if args.spec.is_none() && (args.shard.is_some() || args.out.is_some()) {
        return Err("--shard/--out require --spec".into());
    }
    Ok(args)
}

/// Runs a declarative sweep spec instead of the built-in policy table.
fn run_spec(args: &CliArgs) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.spec.as_deref().expect("caller checked --spec");
    let spec = CampaignSpec::from_json(&std::fs::read_to_string(path)?)?;
    let driver = SweepDriver::new(args.jobs);
    if let Some(shard) = &args.shard {
        let shard = ShardSpec::parse(shard)?;
        let out = args
            .out
            .as_deref()
            .ok_or("--shard produces a partial result; --out FILE is required")?;
        let report = driver.run_shard(&spec, shard)?;
        std::fs::write(out, serde_json::to_string_pretty(&report)?)?;
        println!(
            "shard {shard} of {:?}: {} of {} cells -> {out}",
            report.spec_name,
            report.cells.len(),
            report.total_cells
        );
        return Ok(());
    }
    let report = driver.run(&spec)?;
    print_header(&[
        "family",
        "platform",
        "scheduler",
        "cells",
        "makespan (s)",
        "SLR",
        "energy (J)",
    ]);
    for row in &report.summary {
        let dash = |v: Option<f64>, prec: usize| match v {
            Some(v) => format!("{v:.prec$}"),
            None => "-".to_owned(),
        };
        println!(
            "{:>16}{:>16}{:>16}{:>16}{:>16}{:>16}{:>16}",
            row.family,
            row.platform,
            row.scheduler,
            row.cells,
            dash(row.mean_makespan_secs, 4),
            dash(row.mean_slr, 3),
            dash(row.mean_energy_j, 1)
        );
    }
    if let Some(out) = &args.out {
        std::fs::write(out, serde_json::to_string_pretty(&report)?)?;
        println!("wrote {out}");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    if args.spec.is_some() {
        return run_spec(&args);
    }
    let jobs = args.jobs;
    let platform = presets::hpc_node();
    print_header(&[
        "policy",
        "VIP t/a (s)",
        "mean t/a (s)",
        "spread (s)",
        "makespan (s)",
    ]);

    // One cell per (policy, seed) pair, in row-major order so the
    // aggregation below reads each policy's seeds contiguously.
    let cells: Vec<(EnsemblePolicy, u64)> = POLICIES
        .iter()
        .flat_map(|&p| (0..SEEDS).map(move |s| (p, s)))
        .collect();
    let reports = CampaignEngine::new(jobs).run(&cells, |_, &(policy, seed)| {
        let members = [
            EnsembleMember {
                workflow: cybershake(150, seed)?,
                arrival: SimTime::ZERO,
                priority: 1.0,
            },
            EnsembleMember {
                workflow: ligo_inspiral(150, seed + 100)?,
                arrival: SimTime::from_secs(0.1),
                priority: 10.0, // the VIP
            },
            EnsembleMember {
                workflow: montage(150, seed + 200)?,
                arrival: SimTime::from_secs(0.2),
                priority: 1.0,
            },
            EnsembleMember {
                workflow: cybershake(150, seed + 300)?,
                arrival: SimTime::from_secs(0.3),
                priority: 1.0,
            },
        ];
        EnsembleRunner::new(EngineConfig::default(), policy).run(&platform, &members)
    })?;

    for (p, policy) in POLICIES.iter().enumerate() {
        let mut vip = Agg::new();
        let mut mean = Agg::new();
        let mut spread = Agg::new();
        let mut makespan = Agg::new();
        for report in &reports[p * SEEDS as usize..(p + 1) * SEEDS as usize] {
            vip.push(report.members[1].turnaround.as_secs());
            mean.push(report.mean_turnaround.as_secs());
            let tas: Vec<f64> = report
                .members
                .iter()
                .map(|m| m.turnaround.as_secs())
                .collect();
            let max = tas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = tas.iter().copied().fold(f64::INFINITY, f64::min);
            spread.push(max - min);
            makespan.push(report.makespan.as_secs());
        }
        println!(
            "{:>16}{:>16.4}{:>16.4}{:>16.4}{:>16.4}",
            policy.as_str(),
            vip.mean(),
            mean.mean(),
            spread.mean(),
            makespan.mean()
        );
    }
    Ok(())
}
