//! Experiment T15 — ensemble arbitration policies.
//!
//! A campaign of four workflows (two CyberShake, one LIGO, one Montage)
//! arrives over 0.3 s on the `hpc_node`; each arbitration policy runs
//! the same campaign (6 seeds). Rows report mean turnaround of the
//! high-priority member, mean turnaround across members, the spread
//! between best- and worst-served member, and overall makespan.
//!
//! The 18 (policy, seed) cells are independent simulations, so they run
//! through [`CampaignEngine`]: pass `--jobs N` to use N worker threads
//! (default 1; 0 = one per hardware thread). The table is aggregated in
//! cell order and is identical for every `--jobs` value.

use helios_bench::{print_header, Agg};
use helios_core::{CampaignEngine, EngineConfig, EnsembleMember, EnsemblePolicy, EnsembleRunner};
use helios_platform::presets;
use helios_sim::SimTime;
use helios_workflow::generators::{cybershake, ligo_inspiral, montage};

const POLICIES: [EnsemblePolicy; 3] = [
    EnsemblePolicy::Fifo,
    EnsemblePolicy::Priority,
    EnsemblePolicy::FairShare,
];
const SEEDS: u64 = 6;

fn jobs_from_args() -> Result<usize, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => Ok(1),
        [flag, n] if flag == "--jobs" => n
            .parse()
            .map_err(|_| format!("--jobs {n:?} is not a number")),
        other => Err(format!("usage: t15_ensemble [--jobs N], got {other:?}")),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_from_args()?;
    let platform = presets::hpc_node();
    print_header(&[
        "policy",
        "VIP t/a (s)",
        "mean t/a (s)",
        "spread (s)",
        "makespan (s)",
    ]);

    // One cell per (policy, seed) pair, in row-major order so the
    // aggregation below reads each policy's seeds contiguously.
    let cells: Vec<(EnsemblePolicy, u64)> = POLICIES
        .iter()
        .flat_map(|&p| (0..SEEDS).map(move |s| (p, s)))
        .collect();
    let reports = CampaignEngine::new(jobs).run(&cells, |_, &(policy, seed)| {
        let members = [
            EnsembleMember {
                workflow: cybershake(150, seed)?,
                arrival: SimTime::ZERO,
                priority: 1.0,
            },
            EnsembleMember {
                workflow: ligo_inspiral(150, seed + 100)?,
                arrival: SimTime::from_secs(0.1),
                priority: 10.0, // the VIP
            },
            EnsembleMember {
                workflow: montage(150, seed + 200)?,
                arrival: SimTime::from_secs(0.2),
                priority: 1.0,
            },
            EnsembleMember {
                workflow: cybershake(150, seed + 300)?,
                arrival: SimTime::from_secs(0.3),
                priority: 1.0,
            },
        ];
        EnsembleRunner::new(EngineConfig::default(), policy).run(&platform, &members)
    })?;

    for (p, policy) in POLICIES.iter().enumerate() {
        let mut vip = Agg::new();
        let mut mean = Agg::new();
        let mut spread = Agg::new();
        let mut makespan = Agg::new();
        for report in &reports[p * SEEDS as usize..(p + 1) * SEEDS as usize] {
            vip.push(report.members[1].turnaround.as_secs());
            mean.push(report.mean_turnaround.as_secs());
            let tas: Vec<f64> = report
                .members
                .iter()
                .map(|m| m.turnaround.as_secs())
                .collect();
            let max = tas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = tas.iter().copied().fold(f64::INFINITY, f64::min);
            spread.push(max - min);
            makespan.push(report.makespan.as_secs());
        }
        println!(
            "{:>16}{:>16.4}{:>16.4}{:>16.4}{:>16.4}",
            policy.as_str(),
            vip.mean(),
            mean.mean(),
            spread.mean(),
            makespan.mean()
        );
    }
    Ok(())
}
