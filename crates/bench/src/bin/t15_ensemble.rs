//! Experiment T15 — ensemble arbitration policies.
//!
//! A campaign of four workflows (two CyberShake, one LIGO, one Montage)
//! arrives over 0.3 s on the `hpc_node`; each arbitration policy runs
//! the same campaign (6 seeds). Rows report mean turnaround of the
//! high-priority member, mean turnaround across members, the spread
//! between best- and worst-served member, and overall makespan.

use helios_bench::{print_header, Agg};
use helios_core::{EngineConfig, EnsembleMember, EnsemblePolicy, EnsembleRunner};
use helios_platform::presets;
use helios_sim::SimTime;
use helios_workflow::generators::{cybershake, ligo_inspiral, montage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..6u64;
    print_header(&[
        "policy", "VIP t/a (s)", "mean t/a (s)", "spread (s)", "makespan (s)",
    ]);

    for policy in [
        EnsemblePolicy::Fifo,
        EnsemblePolicy::Priority,
        EnsemblePolicy::FairShare,
    ] {
        let mut vip = Agg::new();
        let mut mean = Agg::new();
        let mut spread = Agg::new();
        let mut makespan = Agg::new();
        for seed in seeds.clone() {
            let members = [
                EnsembleMember {
                    workflow: cybershake(150, seed)?,
                    arrival: SimTime::ZERO,
                    priority: 1.0,
                },
                EnsembleMember {
                    workflow: ligo_inspiral(150, seed + 100)?,
                    arrival: SimTime::from_secs(0.1),
                    priority: 10.0, // the VIP
                },
                EnsembleMember {
                    workflow: montage(150, seed + 200)?,
                    arrival: SimTime::from_secs(0.2),
                    priority: 1.0,
                },
                EnsembleMember {
                    workflow: cybershake(150, seed + 300)?,
                    arrival: SimTime::from_secs(0.3),
                    priority: 1.0,
                },
            ];
            let report = EnsembleRunner::new(EngineConfig::default(), policy)
                .run(&platform, &members)?;
            vip.push(report.members[1].turnaround.as_secs());
            mean.push(report.mean_turnaround.as_secs());
            let tas: Vec<f64> = report
                .members
                .iter()
                .map(|m| m.turnaround.as_secs())
                .collect();
            let max = tas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = tas.iter().copied().fold(f64::INFINITY, f64::min);
            spread.push(max - min);
            makespan.push(report.makespan.as_secs());
        }
        println!(
            "{:>16}{:>16.4}{:>16.4}{:>16.4}{:>16.4}",
            policy.as_str(),
            vip.mean(),
            mean.mean(),
            spread.mean(),
            makespan.mean()
        );
    }
    Ok(())
}
