//! Experiment F13 — interconnect bandwidth sensitivity.
//!
//! Montage-500 with HEFT on `hpc_node` variants whose every link
//! bandwidth is scaled ×{0.25 .. 4} (a PCIe-generation sweep). Reported
//! per point: makespan, realized CCR, and the fraction of schedule time
//! spent on transfers — with link contention enabled, so shared-link
//! serialization shows up.

use helios_bench::{print_series_table, Agg, Series};
use helios_core::{Engine, EngineConfig};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_workflow::{analysis, generators::montage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = presets::hpc_node();
    let seeds = 0..8u64;
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0];

    let mut makespan_series = Series::new("makespan (s)");
    let mut ccr_series = Series::new("ccr");
    let mut transfer_series = Series::new("xfer time (s)");

    for &f in &factors {
        let platform = base.with_interconnect(base.interconnect().scaled_bandwidth(f)?);
        let mut makespan = Agg::new();
        let mut ccr = Agg::new();
        let mut xfer = Agg::new();
        for seed in seeds.clone() {
            let wf = montage(500, seed)?;
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            let config = EngineConfig {
                link_contention: true,
                ..Default::default()
            };
            let report = Engine::new(config).execute_plan(&platform, &wf, &plan)?;
            makespan.push(report.makespan().as_secs());
            ccr.push(analysis::ccr(&wf, &platform)?);
            xfer.push(report.transfers().total_secs);
        }
        makespan_series.push(f, makespan.mean());
        ccr_series.push(f, ccr.mean());
        transfer_series.push(f, xfer.mean());
    }

    println!("bandwidth sensitivity, montage-500, HEFT, link contention on, 8 seeds");
    print_series_table("bw factor", &[makespan_series, ccr_series, transfer_series]);
    Ok(())
}
