//! Experiment T1 — platform configurations.
//!
//! Prints the device inventory of every preset platform: kind mix, peak
//! throughput, memory bandwidth, power envelope and link inventory.

use helios_platform::presets;

fn main() {
    for platform in presets::all() {
        println!("== {} ==", platform.name());
        println!(
            "{:>12} {:>6} {:>12} {:>10} {:>10} {:>10} {:>8}",
            "device", "kind", "GFLOP/s", "GB/s", "mem GB", "P_max W", "slots"
        );
        for d in platform.devices() {
            let nominal = d
                .dvfs_state(d.nominal_level())
                .expect("nominal level exists");
            println!(
                "{:>12} {:>6} {:>12.0} {:>10.0} {:>10.1} {:>10.1} {:>8}",
                d.name(),
                d.kind(),
                d.peak_gflops(),
                d.mem_bandwidth_gbs(),
                d.memory_gb(),
                d.power_model().active_power(nominal),
                d.execution_slots()
            );
        }
        println!("  links:");
        for l in platform.interconnect().links() {
            println!(
                "    {:<12} {:>8.1} GB/s  {:>8.1} µs",
                l.name(),
                l.bandwidth_gbs(),
                l.latency().as_secs() * 1e6
            );
        }
        println!();
    }
}
