//! Experiment F16 — scheduler value vs. platform heterogeneity.
//!
//! The classic list-scheduling result: on a homogeneous machine the
//! placement decision barely matters, so smart and naive schedulers
//! tie; as machine speeds spread, a bad placement gets exponentially
//! costlier and cost-aware schedulers pull away. Sweep the
//! [`heterogeneous_node`](helios_platform::presets::heterogeneous_node)
//! spread knob `h ∈ {0 .. 15}` on layered DAGs (8 seeds) and report the
//! makespan of each scheduler normalized to HEFT's.

use helios_bench::{print_series_table, Agg, Series};
use helios_platform::presets;
use helios_sched::{
    HeftScheduler, MctScheduler, MinMinScheduler, OlbScheduler, RandomScheduler, Scheduler,
};
use helios_workflow::generators::synthetic::{layered_random, LayeredConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MctScheduler::default()),
        Box::new(MinMinScheduler::default()),
        Box::new(OlbScheduler::default()),
        Box::new(RandomScheduler::new(0)),
    ];
    let heft = HeftScheduler::default();
    let hs = [0.0, 1.0, 3.0, 7.0, 15.0];
    let seeds = 0..8u64;

    let mut series: Vec<Series> = schedulers
        .iter()
        .map(|s| Series::new(format!("{}/heft", s.name())))
        .collect();

    for &h in &hs {
        let mut aggs: Vec<Agg> = schedulers.iter().map(|_| Agg::new()).collect();
        for seed in seeds.clone() {
            let platform = presets::heterogeneous_node(8, h, seed);
            let wf = layered_random(&LayeredConfig::default(), seed)?;
            let base = heft.schedule(&wf, &platform)?.makespan().as_secs();
            for (i, s) in schedulers.iter().enumerate() {
                let m = s.schedule(&wf, &platform)?.makespan().as_secs();
                aggs[i].push(m / base);
            }
        }
        for (i, agg) in aggs.iter().enumerate() {
            series[i].push(h, agg.mean());
        }
    }

    println!("makespan relative to HEFT vs machine heterogeneity h, layered 10x10, 8 seeds");
    print_series_table("h", &series);
    Ok(())
}
