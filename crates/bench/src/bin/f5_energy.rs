//! Experiment F5 — energy and energy-delay product per strategy.
//!
//! LIGO-500 on `hpc_node`, 8 seeds. Strategies: HEFT (performance
//! first), energy-aware HEFT at three alphas, HEFT with DVFS slack
//! reclamation (1.2× deadline), and online dispatch under the three
//! DVFS governors. DRS (device sleep) accounting is reported for the
//! HEFT row as the `+drs` variant.

use helios_bench::{print_header, Agg};
use helios_core::{Engine, EngineConfig, OnlinePolicy, OnlineRunner};
use helios_energy::{account, reclaim_slack, EnergyAwareHeft, OnDemand, Performance, Powersave};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_sim::SimTime;
use helios_workflow::generators::ligo_inspiral;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..8u64;
    print_header(&[
        "strategy",
        "makespan (s)",
        "active (J)",
        "total (J)",
        "EDP (J*s)",
    ]);

    let mut rows: Vec<(String, Agg, Agg, Agg, Agg)> = Vec::new();
    let add = |label: &str,
               makespan: f64,
               active: f64,
               total: f64,
               edp: f64,
               rows: &mut Vec<(String, Agg, Agg, Agg, Agg)>| {
        let row = match rows.iter_mut().find(|(l, ..)| l == label) {
            Some(r) => r,
            None => {
                rows.push((
                    label.to_owned(),
                    Agg::new(),
                    Agg::new(),
                    Agg::new(),
                    Agg::new(),
                ));
                rows.last_mut().expect("just pushed")
            }
        };
        row.1.push(makespan);
        row.2.push(active);
        row.3.push(total);
        row.4.push(edp);
    };

    for seed in seeds {
        let wf = ligo_inspiral(500, seed)?;

        // Static strategies.
        let heft = HeftScheduler::default().schedule(&wf, &platform)?;
        let e = account(&heft, &wf, &platform, false)?;
        add(
            "heft",
            e.makespan_secs,
            e.active_j,
            e.total_j(),
            e.edp(),
            &mut rows,
        );
        let e_drs = account(&heft, &wf, &platform, true)?;
        add(
            "heft+drs",
            e_drs.makespan_secs,
            e_drs.active_j,
            e_drs.total_j(),
            e_drs.edp(),
            &mut rows,
        );

        for alpha in [0.7, 0.5, 0.3] {
            let plan = EnergyAwareHeft::new(alpha).schedule(&wf, &platform)?;
            let e = account(&plan, &wf, &platform, false)?;
            add(
                &format!("ea-heft({alpha})"),
                e.makespan_secs,
                e.active_j,
                e.total_j(),
                e.edp(),
                &mut rows,
            );
        }

        let deadline = SimTime::ZERO + heft.makespan() * 1.2;
        let reclaimed = reclaim_slack(&heft, &wf, &platform, deadline)?;
        let e = account(&reclaimed, &wf, &platform, false)?;
        add(
            "heft+slack(1.2x)",
            e.makespan_secs,
            e.active_j,
            e.total_j(),
            e.edp(),
            &mut rows,
        );

        // Online governors.
        for (label, runner) in [
            (
                "online/performance",
                OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
                    .with_governor(Box::new(Performance)),
            ),
            (
                "online/ondemand",
                OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
                    .with_governor(Box::new(OnDemand::default())),
            ),
            (
                "online/powersave",
                OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
                    .with_governor(Box::new(Powersave)),
            ),
        ] {
            let report = runner.run(&platform, &wf)?;
            let e = report.energy();
            add(
                label,
                e.makespan_secs,
                e.active_j,
                e.total_j(),
                e.edp(),
                &mut rows,
            );
        }
        let _ = Engine::new(EngineConfig::default());
    }

    for (label, makespan, active, total, edp) in rows {
        println!(
            "{label:>16}{:>16.4}{:>16.1}{:>16.1}{:>16.1}",
            makespan.mean(),
            active.mean(),
            total.mean(),
            edp.mean()
        );
    }
    Ok(())
}
