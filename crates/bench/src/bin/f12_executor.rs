//! Experiment F12 — threaded-executor validation.
//!
//! The same HEFT plan is executed by the discrete-event engine and by
//! the real thread-pool executor (durations compressed so each run
//! takes ~200 ms of wall time). Columns: simulated makespan, threaded
//! makespan (de-scaled), relative error. Agreement validates that the
//! simulated orchestration logic matches a real runtime's behaviour.

use helios_bench::print_header;
use helios_core::executor::ThreadedExecutor;
use helios_core::{Engine, EngineConfig};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_workflow::generators::{montage, WorkflowClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::workstation();
    print_header(&["workflow", "simulated (s)", "threaded (s)", "error %"]);
    for class in WorkflowClass::ALL {
        let wf = class.generate(100, 5)?;
        let plan = HeftScheduler::default().schedule(&wf, &platform)?;
        let simulated = Engine::new(EngineConfig::default()).execute_plan(&platform, &wf, &plan)?;
        let scale = 0.2 / simulated.makespan().as_secs();
        let threaded = ThreadedExecutor::new(scale)?.execute_plan(&platform, &wf, &plan)?;
        let sim = simulated.makespan().as_secs();
        let wall = threaded.makespan().as_secs();
        println!(
            "{:>16}{:>16.4}{:>16.4}{:>16.2}",
            class.as_str(),
            sim,
            wall,
            (wall - sim) / sim * 100.0
        );
    }
    let _ = montage(20, 0)?;
    Ok(())
}
