//! Experiment T16 — scheduler robustness under elastic capacity.
//!
//! Every scheduler in the lineup plans CyberShake-300 on `hpc_node`,
//! then executes under a spot-preemption plan: two GPUs are preempted
//! early with short notice and re-acquired later, and a third GPU runs
//! a stochastic spot-churn renewal. Recovery is work-conserving
//! retry-backoff, so the makespan delta against the same scheduler's
//! static run isolates what capacity volatility costs each plan shape
//! (6 seeds). Rows report mean static and elastic makespan, the
//! degradation, preemption/migration counts and the utilization the
//! re-acquired devices achieve.
//!
//! Part 2: the same spot plan under HEFT, one row per recovery policy.
//! Work-conserving retry never routes work back to a re-acquired
//! device (join utilization pins at zero); reschedule re-ranks the
//! remaining workload onto the enlarged platform and is the only
//! policy that converts re-acquired capacity into makespan.

use helios_bench::{print_header, Agg};
use helios_core::{
    ElasticEvent, ElasticEventKind, ElasticityConfig, EngineConfig, EngineError, FailureModel,
    RecoveryPolicy, ResilienceConfig, ResilientRunner,
};
use helios_platform::presets;
use helios_sched::all_schedulers;
use helios_workflow::generators::cybershake;

/// The spot-preemption plan: gpu0/gpu1 preempted at staggered times and
/// re-acquired, gpu2 on a stochastic churn renewal.
fn spot_plan() -> ElasticityConfig {
    let ev = |device: &str, at_secs: f64, kind: ElasticEventKind| ElasticEvent {
        device: device.into(),
        at_secs,
        kind,
    };
    ElasticityConfig {
        events: vec![
            ev(
                "gpu0",
                0.01,
                ElasticEventKind::Preempt { notice_secs: 0.002 },
            ),
            ev(
                "gpu1",
                0.03,
                ElasticEventKind::Preempt { notice_secs: 0.002 },
            ),
            ev("gpu0", 0.08, ElasticEventKind::Join),
            ev("gpu1", 0.12, ElasticEventKind::Join),
        ],
        churn: vec![helios_core::ElasticChurn {
            device: "gpu2".into(),
            mtbp_secs: 0.06,
            weibull_shape: None,
            notice_secs: 0.002,
            rejoin_secs: 0.03,
        }],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..6u64;
    // Failures never fire: capacity volatility is the only perturbation.
    let resilience = || {
        ResilienceConfig::new(
            FailureModel::exponential(1.0e12),
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.001,
                factor: 2.0,
                cap_secs: 0.01,
                max_retries: 10_000_000,
            },
        )
    };
    print_header(&[
        "scheduler",
        "static (s)",
        "elastic (s)",
        "overhead %",
        "preempts",
        "migrated",
        "join util",
        "completion",
    ]);
    for scheduler in all_schedulers() {
        let mut static_ms = Agg::new();
        let mut elastic_ms = Agg::new();
        let mut preempts = Agg::new();
        let mut migrated = Agg::new();
        let mut join_util = Agg::new();
        let mut done = 0usize;
        let mut total = 0usize;
        for seed in seeds.clone() {
            let wf = cybershake(300, seed)?;
            let base = ResilientRunner::new(EngineConfig {
                seed,
                noise_cv: 0.05,
                resilience: Some(resilience()),
                ..Default::default()
            })
            .run(&platform, &wf, scheduler.as_ref())?;
            static_ms.push(base.makespan().as_secs());
            let config = EngineConfig {
                seed,
                noise_cv: 0.05,
                resilience: Some(resilience()),
                elasticity: Some(spot_plan()),
                ..Default::default()
            };
            total += 1;
            match ResilientRunner::new(config).run(&platform, &wf, scheduler.as_ref()) {
                Ok(report) => {
                    let m = report.elasticity().expect("metrics attached");
                    elastic_ms.push(report.makespan().as_secs());
                    preempts.push(f64::from(m.preemptions));
                    migrated.push(f64::from(m.drain_migrated_tasks));
                    join_util.push(m.join_utilization);
                    done += 1;
                }
                // Lost workloads are measurements: they depress the
                // completion column instead of aborting the experiment.
                Err(
                    EngineError::RetriesExhausted { .. }
                    | EngineError::AllDevicesLost { .. }
                    | EngineError::CapacityExhausted { .. },
                ) => {}
                Err(other) => return Err(other.into()),
            }
        }
        println!(
            "{:>16}{:>16.4}{:>16.4}{:>16.1}{:>16.1}{:>16.1}{:>16.2}{:>16.2}",
            scheduler.name(),
            static_ms.mean(),
            elastic_ms.mean(),
            (elastic_ms.mean() / static_ms.mean() - 1.0) * 100.0,
            preempts.mean(),
            migrated.mean(),
            join_util.mean(),
            done as f64 / total as f64
        );
    }

    // Part 2: recovery policies under the same spot plan (HEFT).
    println!();
    print_header(&[
        "policy",
        "elastic (s)",
        "preempts",
        "migrated",
        "join util",
        "completion",
    ]);
    let policies: [RecoveryPolicy; 4] = [
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.001,
            factor: 2.0,
            cap_secs: 0.01,
            max_retries: 10_000_000,
        },
        RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 10_000_000,
        },
        RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.01,
            overhead_secs: 5e-4,
            max_retries: 10_000_000,
        },
        RecoveryPolicy::Reschedule {
            scheduler: "heft".into(),
            overhead_secs: 0.002,
            max_retries: 10_000_000,
        },
    ];
    let heft = helios_sched::HeftScheduler::default();
    for policy in &policies {
        let mut elastic_ms = Agg::new();
        let mut preempts = Agg::new();
        let mut migrated = Agg::new();
        let mut join_util = Agg::new();
        let mut done = 0usize;
        let mut total = 0usize;
        for seed in seeds.clone() {
            let wf = cybershake(300, seed)?;
            let config = EngineConfig {
                seed,
                noise_cv: 0.05,
                resilience: Some(ResilienceConfig::new(
                    FailureModel::exponential(1.0e12),
                    policy.clone(),
                )),
                elasticity: Some(spot_plan()),
                ..Default::default()
            };
            total += 1;
            match ResilientRunner::new(config).run(&platform, &wf, &heft) {
                Ok(report) => {
                    let m = report.elasticity().expect("metrics attached");
                    elastic_ms.push(report.makespan().as_secs());
                    preempts.push(f64::from(m.preemptions));
                    migrated.push(f64::from(m.drain_migrated_tasks));
                    join_util.push(m.join_utilization);
                    done += 1;
                }
                Err(
                    EngineError::RetriesExhausted { .. }
                    | EngineError::AllDevicesLost { .. }
                    | EngineError::CapacityExhausted { .. },
                ) => {}
                Err(other) => return Err(other.into()),
            }
        }
        println!(
            "{:>16}{:>16.4}{:>16.1}{:>16.1}{:>16.2}{:>16.2}",
            policy.name(),
            elastic_ms.mean(),
            preempts.mean(),
            migrated.mean(),
            join_util.mean(),
            done as f64 / total as f64
        );
    }
    Ok(())
}
