//! Experiment T8 — fault-tolerance overhead.
//!
//! CyberShake-500 on `hpc_node` under Poisson device failures at three
//! MTBF settings, with and without checkpointing; rows report makespan
//! overhead over the fault-free run, failures and retries (6 seeds).

use helios_bench::{print_header, Agg};
use helios_core::{CheckpointConfig, Engine, EngineConfig, FaultConfig};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_sim::SimDuration;
use helios_workflow::generators::cybershake;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..6u64;
    print_header(&[
        "MTBF (s)",
        "checkpoint",
        "makespan (s)",
        "overhead %",
        "failures",
        "energy (J)",
    ]);

    // Fault-free baseline.
    let mut base = Agg::new();
    for seed in seeds.clone() {
        let wf = cybershake(500, seed)?;
        let plan = HeftScheduler::default().schedule(&wf, &platform)?;
        let report = Engine::new(EngineConfig::default()).execute_plan(&platform, &wf, &plan)?;
        base.push(report.makespan().as_secs());
    }
    println!(
        "{:>16}{:>16}{:>16.4}{:>16.1}{:>16}{:>16}",
        "inf",
        "-",
        base.mean(),
        0.0,
        0,
        "-"
    );

    for mtbf in [1.0, 0.25, 0.1] {
        for ckpt in [false, true] {
            let mut makespan = Agg::new();
            let mut failures = Agg::new();
            let mut energy = Agg::new();
            for seed in seeds.clone() {
                let wf = cybershake(500, seed)?;
                let plan = HeftScheduler::default().schedule(&wf, &platform)?;
                let mut config = EngineConfig {
                    seed,
                    faults: Some(FaultConfig::new(
                        mtbf,
                        SimDuration::from_secs(0.005),
                        10_000_000,
                    )?),
                    ..Default::default()
                };
                if ckpt {
                    config.checkpointing = Some(CheckpointConfig::new(
                        SimDuration::from_secs(0.01),
                        SimDuration::from_secs(5e-4),
                    )?);
                }
                let report = Engine::new(config).execute_plan(&platform, &wf, &plan)?;
                makespan.push(report.makespan().as_secs());
                failures.push(f64::from(report.failures()));
                energy.push(report.energy().total_j());
            }
            println!(
                "{:>16}{:>16}{:>16.4}{:>16.1}{:>16.1}{:>16.1}",
                mtbf,
                if ckpt { "yes" } else { "no" },
                makespan.mean(),
                (makespan.mean() / base.mean() - 1.0) * 100.0,
                failures.mean(),
                energy.mean()
            );
        }
    }
    Ok(())
}
