//! Experiment T8 — fault-tolerance overhead.
//!
//! Part 1: CyberShake-500 on `hpc_node` under Poisson device failures
//! at three MTBF settings, with and without checkpointing; rows report
//! makespan overhead over the fault-free run, failures and retries
//! (6 seeds).
//!
//! Part 2: the same workload under the full failure-domain model
//! (transient/degraded/permanent at MTBF 0.25 s), one row per recovery
//! policy; rows report makespan degradation over each policy's own
//! fault-free baseline, wasted work, recovery overhead and completion
//! probability.
//!
//! Part 3: fault-class decomposition. Each recovery policy runs under
//! three isolated fault classes — link-only (interconnect outages and
//! bandwidth degradations, no device failures), correlated (a rack
//! failure domain covering two GPUs and the NVLink mesh) and
//! device-only (the Part 2 model) — and rows additionally report
//! reroutes over the fallback link, partition downtime and
//! lineage-driven re-materialization.

use helios_bench::{print_header, Agg};
use helios_core::{
    CheckpointConfig, Engine, EngineConfig, EngineError, FailureDomain, FailureModel, FaultConfig,
    LinkFaultModel, RecoveryPolicy, ResilienceConfig, ResilientRunner,
};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_sim::SimDuration;
use helios_workflow::generators::cybershake;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..6u64;
    print_header(&[
        "MTBF (s)",
        "checkpoint",
        "makespan (s)",
        "overhead %",
        "failures",
        "energy (J)",
    ]);

    // Fault-free baseline.
    let mut base = Agg::new();
    for seed in seeds.clone() {
        let wf = cybershake(500, seed)?;
        let plan = HeftScheduler::default().schedule(&wf, &platform)?;
        let report = Engine::new(EngineConfig::default()).execute_plan(&platform, &wf, &plan)?;
        base.push(report.makespan().as_secs());
    }
    println!(
        "{:>16}{:>16}{:>16.4}{:>16.1}{:>16}{:>16}",
        "inf",
        "-",
        base.mean(),
        0.0,
        0,
        "-"
    );

    for mtbf in [1.0, 0.25, 0.1] {
        for ckpt in [false, true] {
            let mut makespan = Agg::new();
            let mut failures = Agg::new();
            let mut energy = Agg::new();
            for seed in seeds.clone() {
                let wf = cybershake(500, seed)?;
                let plan = HeftScheduler::default().schedule(&wf, &platform)?;
                let mut config = EngineConfig {
                    seed,
                    faults: Some(FaultConfig::new(
                        mtbf,
                        SimDuration::from_secs(0.005),
                        10_000_000,
                    )?),
                    ..Default::default()
                };
                if ckpt {
                    config.checkpointing = Some(CheckpointConfig::new(
                        SimDuration::from_secs(0.01),
                        SimDuration::from_secs(5e-4),
                    )?);
                }
                let report = Engine::new(config).execute_plan(&platform, &wf, &plan)?;
                makespan.push(report.makespan().as_secs());
                failures.push(f64::from(report.failures()));
                energy.push(report.energy().total_j());
            }
            println!(
                "{:>16}{:>16}{:>16.4}{:>16.1}{:>16.1}{:>16.1}",
                mtbf,
                if ckpt { "yes" } else { "no" },
                makespan.mean(),
                (makespan.mean() / base.mean() - 1.0) * 100.0,
                failures.mean(),
                energy.mean()
            );
        }
    }

    // Part 2: recovery policies under the full failure-domain model.
    println!();
    print_header(&[
        "policy",
        "makespan (s)",
        "degradation %",
        "wasted (s)",
        "recovery (s)",
        "completion",
    ]);
    let policies: [RecoveryPolicy; 4] = [
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.005,
            factor: 2.0,
            cap_secs: 0.05,
            max_retries: 10_000_000,
        },
        RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 10_000_000,
        },
        RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.01,
            overhead_secs: 5e-4,
            max_retries: 10_000_000,
        },
        RecoveryPolicy::Reschedule {
            scheduler: "heft".into(),
            overhead_secs: 0.01,
            max_retries: 10_000_000,
        },
    ];
    for policy in &policies {
        let mut makespan = Agg::new();
        let mut degradation = Agg::new();
        let mut wasted = Agg::new();
        let mut recovery = Agg::new();
        let mut done = 0usize;
        let mut total = 0usize;
        for seed in seeds.clone() {
            let wf = cybershake(500, seed)?;
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            let mut failures = FailureModel::exponential(0.25);
            failures.degraded_prob = 0.08;
            failures.permanent_prob = 0.02;
            failures.degraded_slowdown = 2.0;
            failures.degraded_repair_secs = 0.1;
            failures.restart_overhead_secs = 0.005;
            let config = EngineConfig {
                seed,
                resilience: Some(ResilienceConfig::new(failures, policy.clone())),
                ..Default::default()
            };
            total += 1;
            match ResilientRunner::new(config).execute_plan(&platform, &wf, &plan) {
                Ok(report) => {
                    let m = report.resilience().expect("metrics attached");
                    makespan.push(report.makespan().as_secs());
                    degradation.push(m.makespan_degradation * 100.0);
                    wasted.push(m.wasted_work_secs);
                    recovery.push(m.recovery_overhead_secs);
                    done += 1;
                }
                // Lost workloads are measurements: they depress the
                // completion column instead of aborting the experiment.
                Err(EngineError::RetriesExhausted { .. } | EngineError::AllDevicesLost { .. }) => {}
                Err(other) => return Err(other.into()),
            }
        }
        println!(
            "{:>16}{:>16.4}{:>16.1}{:>16.3}{:>16.3}{:>16.2}",
            policy.name(),
            makespan.mean(),
            degradation.mean(),
            wasted.mean(),
            recovery.mean(),
            done as f64 / total as f64
        );
    }

    // Part 3: fault-class decomposition. The same policies, but the
    // fault process is restricted to one class at a time so each row
    // isolates what that class alone costs.
    println!();
    print_header(&[
        "class",
        "policy",
        "degradation %",
        "reroutes",
        "partition (s)",
        "remat tasks",
        "completion",
    ]);
    let device_model = || {
        let mut failures = FailureModel::exponential(0.25);
        failures.degraded_prob = 0.08;
        failures.permanent_prob = 0.02;
        failures.degraded_slowdown = 2.0;
        failures.degraded_repair_secs = 0.1;
        failures.restart_overhead_secs = 0.005;
        failures
    };
    // An astronomically long device MTTF isolates the other classes.
    let no_device_faults = || FailureModel::exponential(1.0e12);
    let mut link_model = LinkFaultModel::exponential(0.05);
    link_model.degraded_prob = 0.3;
    link_model.outage_secs = 0.02;
    let rack = FailureDomain {
        kind: "rack".into(),
        name: "rack0".into(),
        devices: vec!["gpu0".into(), "gpu1".into()],
        links: vec!["nvlink".into()],
        mttf_secs: 0.05,
        weibull_shape: None,
        degraded_prob: 0.3,
        permanent_prob: 0.05,
        outage_secs: 0.02,
    };
    let classes: [(&str, ResilienceConfig); 3] = [
        (
            "link-only",
            ResilienceConfig::new(no_device_faults(), policies[0].clone())
                .with_link_faults(link_model.clone()),
        ),
        (
            "correlated",
            ResilienceConfig::new(no_device_faults(), policies[0].clone())
                .with_domains(vec![rack.clone()]),
        ),
        (
            "device-only",
            ResilienceConfig::new(device_model(), policies[0].clone()),
        ),
    ];
    for (class, res) in &classes {
        for policy in &policies {
            let mut degradation = Agg::new();
            let mut reroutes = Agg::new();
            let mut partition = Agg::new();
            let mut remat = Agg::new();
            let mut done = 0usize;
            let mut total = 0usize;
            for seed in seeds.clone() {
                let wf = cybershake(500, seed)?;
                let plan = HeftScheduler::default().schedule(&wf, &platform)?;
                let res = ResilienceConfig {
                    policy: policy.clone(),
                    ..res.clone()
                };
                let config = EngineConfig {
                    seed,
                    resilience: Some(res),
                    ..Default::default()
                };
                total += 1;
                match ResilientRunner::new(config).execute_plan(&platform, &wf, &plan) {
                    Ok(report) => {
                        let m = report.resilience().expect("metrics attached");
                        degradation.push(m.makespan_degradation * 100.0);
                        reroutes.push(f64::from(m.reroutes));
                        partition.push(m.partition_downtime_secs);
                        remat.push(f64::from(m.rematerialized_tasks));
                        done += 1;
                    }
                    Err(
                        EngineError::RetriesExhausted { .. } | EngineError::AllDevicesLost { .. },
                    ) => {}
                    Err(other) => return Err(other.into()),
                }
            }
            println!(
                "{:>16}{:>16}{:>16.1}{:>16.1}{:>16.4}{:>16.1}{:>16.2}",
                class,
                policy.name(),
                degradation.mean(),
                reroutes.mean(),
                partition.mean(),
                remat.mean(),
                done as f64 / total as f64
            );
        }
    }
    Ok(())
}
