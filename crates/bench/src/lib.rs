//! Shared helpers for the `helios` experiment harness.
//!
//! Every table and figure of the evaluation (see DESIGN.md §4) has a
//! binary in `src/bin/` that prints its rows/series using the helpers
//! here; `EXPERIMENTS.md` records the outputs. Timing-based experiments
//! (F7 and the micro-benchmarks) live in `benches/` under criterion.

use helios_sim::stats::OnlineStats;

/// A labelled numeric series: one figure line or one table column.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (scheduler name, strategy, …).
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// Prints a set of series as an aligned table: one row per x value, one
/// column per series — the textual equivalent of a multi-line figure.
pub fn print_series_table(x_label: &str, series: &[Series]) {
    print!("{x_label:>14}");
    for s in series {
        print!(" {:>14}", truncate(&s.label, 14));
    }
    println!();
    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|&(x, _)| x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>14.4}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => print!(" {y:>14.4}"),
                None => print!(" {:>14}", "-"),
            }
        }
        println!();
    }
}

/// Prints a markdown-style header row for a table experiment.
pub fn print_header(columns: &[&str]) {
    for c in columns {
        print!("{c:>16}");
    }
    println!();
    println!("{}", "-".repeat(16 * columns.len()));
}

fn truncate(s: &str, width: usize) -> &str {
    &s[..s.len().min(width)]
}

/// Aggregates repeated measurements and reports `mean ± std`.
#[derive(Debug, Clone, Default)]
pub struct Agg {
    stats: OnlineStats,
}

impl Agg {
    /// Creates an empty aggregate.
    #[must_use]
    pub fn new() -> Agg {
        Agg::default()
    }

    /// Adds one measurement.
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
    }

    /// The mean of the measurements.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Formats as `mean±std`.
    #[must_use]
    pub fn display(&self) -> String {
        format!("{:.4}±{:.4}", self.stats.mean(), self.stats.std_dev())
    }
}

/// The default seed sweep used by every stochastic experiment.
#[must_use]
pub fn seeds(n: u64) -> std::ops::Range<u64> {
    0..n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates() {
        let mut s = Series::new("heft");
        s.push(1.0, 2.0);
        s.push(2.0, 3.0);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.label, "heft");
    }

    #[test]
    fn agg_reports_mean() {
        let mut a = Agg::new();
        a.push(1.0);
        a.push(3.0);
        assert_eq!(a.mean(), 2.0);
        assert!(a.display().contains('±'));
    }

    #[test]
    fn printing_does_not_panic() {
        let mut s = Series::new("a-very-long-label-indeed");
        s.push(0.5, 1.5);
        print_series_table("x", &[s]);
        print_header(&["col1", "col2"]);
    }
}
