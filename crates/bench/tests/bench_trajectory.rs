//! The committed `BENCH_<PR>.json` must exist and carry every pinned
//! series. A PR that drops a series (or commits an empty/garbled file)
//! silently breaks the perf trajectory; this test makes that loud.

use std::path::PathBuf;

/// Every series the trajectory file must carry, by stable name.
const REQUIRED_SERIES: [&str; 4] = [
    "paper_grid_cells_per_sec",
    "paper_grid_journal_cells_per_sec",
    "merge_rows_per_sec",
    "synthetic_dag_steps_per_sec",
];

/// The PR whose trajectory file this tree pins (matches
/// `perf_trajectory::PR`).
const PR: u32 = 10;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("bench crate lives two levels below the repo root")
}

#[test]
fn bench_json_is_committed_with_every_series() {
    let path = repo_root().join(format!("BENCH_{PR}.json"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} is missing ({e}); regenerate with \
             `cargo run --release --bin perf_trajectory`",
            path.display()
        )
    });
    let doc: serde_json::Value = serde_json::from_str(&text).expect("BENCH json parses");

    assert_eq!(doc["pr"].as_u64(), Some(PR as u64), "pr field must match");
    let series = doc["series"].as_array().expect("series array");
    for name in REQUIRED_SERIES {
        let entry = series
            .iter()
            .find(|s| s["name"] == name)
            .unwrap_or_else(|| panic!("BENCH_{PR}.json is missing the {name:?} series"));
        let value = entry["value"].as_f64().expect("series value is a number");
        assert!(
            value.is_finite() && value > 0.0,
            "{name} must be a positive rate, got {value}"
        );
    }
}
