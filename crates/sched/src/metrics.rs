//! Schedule quality metrics and one-call evaluation summaries.

pub use crate::schedule::{efficiency, slr, speedup};

use helios_platform::Platform;
use helios_workflow::Workflow;

use crate::error::SchedError;
use crate::schedule::Schedule;

/// Everything the comparison experiments report about one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleMetrics {
    /// Makespan in seconds.
    pub makespan_secs: f64,
    /// Schedule length ratio (lower is better, ≥ ~1).
    pub slr: f64,
    /// Speedup over the best single device.
    pub speedup: f64,
    /// Speedup divided by device count.
    pub efficiency: f64,
    /// Mean device utilization over devices that received work.
    pub mean_utilization: f64,
}

impl ScheduleMetrics {
    /// Computes all metrics for `schedule`.
    ///
    /// # Errors
    ///
    /// Propagates platform and placement errors.
    pub fn compute(
        schedule: &Schedule,
        wf: &Workflow,
        platform: &Platform,
    ) -> Result<ScheduleMetrics, SchedError> {
        let utilization = schedule.utilization(platform);
        let used: Vec<f64> = utilization.iter().copied().filter(|&u| u > 0.0).collect();
        let mean_utilization = if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64
        };
        Ok(ScheduleMetrics {
            makespan_secs: schedule.makespan().as_secs(),
            slr: slr(schedule, wf, platform)?,
            speedup: speedup(schedule, wf, platform)?,
            efficiency: efficiency(schedule, wf, platform)?,
            mean_utilization,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeftScheduler, Scheduler};
    use helios_platform::presets;
    use helios_workflow::generators::montage;

    #[test]
    fn summary_is_internally_consistent() {
        let p = presets::hpc_node();
        let wf = montage(50, 1).unwrap();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let m = ScheduleMetrics::compute(&s, &wf, &p).unwrap();
        assert!(m.makespan_secs > 0.0);
        assert!(m.slr > 0.0);
        assert!((m.efficiency - m.speedup / p.num_devices() as f64).abs() < 1e-12);
        assert!(m.mean_utilization > 0.0 && m.mean_utilization <= 1.0);
    }
}

/// Per-stage aggregation of a schedule: where the execution time went.
///
/// Returns `(stage name, total busy seconds, task count)` sorted by
/// descending time — the first rows are the pipeline's bottleneck
/// stages.
///
/// # Errors
///
/// Returns [`SchedError::Unscheduled`] if the schedule is missing a
/// task.
pub fn stage_breakdown(
    schedule: &Schedule,
    wf: &Workflow,
) -> Result<Vec<(String, f64, usize)>, SchedError> {
    let mut agg: std::collections::BTreeMap<&str, (f64, usize)> = std::collections::BTreeMap::new();
    for (i, task) in wf.tasks().iter().enumerate() {
        let p = schedule.placement(helios_workflow::TaskId(i))?;
        let entry = agg.entry(task.stage()).or_insert((0.0, 0));
        entry.0 += p.duration().as_secs();
        entry.1 += 1;
    }
    let mut rows: Vec<(String, f64, usize)> = agg
        .into_iter()
        .map(|(stage, (secs, count))| (stage.to_owned(), secs, count))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok(rows)
}

#[cfg(test)]
mod stage_tests {
    use super::*;
    use crate::{HeftScheduler, Scheduler};
    use helios_platform::presets;
    use helios_workflow::generators::epigenomics;

    #[test]
    fn breakdown_sums_to_total_busy_time() {
        let p = presets::hpc_node();
        let wf = epigenomics(80, 1).unwrap();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let rows = stage_breakdown(&s, &wf).unwrap();
        let total: f64 = rows.iter().map(|r| r.1).sum();
        let busy: f64 = s
            .placements()
            .iter()
            .map(|pl| pl.duration().as_secs())
            .sum();
        assert!((total - busy).abs() < 1e-9);
        let tasks: usize = rows.iter().map(|r| r.2).sum();
        assert_eq!(tasks, wf.num_tasks());
        // Epigenomics is map-dominated.
        assert_eq!(rows[0].0, "map", "{rows:?}");
        // Sorted descending.
        for pair in rows.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
