//! Reliability analysis and reliability-aware scheduling.
//!
//! Shrinking transistors make silicon less dependable (survey §II.A);
//! with per-device failure rates `λ_d` (transient faults as Poisson
//! processes), the probability a schedule completes fault-free is
//!
//! `R = Π exp(−λ_d(t) · duration(t)) = exp(−Σ λ · dur)`.
//!
//! [`schedule_reliability`] evaluates that product for any schedule;
//! [`ReliabilityAwareHeft`] biases HEFT's device selection toward
//! dependable devices, trading makespan for completion probability —
//! the same bi-objective shape as energy-aware HEFT.

use helios_platform::{DeviceId, Platform};
use helios_workflow::{analysis, TaskId, Workflow};

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Validates a per-device failure-rate vector against a platform.
fn check_rates(platform: &Platform, rates: &[f64]) -> Result<(), SchedError> {
    if rates.len() != platform.num_devices() {
        return Err(SchedError::Internal(format!(
            "{} failure rates for {} devices",
            rates.len(),
            platform.num_devices()
        )));
    }
    for (i, &r) in rates.iter().enumerate() {
        if !(r.is_finite() && r >= 0.0) {
            return Err(SchedError::Internal(format!(
                "failure rate[{i}] = {r} must be non-negative"
            )));
        }
    }
    Ok(())
}

/// Uniform failure rates from a single MTBF (failures per second =
/// `1 / mtbf_secs`) — matches the engine's
/// [`FaultConfig`](../../helios_core/struct.FaultConfig.html) semantics.
///
/// # Errors
///
/// Returns [`SchedError::Internal`] for a non-positive MTBF.
pub fn uniform_rates(platform: &Platform, mtbf_secs: f64) -> Result<Vec<f64>, SchedError> {
    if !(mtbf_secs.is_finite() && mtbf_secs > 0.0) {
        return Err(SchedError::Internal(format!(
            "mtbf {mtbf_secs} must be positive"
        )));
    }
    Ok(vec![1.0 / mtbf_secs; platform.num_devices()])
}

/// Probability that every placement executes without a transient fault,
/// given per-device failure rates (per second, indexed by device id).
///
/// # Errors
///
/// Returns [`SchedError::Internal`] for a malformed rate vector.
pub fn schedule_reliability(
    schedule: &Schedule,
    platform: &Platform,
    rates: &[f64],
) -> Result<f64, SchedError> {
    check_rates(platform, rates)?;
    let mut hazard = 0.0;
    for p in schedule.placements() {
        hazard += rates[p.device.0] * p.duration().as_secs();
    }
    Ok((-hazard).exp())
}

/// HEFT with reliability-biased device selection:
///
/// `score(d) = alpha · EFT(d)/min_EFT + (1 − alpha) · hazard(d)/min_hazard`
///
/// where `hazard(d) = λ_d · exec(d)` is the task's expected fault count
/// on `d`. `alpha = 1` reproduces plain HEFT.
#[derive(Debug, Clone)]
pub struct ReliabilityAwareHeft {
    alpha: f64,
    rates: Vec<f64>,
}

impl ReliabilityAwareHeft {
    /// Creates the scheduler with the time/reliability weight and
    /// per-device failure rates (per second, indexed by device id).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    #[must_use]
    pub fn new(alpha: f64, rates: Vec<f64>) -> ReliabilityAwareHeft {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha {alpha} must be in [0, 1]"
        );
        ReliabilityAwareHeft { alpha, rates }
    }
}

impl Scheduler for ReliabilityAwareHeft {
    fn name(&self) -> &str {
        "rel-heft"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        check_rates(platform, &self.rates)?;
        let ranks = analysis::bottom_levels(wf, platform)?;
        let mut order: Vec<TaskId> = (0..wf.num_tasks()).map(TaskId).collect();
        order.sort_by(|a, b| ranks[b.0].total_cmp(&ranks[a.0]).then(a.0.cmp(&b.0)));

        let mut ctx = SchedContext::new(wf, platform, true)?;
        for task in order {
            let mut candidates = Vec::new();
            for dev in ctx.feasible_devices(task).collect::<Vec<_>>() {
                let (start, finish) = ctx.eft(task, dev)?;
                let hazard = self.rates[dev.0] * ctx.exec_time(task, dev).as_secs();
                candidates.push((dev, start, finish, hazard));
            }
            if candidates.is_empty() {
                return Err(SchedError::NoFeasibleDevice(task));
            }
            let min_finish = candidates
                .iter()
                .map(|c| c.2.as_secs())
                .fold(f64::INFINITY, f64::min);
            let min_hazard = candidates
                .iter()
                .map(|c| c.3)
                .fold(f64::INFINITY, f64::min)
                .max(1e-300);
            let (dev, start, finish, _) = candidates
                .into_iter()
                .min_by(|a, b| {
                    let score = |c: &(DeviceId, _, helios_sim::SimTime, f64)| {
                        self.alpha * c.2.as_secs() / min_finish.max(1e-300)
                            + (1.0 - self.alpha) * c.3 / min_hazard
                    };
                    score(a).total_cmp(&score(b)).then(a.0.cmp(&b.0))
                })
                .ok_or_else(|| SchedError::Internal("no devices".into()))?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeftScheduler;
    use helios_platform::presets;
    use helios_workflow::generators::montage;

    #[test]
    fn reliability_is_a_probability_and_monotone() {
        let p = presets::hpc_node();
        let wf = montage(60, 1).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let rel_good = schedule_reliability(&plan, &p, &uniform_rates(&p, 1e4).unwrap()).unwrap();
        let rel_bad = schedule_reliability(&plan, &p, &uniform_rates(&p, 1.0).unwrap()).unwrap();
        assert!(rel_good > 0.99, "MTBF 10^4 s: {rel_good}");
        assert!(rel_bad < rel_good);
        assert!((0.0..=1.0).contains(&rel_bad));
        // Zero rates: certain success.
        let certain = schedule_reliability(&plan, &p, &vec![0.0; p.num_devices()]).unwrap();
        assert_eq!(certain, 1.0);
    }

    #[test]
    fn malformed_rates_rejected() {
        let p = presets::hpc_node();
        let wf = montage(30, 1).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        assert!(schedule_reliability(&plan, &p, &[0.1]).is_err());
        assert!(schedule_reliability(&plan, &p, &vec![-1.0; p.num_devices()]).is_err());
        assert!(uniform_rates(&p, 0.0).is_err());
    }

    #[test]
    fn alpha_one_matches_heft() {
        let p = presets::hpc_node();
        let wf = montage(50, 2).unwrap();
        let rates = uniform_rates(&p, 100.0).unwrap();
        let rel = ReliabilityAwareHeft::new(1.0, rates)
            .schedule(&wf, &p)
            .unwrap();
        let heft = HeftScheduler::default().schedule(&wf, &p).unwrap();
        assert_eq!(rel.placements(), heft.placements());
    }

    #[test]
    fn low_alpha_buys_reliability_with_makespan() {
        let p = presets::hpc_node();
        // The GPUs are flaky (MTBF 10 s); everything else is solid.
        let mut rates = vec![1e-6; p.num_devices()];
        rates[2] = 0.1;
        rates[3] = 0.1;
        rates[4] = 0.1;
        rates[5] = 0.1;
        let mut time = [0.0f64; 2];
        let mut rel = [0.0f64; 2];
        for seed in 0..5 {
            let wf = montage(60, seed).unwrap();
            for (i, alpha) in [1.0, 0.2].into_iter().enumerate() {
                let plan = ReliabilityAwareHeft::new(alpha, rates.clone())
                    .schedule(&wf, &p)
                    .unwrap();
                plan.validate(&wf, &p).unwrap();
                time[i] += plan.makespan().as_secs();
                rel[i] += schedule_reliability(&plan, &p, &rates).unwrap();
            }
        }
        assert!(
            rel[1] > rel[0],
            "reliability-biased plans must be more reliable: {} vs {}",
            rel[1],
            rel[0]
        );
        assert!(
            time[1] >= time[0],
            "avoiding the fast flaky GPUs must cost time"
        );
    }
}
