//! Immediate-mode heuristics and baselines: MCT, MET, OLB, round-robin
//! and random assignment. All traverse tasks in topological order and
//! commit each without reconsidering earlier decisions.

use helios_platform::{DeviceId, Platform};
use helios_sim::SimRng;
use helios_workflow::Workflow;

use parking_lot_free_cell::SeedCell;

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::Scheduler;

/// A tiny interior-mutability shim so [`RandomScheduler`] can be used
/// through `&self` while remaining deterministic per call.
mod parking_lot_free_cell {
    /// Stores the base seed; each `schedule` call derives a fresh RNG so
    /// repeated calls on the same scheduler are reproducible.
    #[derive(Debug, Clone, Copy)]
    pub struct SeedCell(pub u64);
}

/// MCT — minimum completion time: each task (topological order) goes to
/// the device finishing it earliest. HEFT without the rank ordering.
#[derive(Debug, Clone, Default)]
pub struct MctScheduler {
    _private: (),
}

impl Scheduler for MctScheduler {
    fn name(&self) -> &str {
        "mct"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let mut ctx = SchedContext::new(wf, platform, true)?;
        for &task in wf.topo_order() {
            let (dev, start, finish) = ctx.best_eft(task)?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

/// MET — minimum execution time: each task goes to the device that runs
/// it fastest, ignoring queue state. Overloads the strongest device.
#[derive(Debug, Clone, Default)]
pub struct MetScheduler {
    _private: (),
}

impl Scheduler for MetScheduler {
    fn name(&self) -> &str {
        "met"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let mut ctx = SchedContext::new(wf, platform, true)?;
        for &task in wf.topo_order() {
            let dev = ctx
                .feasible_devices(task)
                .min_by(|&a, &b| ctx.exec_time(task, a).cmp(&ctx.exec_time(task, b)))
                .ok_or(SchedError::NoFeasibleDevice(task))?;
            let (start, finish) = ctx.eft(task, dev)?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

/// OLB — opportunistic load balancing: each task goes to the device that
/// becomes *available* earliest, regardless of how slowly it will run the
/// task.
#[derive(Debug, Clone, Default)]
pub struct OlbScheduler {
    _private: (),
}

impl Scheduler for OlbScheduler {
    fn name(&self) -> &str {
        "olb"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let mut ctx = SchedContext::new(wf, platform, true)?;
        for &task in wf.topo_order() {
            // Earliest start (not finish) wins, among feasible devices.
            let mut best: Option<(DeviceId, _, _)> = None;
            for dev in ctx.feasible_devices(task).collect::<Vec<_>>() {
                let (start, finish) = ctx.eft(task, dev)?;
                if best.is_none_or(|(_, bs, _)| start < bs) {
                    best = Some((dev, start, finish));
                }
            }
            let (dev, start, finish) = best.ok_or(SchedError::NoFeasibleDevice(task))?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

/// Round-robin baseline: devices are assigned cyclically in topological
/// order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    _private: (),
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let mut ctx = SchedContext::new(wf, platform, true)?;
        let n = platform.num_devices();
        for (i, &task) in wf.topo_order().iter().enumerate() {
            // Next feasible device in the cycle.
            let dev = (0..n)
                .map(|off| DeviceId((i + off) % n))
                .find(|&d| ctx.feasible(task, d))
                .ok_or(SchedError::NoFeasibleDevice(task))?;
            let (start, finish) = ctx.eft(task, dev)?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

/// Random baseline: each task goes to a uniformly random device. The
/// seed makes every `schedule` call reproducible.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    seed: SeedCell,
}

impl RandomScheduler {
    /// Creates a random scheduler with the given base seed.
    #[must_use]
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            seed: SeedCell(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let mut rng = SimRng::seed_from(self.seed.0);
        let mut ctx = SchedContext::new(wf, platform, true)?;
        for &task in wf.topo_order() {
            let feasible: Vec<DeviceId> = ctx.feasible_devices(task).collect();
            let dev = *rng
                .choose(&feasible)
                .ok_or(SchedError::NoFeasibleDevice(task))?;
            let (start, finish) = ctx.eft(task, dev)?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::montage;

    #[test]
    fn all_immediate_schedulers_valid() {
        let p = presets::hpc_node();
        let wf = montage(50, 1).unwrap();
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(MctScheduler::default()),
            Box::new(MetScheduler::default()),
            Box::new(OlbScheduler::default()),
            Box::new(RoundRobinScheduler::default()),
            Box::new(RandomScheduler::new(1)),
        ];
        for s in schedulers {
            let sched = s.schedule(&wf, &p).unwrap();
            sched
                .validate(&wf, &p)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        }
    }

    #[test]
    fn met_concentrates_on_fast_devices() {
        let p = presets::hpc_node();
        let wf = montage(50, 1).unwrap();
        let s = MetScheduler::default().schedule(&wf, &p).unwrap();
        let devices: std::collections::BTreeSet<_> =
            s.placements().iter().map(|pl| pl.device).collect();
        // MET never uses slow devices for tasks a fast one runs quicker:
        // far fewer devices than round-robin.
        let rr = RoundRobinScheduler::default().schedule(&wf, &p).unwrap();
        let rr_devices: std::collections::BTreeSet<_> =
            rr.placements().iter().map(|pl| pl.device).collect();
        assert!(devices.len() <= rr_devices.len());
        assert_eq!(rr_devices.len(), p.num_devices());
    }

    #[test]
    fn random_is_reproducible_per_seed() {
        let p = presets::hpc_node();
        let wf = montage(40, 1).unwrap();
        let a = RandomScheduler::new(9).schedule(&wf, &p).unwrap();
        let b = RandomScheduler::new(9).schedule(&wf, &p).unwrap();
        assert_eq!(a, b);
        let c = RandomScheduler::new(10).schedule(&wf, &p).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn mct_beats_olb_usually() {
        let p = presets::hpc_node();
        let mut mct_total = 0.0;
        let mut olb_total = 0.0;
        for seed in 0..8 {
            let wf = montage(60, seed).unwrap();
            mct_total += MctScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
            olb_total += OlbScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
        }
        assert!(mct_total < olb_total, "MCT {mct_total} vs OLB {olb_total}");
    }
}
