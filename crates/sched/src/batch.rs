//! Batch-mode heuristics: Min-Min and Max-Min (Ibarra & Kim, 1977;
//! Maheswaran et al., 1999), extended with DAG readiness tracking.

use helios_platform::Platform;
use helios_workflow::{TaskId, Workflow};

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Shared Min-Min / Max-Min sweep: repeatedly compute every ready task's
/// minimum EFT and commit either the globally smallest (`max_min ==
/// false`) or the largest-of-minima (`max_min == true`).
fn batch_schedule(
    wf: &Workflow,
    platform: &Platform,
    max_min: bool,
) -> Result<Schedule, SchedError> {
    let mut ctx = SchedContext::new(wf, platform, true)?;
    let mut indegree: Vec<usize> = (0..wf.num_tasks())
        .map(|i| wf.predecessors(TaskId(i)).len())
        .collect();
    let mut ready: Vec<TaskId> = (0..wf.num_tasks())
        .filter(|&i| indegree[i] == 0)
        .map(TaskId)
        .collect();
    while !ready.is_empty() {
        // (index in ready, device, start, finish) of the pick.
        let mut pick: Option<(usize, _, _, _)> = None;
        for (i, &task) in ready.iter().enumerate() {
            let (dev, start, finish) = ctx.best_eft(task)?;
            let better = match pick {
                None => true,
                Some((_, _, _, best_finish)) => {
                    if max_min {
                        finish > best_finish
                    } else {
                        finish < best_finish
                    }
                }
            };
            if better {
                pick = Some((i, dev, start, finish));
            }
        }
        let (idx, dev, start, finish) =
            pick.ok_or_else(|| SchedError::Internal("empty ready set".into()))?;
        let task = ready.swap_remove(idx);
        ctx.place(task, dev, start, finish)?;
        for s in wf.successor_tasks(task) {
            indegree[s.0] -= 1;
            if indegree[s.0] == 0 {
                ready.push(s);
            }
        }
    }
    ctx.into_schedule()
}

/// Min-Min: among ready tasks, commit the one with the smallest minimum
/// completion time first. Biases toward short tasks; can starve long
/// ones.
#[derive(Debug, Clone, Default)]
pub struct MinMinScheduler {
    _private: (),
}

impl Scheduler for MinMinScheduler {
    fn name(&self) -> &str {
        "min-min"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        batch_schedule(wf, platform, false)
    }
}

/// Max-Min: among ready tasks, commit the one with the *largest* minimum
/// completion time first — the long-task-first mirror of Min-Min.
#[derive(Debug, Clone, Default)]
pub struct MaxMinScheduler {
    _private: (),
}

impl Scheduler for MaxMinScheduler {
    fn name(&self) -> &str {
        "max-min"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        batch_schedule(wf, platform, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{cybershake, montage};

    #[test]
    fn both_produce_valid_schedules() {
        let p = presets::hpc_node();
        for wf in [montage(50, 1).unwrap(), cybershake(50, 1).unwrap()] {
            for s in [
                MinMinScheduler::default().schedule(&wf, &p).unwrap(),
                MaxMinScheduler::default().schedule(&wf, &p).unwrap(),
            ] {
                s.validate(&wf, &p).unwrap();
            }
        }
    }

    #[test]
    fn min_min_and_max_min_differ() {
        let p = presets::hpc_node();
        let wf = cybershake(60, 2).unwrap();
        let a = MinMinScheduler::default().schedule(&wf, &p).unwrap();
        let b = MaxMinScheduler::default().schedule(&wf, &p).unwrap();
        assert_ne!(
            a.placements(),
            b.placements(),
            "orderings should diverge on heterogeneous ready sets"
        );
    }

    #[test]
    fn within_striking_distance_of_heft() {
        use crate::{HeftScheduler, Scheduler as _};
        let p = presets::hpc_node();
        let wf = montage(80, 3).unwrap();
        let heft = HeftScheduler::default()
            .schedule(&wf, &p)
            .unwrap()
            .makespan()
            .as_secs();
        for s in [
            MinMinScheduler::default().schedule(&wf, &p).unwrap(),
            MaxMinScheduler::default().schedule(&wf, &p).unwrap(),
        ] {
            let ratio = s.makespan().as_secs() / heft;
            assert!(ratio < 5.0, "batch heuristic {ratio}x of HEFT");
        }
    }
}
