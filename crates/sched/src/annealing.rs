//! Simulated-annealing schedule refinement.

use helios_platform::{DeviceId, Platform};
use helios_sim::SimRng;
use helios_workflow::{analysis, TaskId, Workflow};

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::{HeftScheduler, Scheduler};

/// A metaheuristic scheduler: simulated annealing over the joint space
/// of per-task *device assignments* and *priority values*, decoded by
/// insertion-based list scheduling and seeded with the HEFT solution.
///
/// Neighborhood moves:
///
/// * reassign one task to another memory-feasible device,
/// * nudge one task's priority (reordering it among its peers while the
///   decoder's readiness tracking preserves topological validity).
///
/// Acceptance follows Metropolis with geometric cooling; the best
/// schedule ever seen is returned, so the result is never worse than
/// the HEFT seed. Typical gains over HEFT are a few percent — the
/// interesting output is the *gap*, which bounds how much better any
/// list-ordering tweak could do (ablation experiment A14).
#[derive(Debug, Clone)]
pub struct AnnealingScheduler {
    iterations: u32,
    seed: u64,
}

impl AnnealingScheduler {
    /// Creates the scheduler with an iteration budget and RNG seed.
    #[must_use]
    pub fn new(iterations: u32, seed: u64) -> AnnealingScheduler {
        AnnealingScheduler { iterations, seed }
    }

    /// The iteration budget.
    #[must_use]
    pub fn iterations(&self) -> u32 {
        self.iterations
    }
}

impl Default for AnnealingScheduler {
    /// 2000 iterations, seed 0.
    fn default() -> Self {
        AnnealingScheduler::new(2000, 0)
    }
}

/// Decodes (priority, assignment) into a schedule: repeatedly commits
/// the highest-priority ready task to its assigned device at its EFT.
fn decode(
    wf: &Workflow,
    platform: &Platform,
    priority: &[f64],
    assignment: &[DeviceId],
) -> Result<Schedule, SchedError> {
    let mut ctx = SchedContext::new(wf, platform, true)?;
    let mut indegree: Vec<usize> = (0..wf.num_tasks())
        .map(|i| wf.predecessors(TaskId(i)).len())
        .collect();
    let mut ready: Vec<TaskId> = (0..wf.num_tasks())
        .filter(|&i| indegree[i] == 0)
        .map(TaskId)
        .collect();
    while !ready.is_empty() {
        let (idx, &task) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| priority[a.0].total_cmp(&priority[b.0]).then(b.0.cmp(&a.0)))
            .ok_or_else(|| SchedError::Internal("empty ready set".into()))?;
        ready.swap_remove(idx);
        let dev = assignment[task.0];
        let (start, finish) = ctx.eft(task, dev)?;
        ctx.place(task, dev, start, finish)?;
        for s in wf.successor_tasks(task) {
            indegree[s.0] -= 1;
            if indegree[s.0] == 0 {
                ready.push(s);
            }
        }
    }
    ctx.into_schedule()
}

impl Scheduler for AnnealingScheduler {
    fn name(&self) -> &str {
        "annealing"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        // Seed state: HEFT assignment + upward-rank priorities.
        let heft = HeftScheduler::default().schedule(wf, platform)?;
        let mut assignment: Vec<DeviceId> = vec![DeviceId(0); wf.num_tasks()];
        for p in heft.placements() {
            assignment[p.task.0] = p.device;
        }
        let mut priority = analysis::bottom_levels(wf, platform)?;
        let priority_span = priority.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-12);

        // Memory-feasible device sets per task.
        let feasible: Vec<Vec<DeviceId>> = wf
            .tasks()
            .iter()
            .map(|t| {
                platform
                    .devices()
                    .iter()
                    .filter(|d| crate::placement_feasible(d, t))
                    .map(|d| d.id())
                    .collect()
            })
            .collect();
        for (i, f) in feasible.iter().enumerate() {
            if f.is_empty() {
                return Err(SchedError::NoFeasibleDevice(TaskId(i)));
            }
        }

        let mut rng = SimRng::seed_from(self.seed);
        let mut current = decode(wf, platform, &priority, &assignment)?;
        let mut current_cost = current.makespan().as_secs();
        let mut best = current.clone();
        let mut best_cost = current_cost;

        let t0 = 0.05 * current_cost.max(1e-12);
        let cooling = if self.iterations > 1 {
            (1e-3f64).powf(1.0 / f64::from(self.iterations - 1))
        } else {
            1.0
        };
        let mut temp = t0;

        for _ in 0..self.iterations {
            // Propose a neighbor.
            let task = TaskId(rng.uniform_usize(0, wf.num_tasks() - 1));
            let move_device = rng.chance(0.5) && feasible[task.0].len() > 1;
            let (old_dev, old_prio) = (assignment[task.0], priority[task.0]);
            if move_device {
                let new_dev = loop {
                    let d = *rng
                        .choose(&feasible[task.0])
                        .expect("feasible set is non-empty");
                    if d != old_dev || feasible[task.0].len() == 1 {
                        break d;
                    }
                };
                assignment[task.0] = new_dev;
            } else {
                priority[task.0] = (old_prio + rng.normal(0.0, 0.05 * priority_span)).max(0.0);
            }

            let candidate = decode(wf, platform, &priority, &assignment)?;
            let cost = candidate.makespan().as_secs();
            let accept =
                cost <= current_cost || rng.chance(((current_cost - cost) / temp).exp().min(1.0));
            if accept {
                current = candidate;
                current_cost = cost;
                if cost < best_cost {
                    best = current.clone();
                    best_cost = cost;
                }
            } else {
                // Revert.
                assignment[task.0] = old_dev;
                priority[task.0] = old_prio;
            }
            temp *= cooling;
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{montage, sipht};

    #[test]
    fn never_worse_than_heft() {
        let p = presets::hpc_node();
        for seed in 0..3 {
            let wf = montage(60, seed).unwrap();
            let heft = HeftScheduler::default().schedule(&wf, &p).unwrap();
            let sa = AnnealingScheduler::new(300, seed)
                .schedule(&wf, &p)
                .unwrap();
            sa.validate(&wf, &p).unwrap();
            assert!(
                sa.makespan().as_secs() <= heft.makespan().as_secs() + 1e-9,
                "seed {seed}: SA {} vs HEFT {}",
                sa.makespan(),
                heft.makespan()
            );
        }
    }

    #[test]
    fn improves_on_a_known_instance() {
        // Deterministic instance where the HEFT seed is improvable
        // (layered DAG at CCR 1.0; all SA runs are seed-reproducible, so
        // this pins the improvement path, not a probability).
        use helios_workflow::generators::synthetic::{
            layered_random, scale_edges_to_ccr, LayeredConfig,
        };
        let p = presets::hpc_node();
        let wf = layered_random(&LayeredConfig::default(), 0).unwrap();
        let wf = scale_edges_to_ccr(&wf, &p, 1.0).unwrap();
        let heft = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let sa = AnnealingScheduler::new(1500, 0).schedule(&wf, &p).unwrap();
        sa.validate(&wf, &p).unwrap();
        assert!(
            sa.makespan().as_secs() < heft.makespan().as_secs() * (1.0 - 1e-9),
            "SA {} must improve HEFT {} on this instance",
            sa.makespan(),
            heft.makespan()
        );
        let _ = sipht(20, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = presets::workstation();
        let wf = montage(40, 1).unwrap();
        let a = AnnealingScheduler::new(200, 5).schedule(&wf, &p).unwrap();
        let b = AnnealingScheduler::new(200, 5).schedule(&wf, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_iterations_returns_heft_seed() {
        let p = presets::workstation();
        let wf = montage(30, 2).unwrap();
        let sa = AnnealingScheduler::new(0, 0).schedule(&wf, &p).unwrap();
        sa.validate(&wf, &p).unwrap();
        // The decoded HEFT seed can differ slightly from HEFT itself
        // (decoder re-derives EFTs), but must be a valid full schedule.
        assert_eq!(sa.placements().len(), wf.num_tasks());
    }
}
