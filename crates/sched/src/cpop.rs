//! CPOP — Critical Path On a Processor (Topcuoglu et al., 2002).

use helios_platform::{DeviceId, Platform};
use helios_sim::SimTime;
use helios_workflow::{analysis, TaskId, Workflow};

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::Scheduler;

/// The CPOP list scheduler: tasks are prioritized by *top + bottom* rank;
/// tasks on the critical path are pinned to the single device that
/// minimizes the path's total execution time, all other tasks take their
/// EFT-minimizing device.
#[derive(Debug, Clone, Default)]
pub struct CpopScheduler {
    _private: (),
}

impl Scheduler for CpopScheduler {
    fn name(&self) -> &str {
        "cpop"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let bottom = analysis::bottom_levels(wf, platform)?;
        let top = analysis::top_levels(wf, platform)?;
        let priority: Vec<f64> = bottom.iter().zip(&top).map(|(b, t)| b + t).collect();

        // The critical path: tasks whose priority equals the entry task's
        // maximum priority (within tolerance).
        let cp_value = priority.iter().fold(0.0f64, |a, &b| a.max(b));
        let tol = 1e-9 * cp_value.max(1.0);
        let on_cp: Vec<bool> = priority
            .iter()
            .map(|&p| (cp_value - p).abs() <= tol)
            .collect();

        // Pick the device minimizing the summed execution of CP tasks,
        // among devices whose memory fits every CP task; fall back to
        // plain EFT placement when no single device can host the path.
        let mut best_dev: Option<DeviceId> = None;
        let mut best_total = f64::INFINITY;
        for d in 0..platform.num_devices() {
            let dev = platform.device(DeviceId(d))?;
            let mut total = 0.0;
            let mut fits_all = true;
            for (i, &cp) in on_cp.iter().enumerate() {
                if cp {
                    let task = wf.task(TaskId(i))?;
                    if !crate::placement_feasible(dev, task) {
                        fits_all = false;
                        break;
                    }
                    total += dev
                        .execution_time(task.cost(), dev.nominal_level())?
                        .as_secs();
                }
            }
            if fits_all && total < best_total {
                best_total = total;
                best_dev = Some(DeviceId(d));
            }
        }

        // Priority queue: ready tasks by decreasing priority.
        let mut ctx = SchedContext::new(wf, platform, true)?;
        let mut indegree: Vec<usize> = (0..wf.num_tasks())
            .map(|i| wf.predecessors(TaskId(i)).len())
            .collect();
        let mut ready: Vec<TaskId> = (0..wf.num_tasks())
            .filter(|&i| indegree[i] == 0)
            .map(TaskId)
            .collect();
        let mut scheduled = 0usize;
        while !ready.is_empty() {
            // Highest priority first; ties by id.
            let (idx, &task) = ready
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    priority[a.0].total_cmp(&priority[b.0]).then(b.0.cmp(&a.0))
                })
                .ok_or_else(|| SchedError::Internal("empty ready set".into()))?;
            ready.swap_remove(idx);

            if let (true, Some(best_dev)) = (on_cp[task.0], best_dev) {
                let (start, finish) = ctx.eft(task, best_dev)?;
                ctx.place(task, best_dev, start, finish)?;
            } else {
                let (dev, start, finish) = ctx.best_eft(task)?;
                ctx.place(task, dev, start, finish)?;
            }
            scheduled += 1;
            for s in wf.successor_tasks(task) {
                indegree[s.0] -= 1;
                if indegree[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
        if scheduled != wf.num_tasks() {
            return Err(SchedError::Internal(format!(
                "scheduled {scheduled} of {} tasks",
                wf.num_tasks()
            )));
        }
        let _ = SimTime::ZERO;
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{epigenomics, montage};

    #[test]
    fn valid_on_scientific_workflows() {
        let p = presets::hpc_node();
        for wf in [montage(50, 1).unwrap(), epigenomics(60, 1).unwrap()] {
            let s = CpopScheduler::default().schedule(&wf, &p).unwrap();
            s.validate(&wf, &p).unwrap();
        }
    }

    #[test]
    fn critical_path_tasks_share_a_device() {
        // Deep chain-heavy workflow: the CP should be co-located.
        let wf = helios_workflow::generators::synthetic::chain(8, 50.0, 1e6, 2).unwrap();
        let p = presets::hpc_node();
        let s = CpopScheduler::default().schedule(&wf, &p).unwrap();
        s.validate(&wf, &p).unwrap();
        // A pure chain IS the critical path: every task on one device.
        let devices: std::collections::BTreeSet<_> =
            s.placements().iter().map(|pl| pl.device).collect();
        assert_eq!(devices.len(), 1, "{devices:?}");
    }

    #[test]
    fn comparable_to_heft() {
        use crate::{HeftScheduler, Scheduler as _};
        let p = presets::hpc_node();
        let wf = montage(80, 4).unwrap();
        let cpop = CpopScheduler::default().schedule(&wf, &p).unwrap();
        let heft = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let ratio = cpop.makespan().as_secs() / heft.makespan().as_secs();
        assert!(ratio < 3.0, "CPOP should be within 3x of HEFT, got {ratio}");
    }
}
