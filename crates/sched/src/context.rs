//! Shared machinery for list schedulers: cost tables, earliest-start /
//! earliest-finish computation, and incremental placement.

use helios_platform::{DeviceId, Platform};
use helios_sim::{SimDuration, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::error::SchedError;
use crate::schedule::{Placement, Schedule};
use crate::timeline::DeviceTimeline;

/// Incremental scheduling state shared by the list-scheduling algorithms.
///
/// Precomputes the task-on-device execution-time matrix at nominal DVFS
/// and tracks per-device timelines plus committed placements. All `est` /
/// `eft` queries use the platform's transfer model between the committed
/// placement of each predecessor and the candidate device.
///
/// # Examples
///
/// ```
/// use helios_platform::presets;
/// use helios_sched::SchedContext;
/// use helios_workflow::generators::montage;
/// use helios_workflow::TaskId;
///
/// let platform = presets::workstation();
/// let wf = montage(20, 1)?;
/// let mut ctx = SchedContext::new(&wf, &platform, true)?;
/// let entry = wf.entry_tasks()[0];
/// let (dev, start, finish) = ctx.best_eft(entry)?;
/// ctx.place(entry, dev, start, finish)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SchedContext<'a> {
    wf: &'a Workflow,
    platform: &'a Platform,
    /// `exec[task][device]` nominal execution times.
    exec: Vec<Vec<SimDuration>>,
    /// `pair_cost[from][to]` memoized interconnect terms, so the hot
    /// EST/EFT loops never re-walk routes or links.
    pair_cost: Vec<Vec<PairCost>>,
    /// `feasible_map[task][device]` placement feasibility, precomputed.
    feasible_map: Vec<Vec<bool>>,
    timelines: Vec<DeviceTimeline>,
    placements: Vec<Option<Placement>>,
    insertion: bool,
}

/// Memoized transfer terms for one device pair.
///
/// `Link` stores the route's summed latency and the bandwidth
/// denominator `min_bw * 1e9` exactly as `Interconnect::transfer_time`
/// computes them, so `latency + bytes / denom` reproduces the uncached
/// result bit for bit.
#[derive(Debug, Clone)]
enum PairCost {
    /// Empty route (same device): transfers are free at any size.
    Free,
    /// Routed pair: `latency + from_secs(bytes / denom)`.
    Link { latency: SimDuration, denom: f64 },
    /// No route or broken link; the platform call is replayed on demand
    /// so the caller sees the identical error.
    Unroutable,
}

impl<'a> SchedContext<'a> {
    /// Builds the context, precomputing the execution-time matrix.
    /// `insertion` selects the gap-filling placement policy.
    ///
    /// # Errors
    ///
    /// Propagates platform model errors.
    pub fn new(
        wf: &'a Workflow,
        platform: &'a Platform,
        insertion: bool,
    ) -> Result<SchedContext<'a>, SchedError> {
        let mut exec = Vec::with_capacity(wf.num_tasks());
        for t in wf.tasks() {
            let mut row = Vec::with_capacity(platform.num_devices());
            for d in platform.devices() {
                row.push(d.execution_time(t.cost(), d.nominal_level())?);
            }
            exec.push(row);
        }
        let n = platform.num_devices();
        let ic = platform.interconnect();
        let mut pair_cost = Vec::with_capacity(n);
        for from in 0..n {
            let mut row = Vec::with_capacity(n);
            for to in 0..n {
                row.push(match ic.route(DeviceId(from), DeviceId(to)) {
                    Err(_) => PairCost::Unroutable,
                    Ok(route) if route.is_empty() => PairCost::Free,
                    Ok(route) => {
                        // Same accumulation order as `transfer_time`, so
                        // the memoized terms are bitwise identical.
                        let mut latency = SimDuration::ZERO;
                        let mut min_bw = f64::INFINITY;
                        let mut broken = false;
                        for id in route {
                            match ic.link(id) {
                                Ok(link) => {
                                    latency += link.latency();
                                    min_bw = min_bw.min(link.bandwidth_gbs());
                                }
                                Err(_) => {
                                    broken = true;
                                    break;
                                }
                            }
                        }
                        if broken {
                            PairCost::Unroutable
                        } else {
                            PairCost::Link {
                                latency,
                                denom: min_bw * 1e9,
                            }
                        }
                    }
                });
            }
            pair_cost.push(row);
        }
        let feasible_map = wf
            .tasks()
            .iter()
            .map(|t| {
                platform
                    .devices()
                    .iter()
                    .map(|d| crate::placement_feasible(d, t))
                    .collect()
            })
            .collect();
        Ok(SchedContext {
            wf,
            platform,
            exec,
            pair_cost,
            feasible_map,
            timelines: vec![DeviceTimeline::new(); platform.num_devices()],
            placements: vec![None; wf.num_tasks()],
            insertion,
        })
    }

    /// Transfer time between committed devices through the memoized
    /// per-pair terms; falls back to the platform call (reproducing its
    /// exact error) for unroutable pairs.
    fn pair_transfer(
        &self,
        bytes: f64,
        from: DeviceId,
        to: DeviceId,
    ) -> Result<SimDuration, SchedError> {
        match &self.pair_cost[from.0][to.0] {
            PairCost::Free => Ok(SimDuration::ZERO),
            PairCost::Link { latency, denom } => {
                Ok(*latency + SimDuration::from_secs(bytes / denom))
            }
            PairCost::Unroutable => Ok(self.platform.transfer_time(bytes, from, to)?),
        }
    }

    /// The workflow being scheduled.
    #[must_use]
    pub fn workflow(&self) -> &Workflow {
        self.wf
    }

    /// The target platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Nominal execution time of `task` on `device`.
    #[must_use]
    pub fn exec_time(&self, task: TaskId, device: DeviceId) -> SimDuration {
        self.exec[task.0][device.0]
    }

    /// Whether `device` can host `task`: the working set fits its
    /// memory and its trust level clears the task's requirement.
    #[must_use]
    pub fn feasible(&self, task: TaskId, device: DeviceId) -> bool {
        self.feasible_map
            .get(task.0)
            .and_then(|row| row.get(device.0))
            .copied()
            .unwrap_or(false)
    }

    /// Devices (in id order) that can host `task`.
    pub fn feasible_devices(&self, task: TaskId) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.platform.num_devices())
            .map(DeviceId)
            .filter(move |&d| self.feasible(task, d))
    }

    /// The committed placement of `task`, if placed.
    #[must_use]
    pub fn placement(&self, task: TaskId) -> Option<&Placement> {
        self.placements[task.0].as_ref()
    }

    /// Whether every task has been placed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.placements.iter().all(Option::is_some)
    }

    /// The instant all of `task`'s input data can be available on
    /// `device`: the max over predecessors of `finish + transfer`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Unscheduled`] if a predecessor has not been
    /// placed yet, or a routing error.
    pub fn data_ready(&self, task: TaskId, device: DeviceId) -> Result<SimTime, SchedError> {
        let mut ready = SimTime::ZERO;
        for &e in self.wf.predecessors(task) {
            let edge = self.wf.edge(e);
            let pred = self.placements[edge.src.0]
                .as_ref()
                .ok_or(SchedError::Unscheduled(edge.src))?;
            let transfer = self.pair_transfer(edge.bytes, pred.device, device)?;
            ready = ready.max(pred.finish + transfer);
        }
        Ok(ready)
    }

    /// Reference implementation of [`SchedContext::data_ready`] that
    /// bypasses the memoized pair costs and queries the platform model
    /// directly. Exists so tests can assert the cache is bit-identical;
    /// not for production use.
    ///
    /// # Errors
    ///
    /// Same as [`SchedContext::data_ready`].
    #[doc(hidden)]
    pub fn data_ready_uncached(
        &self,
        task: TaskId,
        device: DeviceId,
    ) -> Result<SimTime, SchedError> {
        let mut ready = SimTime::ZERO;
        for &e in self.wf.predecessors(task) {
            let edge = self.wf.edge(e);
            let pred = self.placements[edge.src.0]
                .as_ref()
                .ok_or(SchedError::Unscheduled(edge.src))?;
            let transfer = self
                .platform
                .transfer_time(edge.bytes, pred.device, device)?;
            ready = ready.max(pred.finish + transfer);
        }
        Ok(ready)
    }

    /// Earliest start and finish of `task` on `device` given the current
    /// timeline (EST/EFT in list-scheduling terms).
    ///
    /// # Errors
    ///
    /// Same as [`SchedContext::data_ready`].
    pub fn eft(&self, task: TaskId, device: DeviceId) -> Result<(SimTime, SimTime), SchedError> {
        let ready = self.data_ready(task, device)?;
        let exec = self.exec[task.0][device.0];
        let start = self.timelines[device.0].earliest_start(ready, exec, self.insertion);
        Ok((start, start + exec))
    }

    /// The memory-feasible device minimizing EFT for `task`, with its
    /// start/finish. Ties break toward the lower device id
    /// (deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::NoFeasibleDevice`] when no device can hold
    /// the task's working set; otherwise same as
    /// [`SchedContext::data_ready`].
    pub fn best_eft(&self, task: TaskId) -> Result<(DeviceId, SimTime, SimTime), SchedError> {
        // Gather each predecessor's (finish, device, bytes) once for the
        // whole device sweep instead of re-walking edge and placement
        // tables per probe.
        let pred_edges = self.wf.predecessors(task);
        let mut preds: Vec<(SimTime, DeviceId, f64)> = Vec::with_capacity(pred_edges.len());
        for &e in pred_edges {
            let edge = self.wf.edge(e);
            let pred = self.placements[edge.src.0]
                .as_ref()
                .ok_or(SchedError::Unscheduled(edge.src))?;
            preds.push((pred.finish, pred.device, edge.bytes));
        }
        let mut best: Option<(DeviceId, SimTime, SimTime)> = None;
        for d in 0..self.platform.num_devices() {
            if !self.feasible_map[task.0][d] {
                continue;
            }
            let dev = DeviceId(d);
            let mut ready = SimTime::ZERO;
            for &(pred_finish, pred_dev, bytes) in &preds {
                let transfer = self.pair_transfer(bytes, pred_dev, dev)?;
                ready = ready.max(pred_finish + transfer);
            }
            let exec = self.exec[task.0][d];
            let start = self.timelines[d].earliest_start(ready, exec, self.insertion);
            let finish = start + exec;
            let better = match best {
                None => true,
                Some((_, _, bf)) => finish < bf,
            };
            if better {
                best = Some((dev, start, finish));
            }
        }
        best.ok_or(SchedError::NoFeasibleDevice(task))
    }

    /// Commits `task` to `device` over `[start, finish)` at the device's
    /// nominal DVFS level.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Internal`] on a double placement.
    ///
    /// # Panics
    ///
    /// Panics if the reservation overlaps an existing one — callers must
    /// pass intervals obtained from [`SchedContext::eft`].
    pub fn place(
        &mut self,
        task: TaskId,
        device: DeviceId,
        start: SimTime,
        finish: SimTime,
    ) -> Result<(), SchedError> {
        if self.placements[task.0].is_some() {
            return Err(SchedError::Internal(format!("task {task} placed twice")));
        }
        self.timelines[device.0].reserve(start, finish);
        let level = self.platform.device(device)?.nominal_level();
        self.placements[task.0] = Some(Placement {
            task,
            device,
            level,
            start,
            finish,
        });
        Ok(())
    }

    /// Reverts a placement made with [`SchedContext::place`] (used by
    /// lookahead schedulers to evaluate tentative placements).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Unscheduled`] if the task is not placed.
    pub fn unplace(&mut self, task: TaskId) -> Result<(), SchedError> {
        let p = self.placements[task.0]
            .take()
            .ok_or(SchedError::Unscheduled(task))?;
        self.timelines[p.device.0].release(p.start, p.finish);
        Ok(())
    }

    /// Finalizes the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Unscheduled`] if any task is missing.
    pub fn into_schedule(self) -> Result<Schedule, SchedError> {
        let mut placements = Vec::with_capacity(self.placements.len());
        for (i, p) in self.placements.into_iter().enumerate() {
            placements.push(p.ok_or(SchedError::Unscheduled(TaskId(i)))?);
        }
        Schedule::new(placements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_platform::{ComputeCost, KernelClass};
    use helios_workflow::{Task, WorkflowBuilder};

    fn chain2() -> Workflow {
        let mut b = WorkflowBuilder::new("c2");
        let cost = ComputeCost::new(100.0, 0.0, KernelClass::DenseLinearAlgebra);
        let a = b.add_task(Task::new("a", "s", cost));
        let c = b.add_task(Task::new("b", "s", cost));
        b.add_dep(a, c, 100e6).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn entry_task_data_ready_is_zero() {
        let wf = chain2();
        let p = presets::workstation();
        let ctx = SchedContext::new(&wf, &p, true).unwrap();
        assert_eq!(
            ctx.data_ready(TaskId(0), DeviceId(0)).unwrap(),
            SimTime::ZERO
        );
        // Successor with unplaced predecessor errors.
        assert!(matches!(
            ctx.data_ready(TaskId(1), DeviceId(0)),
            Err(SchedError::Unscheduled(TaskId(0)))
        ));
    }

    #[test]
    fn transfer_cost_included_cross_device() {
        let wf = chain2();
        let p = presets::workstation();
        let mut ctx = SchedContext::new(&wf, &p, true).unwrap();
        let (d, s, f) = ctx.best_eft(TaskId(0)).unwrap();
        ctx.place(TaskId(0), d, s, f).unwrap();
        // Same device: no transfer. Different device: transfer > 0.
        let same = ctx.data_ready(TaskId(1), d).unwrap();
        let other = DeviceId(if d.0 == 0 { 1 } else { 0 });
        let cross = ctx.data_ready(TaskId(1), other).unwrap();
        assert_eq!(same, f);
        assert!(cross > f);
    }

    #[test]
    fn best_eft_prefers_faster_device() {
        let wf = chain2();
        let p = presets::workstation();
        let ctx = SchedContext::new(&wf, &p, true).unwrap();
        // Dense linear algebra: the GPU (device 2) dominates.
        let (d, _, _) = ctx.best_eft(TaskId(0)).unwrap();
        assert_eq!(p.device(d).unwrap().name(), "gpu0");
    }

    #[test]
    fn double_place_rejected() {
        let wf = chain2();
        let p = presets::workstation();
        let mut ctx = SchedContext::new(&wf, &p, true).unwrap();
        let (d, s, f) = ctx.best_eft(TaskId(0)).unwrap();
        ctx.place(TaskId(0), d, s, f).unwrap();
        assert!(ctx
            .place(TaskId(0), d, f, f + SimDuration::from_secs(1.0))
            .is_err());
    }

    #[test]
    fn incomplete_schedule_rejected() {
        let wf = chain2();
        let p = presets::workstation();
        let mut ctx = SchedContext::new(&wf, &p, true).unwrap();
        let (d, s, f) = ctx.best_eft(TaskId(0)).unwrap();
        ctx.place(TaskId(0), d, s, f).unwrap();
        assert!(!ctx.is_complete());
        assert!(matches!(
            ctx.into_schedule(),
            Err(SchedError::Unscheduled(TaskId(1)))
        ));
    }
}
