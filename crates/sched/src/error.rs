//! Error type for scheduling.

use std::fmt;

use helios_platform::PlatformError;
use helios_workflow::{TaskId, WorkflowError};

/// Errors produced while computing or validating a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A platform model/routing error surfaced during cost evaluation.
    Platform(PlatformError),
    /// A workflow structural error surfaced during traversal.
    Workflow(WorkflowError),
    /// The schedule is missing a placement for a task.
    Unscheduled(TaskId),
    /// No device has enough memory to hold the task's working set.
    NoFeasibleDevice(TaskId),
    /// A task starts before a predecessor's data has arrived.
    PrecedenceViolation {
        /// The violating task.
        task: TaskId,
        /// The predecessor whose data arrives late.
        pred: TaskId,
        /// Seconds by which the start precedes data availability.
        deficit_secs: f64,
    },
    /// Two tasks overlap on the same single-slot device.
    Overlap {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
    },
    /// The scheduler was given an empty ready set or hit an internal
    /// invariant violation; the message names it.
    Internal(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Platform(e) => write!(f, "platform error: {e}"),
            SchedError::Workflow(e) => write!(f, "workflow error: {e}"),
            SchedError::Unscheduled(t) => write!(f, "task {t} has no placement"),
            SchedError::NoFeasibleDevice(t) => {
                write!(f, "no device can hold the working set of task {t}")
            }
            SchedError::PrecedenceViolation {
                task,
                pred,
                deficit_secs,
            } => write!(
                f,
                "task {task} starts {deficit_secs:.6}s before data from {pred} arrives"
            ),
            SchedError::Overlap { a, b } => {
                write!(f, "tasks {a} and {b} overlap on the same device")
            }
            SchedError::Internal(msg) => write!(f, "internal scheduler error: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Platform(e) => Some(e),
            SchedError::Workflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for SchedError {
    fn from(e: PlatformError) -> Self {
        SchedError::Platform(e)
    }
}

impl From<WorkflowError> for SchedError {
    fn from(e: WorkflowError) -> Self {
        SchedError::Workflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedError::Unscheduled(TaskId(3));
        assert!(e.to_string().contains("t3"));
        let e: SchedError = PlatformError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = SchedError::Overlap {
            a: TaskId(0),
            b: TaskId(1),
        };
        assert!(e.to_string().contains("overlap"));
    }
}
