//! PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa, 2014).

use helios_platform::{DeviceId, Platform};
use helios_workflow::{TaskId, Workflow};

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::Scheduler;

/// The PEFT list scheduler. An *optimistic cost table* `OCT[t][d]` holds,
/// for every task/device pair, the optimistic remaining cost to finish
/// the workflow if `t` runs on `d` (assuming every descendant gets its
/// ideal device). Tasks are ordered by mean OCT and placed on the device
/// minimizing `EFT + OCT` — a one-number lookahead that beats plain HEFT
/// when device affinities differ sharply across the DAG.
#[derive(Debug, Clone, Default)]
pub struct PeftScheduler {
    _private: (),
}

/// Computes the optimistic cost table: `oct[task][device]`.
pub(crate) fn optimistic_cost_table(
    wf: &Workflow,
    platform: &Platform,
) -> Result<Vec<Vec<f64>>, SchedError> {
    let n = wf.num_tasks();
    let m = platform.num_devices();
    // exec[t][d]
    let mut exec = vec![vec![0.0f64; m]; n];
    for (i, t) in wf.tasks().iter().enumerate() {
        for (d, slot) in exec[i].iter_mut().enumerate() {
            let dev = platform.device(DeviceId(d))?;
            *slot = dev.execution_time(t.cost(), dev.nominal_level())?.as_secs();
        }
    }
    let mut oct = vec![vec![0.0f64; m]; n];
    for &t in wf.topo_order().iter().rev() {
        for d in 0..m {
            let mut worst_child = 0.0f64;
            for &e in wf.successors(t) {
                let edge = wf.edge(e);
                let comm = platform.mean_transfer_time(edge.bytes)?.as_secs();
                let mut best_w = f64::INFINITY;
                for w in 0..m {
                    let comm_cost = if w == d { 0.0 } else { comm };
                    let cost = oct[edge.dst.0][w] + exec[edge.dst.0][w] + comm_cost;
                    best_w = best_w.min(cost);
                }
                worst_child = worst_child.max(best_w);
            }
            oct[t.0][d] = worst_child;
        }
    }
    Ok(oct)
}

impl Scheduler for PeftScheduler {
    fn name(&self) -> &str {
        "peft"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let oct = optimistic_cost_table(wf, platform)?;
        let m = platform.num_devices() as f64;
        let rank_oct: Vec<f64> = oct.iter().map(|row| row.iter().sum::<f64>() / m).collect();

        let mut ctx = SchedContext::new(wf, platform, true)?;
        let mut indegree: Vec<usize> = (0..wf.num_tasks())
            .map(|i| wf.predecessors(TaskId(i)).len())
            .collect();
        let mut ready: Vec<TaskId> = (0..wf.num_tasks())
            .filter(|&i| indegree[i] == 0)
            .map(TaskId)
            .collect();
        while !ready.is_empty() {
            let (idx, &task) = ready
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    rank_oct[a.0].total_cmp(&rank_oct[b.0]).then(b.0.cmp(&a.0))
                })
                .ok_or_else(|| SchedError::Internal("empty ready set".into()))?;
            ready.swap_remove(idx);

            // Minimize O_EFT = EFT + OCT, among feasible devices.
            let mut best: Option<(DeviceId, _, _, f64)> = None;
            for dev in ctx.feasible_devices(task).collect::<Vec<_>>() {
                let (start, finish) = ctx.eft(task, dev)?;
                let o_eft = finish.as_secs() + oct[task.0][dev.0];
                if best.is_none_or(|(_, _, _, b)| o_eft < b) {
                    best = Some((dev, start, finish, o_eft));
                }
            }
            let (dev, start, finish, _) = best.ok_or(SchedError::NoFeasibleDevice(task))?;
            ctx.place(task, dev, start, finish)?;
            for s in wf.successor_tasks(task) {
                indegree[s.0] -= 1;
                if indegree[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{ligo_inspiral, montage};

    #[test]
    fn oct_is_zero_for_exit_tasks() {
        let wf = montage(30, 1).unwrap();
        let p = presets::workstation();
        let oct = optimistic_cost_table(&wf, &p).unwrap();
        for exit in wf.exit_tasks() {
            assert!(oct[exit.0].iter().all(|&v| v == 0.0));
        }
        // Entries have positive remaining cost.
        for entry in wf.entry_tasks() {
            assert!(oct[entry.0].iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn oct_decreases_along_paths() {
        let wf = helios_workflow::generators::synthetic::chain(6, 50.0, 1e6, 1).unwrap();
        let p = presets::workstation();
        let oct = optimistic_cost_table(&wf, &p).unwrap();
        for i in 0..5 {
            assert!(oct[i][0] > oct[i + 1][0], "OCT must shrink toward the exit");
        }
    }

    #[test]
    fn valid_schedules() {
        let p = presets::hpc_node();
        for seed in 0..4 {
            let wf = ligo_inspiral(60, seed).unwrap();
            let s = PeftScheduler::default().schedule(&wf, &p).unwrap();
            s.validate(&wf, &p).unwrap();
        }
    }

    #[test]
    fn competitive_with_heft() {
        use crate::{HeftScheduler, Scheduler as _};
        let p = presets::hpc_node();
        let mut peft_total = 0.0;
        let mut heft_total = 0.0;
        for seed in 0..8 {
            let wf = montage(60, seed).unwrap();
            peft_total += PeftScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
            heft_total += HeftScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
        }
        assert!(
            peft_total < 1.5 * heft_total,
            "PEFT {peft_total} vs HEFT {heft_total}"
        );
    }
}
