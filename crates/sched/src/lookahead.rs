//! Lookahead-HEFT: device selection by bounded-depth child impact
//! (Bittencourt et al., "DAG scheduling using a lookahead variant of
//! HEFT", 2010).

use helios_platform::{DeviceId, Platform};
use helios_workflow::{TaskId, Workflow};

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::heft::rank_order;
use crate::schedule::Schedule;
use crate::Scheduler;

/// HEFT with bounded lookahead: when choosing a device for a task, each
/// candidate is evaluated by tentatively committing it and measuring the
/// worst earliest finish time among the task's *evaluable* descendants
/// (those whose other parents are already placed), down to `depth`
/// generations. Depth 1 is the published one-step variant; each extra
/// level tentatively commits the evaluable children at their best EFT
/// and recurses, multiplying cost by roughly the branching factor per
/// level. Usually a few percent better than HEFT on
/// communication-heavy DAGs.
#[derive(Debug, Clone)]
pub struct LookaheadScheduler {
    depth: u32,
}

impl LookaheadScheduler {
    /// Creates the scheduler with a lookahead depth (clamped to >= 1).
    #[must_use]
    pub fn with_depth(depth: u32) -> LookaheadScheduler {
        LookaheadScheduler {
            depth: depth.max(1),
        }
    }

    /// The lookahead depth in generations of descendants.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

impl Default for LookaheadScheduler {
    /// One-step lookahead, the published variant.
    fn default() -> Self {
        LookaheadScheduler::with_depth(1)
    }
}

/// Worst earliest finish time among the evaluable descendants of
/// `task` (already tentatively placed and marked in `placed`), down to
/// `depth` generations. Levels beyond the first commit each evaluable
/// child at its best EFT before recursing, and roll every tentative
/// placement back before returning.
fn worst_descendant_eft(
    ctx: &mut SchedContext,
    wf: &Workflow,
    placed: &mut [bool],
    task: TaskId,
    depth: u32,
    baseline: f64,
) -> Result<f64, SchedError> {
    let evaluable: Vec<TaskId> = wf
        .successor_tasks(task)
        .filter(|&c| !placed[c.0] && wf.predecessor_tasks(c).all(|p| placed[p.0]))
        .collect();
    let mut worst = baseline;
    for &c in &evaluable {
        let (dev, start, finish) = ctx.best_eft(c)?;
        worst = worst.max(finish.as_secs());
        if depth > 1 {
            ctx.place(c, dev, start, finish)?;
            placed[c.0] = true;
            worst = worst.max(worst_descendant_eft(
                ctx,
                wf,
                placed,
                c,
                depth - 1,
                finish.as_secs(),
            )?);
            placed[c.0] = false;
            ctx.unplace(c)?;
        }
    }
    Ok(worst)
}

impl Scheduler for LookaheadScheduler {
    fn name(&self) -> &str {
        "lookahead"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let order = rank_order(wf, platform)?;
        let mut placed = vec![false; wf.num_tasks()];
        let mut ctx = SchedContext::new(wf, platform, true)?;
        for task in order {
            // Children whose every other parent is already placed can have
            // their EFT evaluated once `task` is tentatively committed.
            let has_evaluable = wf
                .successor_tasks(task)
                .any(|c| wf.predecessor_tasks(c).all(|p| p == task || placed[p.0]));

            let mut best: Option<(DeviceId, _, _, f64)> = None;
            for dev in ctx.feasible_devices(task).collect::<Vec<_>>() {
                let (start, finish) = ctx.eft(task, dev)?;
                let score = if !has_evaluable {
                    finish.as_secs()
                } else {
                    ctx.place(task, dev, start, finish)?;
                    placed[task.0] = true;
                    let worst = worst_descendant_eft(
                        &mut ctx,
                        wf,
                        &mut placed,
                        task,
                        self.depth,
                        finish.as_secs(),
                    )?;
                    placed[task.0] = false;
                    ctx.unplace(task)?;
                    worst
                };
                if best.is_none_or(|(_, _, _, b)| score < b) {
                    best = Some((dev, start, finish, score));
                }
            }
            let (dev, start, finish, _) = best.ok_or(SchedError::NoFeasibleDevice(task))?;
            ctx.place(task, dev, start, finish)?;
            placed[task.0] = true;
        }
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{montage, sipht};

    #[test]
    fn valid_schedules() {
        let p = presets::hpc_node();
        for wf in [montage(50, 1).unwrap(), sipht(40, 1).unwrap()] {
            let s = LookaheadScheduler::default().schedule(&wf, &p).unwrap();
            s.validate(&wf, &p).unwrap();
        }
    }

    #[test]
    fn depth_one_is_the_default_and_zero_clamps() {
        assert_eq!(LookaheadScheduler::default().depth(), 1);
        assert_eq!(LookaheadScheduler::with_depth(0).depth(), 1);
        // Depth 1 through the explicit constructor is the same machine
        // as the default.
        let p = presets::hpc_node();
        let wf = montage(50, 3).unwrap();
        let a = LookaheadScheduler::default().schedule(&wf, &p).unwrap();
        let b = LookaheadScheduler::with_depth(1).schedule(&wf, &p).unwrap();
        assert_eq!(a.makespan(), b.makespan());
        for (x, y) in a.placements().iter().zip(b.placements()) {
            assert_eq!(x.device, y.device, "task {:?}", x.task);
        }
    }

    #[test]
    fn deeper_lookahead_stays_valid_and_deterministic() {
        let p = presets::hpc_node();
        for wf in [montage(40, 2).unwrap(), sipht(40, 5).unwrap()] {
            for depth in [2, 3] {
                let s = LookaheadScheduler::with_depth(depth)
                    .schedule(&wf, &p)
                    .unwrap();
                s.validate(&wf, &p).unwrap();
                let again = LookaheadScheduler::with_depth(depth)
                    .schedule(&wf, &p)
                    .unwrap();
                assert_eq!(s.makespan(), again.makespan(), "depth {depth}");
            }
        }
    }

    #[test]
    fn close_to_heft_quality() {
        use crate::{HeftScheduler, Scheduler as _};
        let p = presets::hpc_node();
        let mut la = 0.0;
        let mut heft = 0.0;
        for seed in 0..6 {
            let wf = montage(60, seed).unwrap();
            la += LookaheadScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
            heft += HeftScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
        }
        assert!(la < 1.25 * heft, "lookahead {la} vs HEFT {heft}");
    }
}
