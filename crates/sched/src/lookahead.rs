//! Lookahead-HEFT: device selection by one-step child impact
//! (Bittencourt et al., "DAG scheduling using a lookahead variant of
//! HEFT", 2010).

use helios_platform::{DeviceId, Platform};
use helios_workflow::Workflow;

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::heft::rank_order;
use crate::schedule::Schedule;
use crate::Scheduler;

/// HEFT with one-step lookahead: when choosing a device for a task, each
/// candidate is evaluated by tentatively committing it and measuring the
/// worst earliest finish time among the task's *evaluable* children
/// (those whose other parents are already placed). Roughly `devices ×
/// children` more expensive than HEFT per task, usually a few percent
/// better on communication-heavy DAGs.
#[derive(Debug, Clone, Default)]
pub struct LookaheadScheduler {
    _private: (),
}

impl Scheduler for LookaheadScheduler {
    fn name(&self) -> &str {
        "lookahead"
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let order = rank_order(wf, platform)?;
        let mut placed = vec![false; wf.num_tasks()];
        let mut ctx = SchedContext::new(wf, platform, true)?;
        for task in order {
            // Children whose every other parent is already placed can have
            // their EFT evaluated once `task` is tentatively committed.
            let evaluable: Vec<_> = wf
                .successor_tasks(task)
                .filter(|&c| wf.predecessor_tasks(c).all(|p| p == task || placed[p.0]))
                .collect();

            let mut best: Option<(DeviceId, _, _, f64)> = None;
            for dev in ctx.feasible_devices(task).collect::<Vec<_>>() {
                let (start, finish) = ctx.eft(task, dev)?;
                let score = if evaluable.is_empty() {
                    finish.as_secs()
                } else {
                    ctx.place(task, dev, start, finish)?;
                    let mut worst_child = finish.as_secs();
                    for &c in &evaluable {
                        let (_, _, cf) = ctx.best_eft(c)?;
                        worst_child = worst_child.max(cf.as_secs());
                    }
                    ctx.unplace(task)?;
                    worst_child
                };
                if best.is_none_or(|(_, _, _, b)| score < b) {
                    best = Some((dev, start, finish, score));
                }
            }
            let (dev, start, finish, _) = best.ok_or(SchedError::NoFeasibleDevice(task))?;
            ctx.place(task, dev, start, finish)?;
            placed[task.0] = true;
        }
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{montage, sipht};

    #[test]
    fn valid_schedules() {
        let p = presets::hpc_node();
        for wf in [montage(50, 1).unwrap(), sipht(40, 1).unwrap()] {
            let s = LookaheadScheduler::default().schedule(&wf, &p).unwrap();
            s.validate(&wf, &p).unwrap();
        }
    }

    #[test]
    fn close_to_heft_quality() {
        use crate::{HeftScheduler, Scheduler as _};
        let p = presets::hpc_node();
        let mut la = 0.0;
        let mut heft = 0.0;
        for seed in 0..6 {
            let wf = montage(60, seed).unwrap();
            la += LookaheadScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
            heft += HeftScheduler::default()
                .schedule(&wf, &p)
                .unwrap()
                .makespan()
                .as_secs();
        }
        assert!(la < 1.25 * heft, "lookahead {la} vs HEFT {heft}");
    }
}
