//! Static and dynamic scheduling algorithms for heterogeneous workflows.
//!
//! A [`Scheduler`] maps a [`Workflow`] onto a
//! [`Platform`], producing a [`Schedule`]: one
//! [`Placement`] per task (device, DVFS level, start and finish time).
//! Schedules are *plans* built from the platform's cost models; the
//! `helios-core` engine executes them (and can deviate when reality —
//! noise, faults, link contention — intervenes).
//!
//! Implemented algorithms:
//!
//! | scheduler | family | reference behaviour |
//! |---|---|---|
//! | [`HeftScheduler`] | list | upward-rank order, insertion-based earliest finish time |
//! | [`CpopScheduler`] | list | critical path pinned to its best device |
//! | [`PeftScheduler`] | list | optimistic cost table lookahead |
//! | [`LookaheadScheduler`] | list | HEFT with one-step child lookahead |
//! | [`MinMinScheduler`] | batch | min–min completion time |
//! | [`MaxMinScheduler`] | batch | max–min completion time |
//! | [`MctScheduler`] | immediate | minimum completion time |
//! | [`MetScheduler`] | immediate | minimum execution time (ignores queues) |
//! | [`OlbScheduler`] | immediate | opportunistic load balancing |
//! | [`RoundRobinScheduler`] | baseline | cyclic device assignment |
//! | [`RandomScheduler`] | baseline | uniform random assignment |
//! | [`AnnealingScheduler`] | metaheuristic | simulated annealing seeded by HEFT |
//!
//! All schedulers are **memory-aware**: a task whose working set exceeds
//! a device's memory is never placed there
//! ([`SchedError::NoFeasibleDevice`] when nothing fits).
//!
//! # Examples
//!
//! ```
//! use helios_platform::presets;
//! use helios_sched::{HeftScheduler, Scheduler};
//! use helios_workflow::generators::montage;
//!
//! let platform = presets::hpc_node();
//! let wf = montage(50, 1)?;
//! let schedule = HeftScheduler::default().schedule(&wf, &platform)?;
//! schedule.validate(&wf, &platform)?;
//! println!("makespan: {}", schedule.makespan());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annealing;
mod batch;
mod context;
mod cpop;
mod error;
mod heft;
mod immediate;
mod lookahead;
pub mod metrics;
mod peft;
pub mod reliability;
mod schedule;
mod timeline;

pub use annealing::AnnealingScheduler;
pub use batch::{MaxMinScheduler, MinMinScheduler};
pub use context::SchedContext;
pub use cpop::CpopScheduler;
pub use error::SchedError;
pub use heft::HeftScheduler;
pub use immediate::{
    MctScheduler, MetScheduler, OlbScheduler, RandomScheduler, RoundRobinScheduler,
};
pub use lookahead::LookaheadScheduler;
pub use peft::PeftScheduler;
pub use schedule::{Placement, Schedule};
pub use timeline::DeviceTimeline;

use helios_platform::{Device, Platform};
use helios_workflow::{Task, Workflow};

/// The placement feasibility predicate every scheduler (and the engine's
/// dispatchers) enforces: the task's working set fits the device's
/// memory **and** the device's trust level clears the task's security
/// requirement (see the survey's observation that a heterogeneous
/// system is only as secure as its weakest component).
#[must_use]
pub fn placement_feasible(device: &Device, task: &Task) -> bool {
    device.fits(task.cost()) && device.trust_level() >= task.required_trust()
}

/// A static workflow scheduler: given the full DAG and the platform,
/// produce a complete placement plan.
pub trait Scheduler {
    /// A short stable name for reports ("heft", "min-min", …).
    fn name(&self) -> &str;

    /// Computes a complete, valid schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError`] if the workflow and platform are
    /// incompatible (e.g. unroutable device pairs) or an internal
    /// invariant fails.
    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError>;
}

/// Every scheduler in the crate with default configuration — the lineup
/// used by the comparison experiments (figure F3).
#[must_use]
pub fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(HeftScheduler::default()),
        Box::new(CpopScheduler::default()),
        Box::new(PeftScheduler::default()),
        Box::new(LookaheadScheduler::default()),
        Box::new(MinMinScheduler::default()),
        Box::new(MaxMinScheduler::default()),
        Box::new(MctScheduler::default()),
        Box::new(MetScheduler::default()),
        Box::new(OlbScheduler::default()),
        Box::new(RoundRobinScheduler::default()),
        Box::new(RandomScheduler::new(0)),
        Box::new(AnnealingScheduler::new(500, 0)),
    ]
}

/// Looks up a scheduler from [`all_schedulers`] by its report name
/// (`"heft"`, `"min-min"`, …). Returns `None` for unknown names.
#[must_use]
pub fn scheduler_by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    all_schedulers().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{montage, WorkflowClass};

    #[test]
    fn every_scheduler_produces_a_valid_schedule() {
        let platform = presets::hpc_node();
        let wf = montage(50, 3).unwrap();
        for s in all_schedulers() {
            let sched = s
                .schedule(&wf, &platform)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            sched
                .validate(&wf, &platform)
                .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", s.name()));
            assert!(sched.makespan().as_secs() > 0.0, "{}", s.name());
        }
    }

    #[test]
    fn every_scheduler_handles_every_family() {
        let platform = presets::workstation();
        for class in WorkflowClass::ALL {
            let wf = class.generate(40, 1).unwrap();
            for s in all_schedulers() {
                let sched = s
                    .schedule(&wf, &platform)
                    .unwrap_or_else(|e| panic!("{}/{class}: {e}", s.name()));
                sched
                    .validate(&wf, &platform)
                    .unwrap_or_else(|e| panic!("{}/{class}: {e}", s.name()));
            }
        }
    }

    #[test]
    fn heft_beats_baselines_on_average() {
        let platform = presets::hpc_node();
        let heft = HeftScheduler::default();
        let rand = RandomScheduler::new(7);
        let mut heft_total = 0.0;
        let mut rand_total = 0.0;
        for seed in 0..10 {
            let wf = montage(80, seed).unwrap();
            heft_total += heft.schedule(&wf, &platform).unwrap().makespan().as_secs();
            rand_total += rand.schedule(&wf, &platform).unwrap().makespan().as_secs();
        }
        assert!(
            heft_total < rand_total,
            "HEFT {heft_total} should beat random {rand_total}"
        );
    }

    #[test]
    fn scheduler_by_name_resolves_every_lineup_member() {
        for s in all_schedulers() {
            let found =
                scheduler_by_name(s.name()).unwrap_or_else(|| panic!("{} must resolve", s.name()));
            assert_eq!(found.name(), s.name());
        }
        assert!(scheduler_by_name("sjf").is_none());
    }

    #[test]
    fn scheduler_names_are_unique() {
        let names: Vec<String> = all_schedulers()
            .iter()
            .map(|s| s.name().to_owned())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
