//! Per-device busy-interval timelines with insertion-based placement.

use helios_sim::{SimDuration, SimTime};

/// The reservation timeline of one device: a sorted list of disjoint busy
/// intervals. Supports the two placement policies of the list-scheduling
/// literature:
///
/// * **insertion** — a task may fill an idle gap between existing
///   reservations (HEFT's insertion policy),
/// * **append** — a task may only start after the last reservation.
///
/// # Examples
///
/// ```
/// use helios_sched::DeviceTimeline;
/// use helios_sim::{SimDuration, SimTime};
///
/// let mut tl = DeviceTimeline::new();
/// tl.reserve(SimTime::from_secs(0.0), SimTime::from_secs(2.0));
/// tl.reserve(SimTime::from_secs(5.0), SimTime::from_secs(6.0));
/// // A 1-second task ready at t=1 fits in the [2, 5) gap.
/// let start = tl.earliest_start(SimTime::from_secs(1.0),
///                               SimDuration::from_secs(1.0), true);
/// assert_eq!(start.as_secs(), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeviceTimeline {
    /// Disjoint, sorted (start, finish) busy intervals.
    busy: Vec<(SimTime, SimTime)>,
}

impl DeviceTimeline {
    /// Creates an empty timeline.
    #[must_use]
    pub fn new() -> DeviceTimeline {
        DeviceTimeline::default()
    }

    /// The busy intervals, sorted by start.
    #[must_use]
    pub fn busy_intervals(&self) -> &[(SimTime, SimTime)] {
        &self.busy
    }

    /// Finish time of the last reservation ([`SimTime::ZERO`] when empty).
    #[must_use]
    pub fn ready_time(&self) -> SimTime {
        self.busy.last().map_or(SimTime::ZERO, |&(_, f)| f)
    }

    /// The earliest start ≥ `ready` at which a task of length `duration`
    /// fits. With `insertion`, idle gaps between reservations are
    /// candidates; without it, only the region after the last reservation.
    #[must_use]
    pub fn earliest_start(
        &self,
        ready: SimTime,
        duration: SimDuration,
        insertion: bool,
    ) -> SimTime {
        if !insertion {
            return self.ready_time().max(ready);
        }
        let mut candidate = ready;
        for &(start, finish) in &self.busy {
            if candidate + duration <= start {
                return candidate;
            }
            candidate = candidate.max(finish);
        }
        candidate
    }

    /// Reserves `[start, finish)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is inverted or overlaps an existing
    /// reservation — callers must only reserve what
    /// [`DeviceTimeline::earliest_start`] returned.
    pub fn reserve(&mut self, start: SimTime, finish: SimTime) {
        assert!(start <= finish, "inverted reservation {start}..{finish}");
        let idx = self.busy.partition_point(|&(s, _)| s < start);
        let no_overlap_prev = idx == 0 || self.busy[idx - 1].1 <= start;
        let no_overlap_next = idx == self.busy.len() || finish <= self.busy[idx].0;
        assert!(
            no_overlap_prev && no_overlap_next,
            "reservation {start}..{finish} overlaps an existing interval"
        );
        self.busy.insert(idx, (start, finish));
    }

    /// Releases a previously reserved `[start, finish)` interval.
    ///
    /// # Panics
    ///
    /// Panics if the exact interval is not currently reserved — releases
    /// must mirror earlier [`DeviceTimeline::reserve`] calls.
    pub fn release(&mut self, start: SimTime, finish: SimTime) {
        let idx = self
            .busy
            .iter()
            .position(|&(s, f)| s == start && f == finish)
            .unwrap_or_else(|| panic!("release of unreserved interval {start}..{finish}"));
        self.busy.remove(idx);
    }

    /// Total busy time.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy.iter().map(|&(s, f)| f.saturating_since(s)).sum()
    }

    /// Number of reservations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// Returns `true` when nothing is reserved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn empty_timeline_starts_at_ready() {
        let tl = DeviceTimeline::new();
        assert_eq!(tl.earliest_start(t(3.0), d(1.0), true), t(3.0));
        assert_eq!(tl.earliest_start(t(3.0), d(1.0), false), t(3.0));
        assert_eq!(tl.ready_time(), SimTime::ZERO);
        assert!(tl.is_empty());
    }

    #[test]
    fn insertion_finds_gap() {
        let mut tl = DeviceTimeline::new();
        tl.reserve(t(0.0), t(2.0));
        tl.reserve(t(5.0), t(6.0));
        // Fits in [2, 5).
        assert_eq!(tl.earliest_start(t(0.0), d(3.0), true), t(2.0));
        // Too long for the gap: goes after the end.
        assert_eq!(tl.earliest_start(t(0.0), d(4.0), true), t(6.0));
        // Ready time inside the gap.
        assert_eq!(tl.earliest_start(t(3.0), d(1.0), true), t(3.0));
        // Without insertion: always after the last interval.
        assert_eq!(tl.earliest_start(t(0.0), d(0.5), false), t(6.0));
    }

    #[test]
    fn gap_respects_ready_time() {
        let mut tl = DeviceTimeline::new();
        tl.reserve(t(0.0), t(1.0));
        tl.reserve(t(2.0), t(3.0));
        // Gap [1,2) exists but task only ready at 1.5 and needs 1s: no fit.
        assert_eq!(tl.earliest_start(t(1.5), d(1.0), true), t(3.0));
        // Needs 0.5s: fits at 1.5.
        assert_eq!(tl.earliest_start(t(1.5), d(0.5), true), t(1.5));
    }

    #[test]
    fn reserve_maintains_sorted_disjoint() {
        let mut tl = DeviceTimeline::new();
        tl.reserve(t(5.0), t(6.0));
        tl.reserve(t(0.0), t(1.0));
        tl.reserve(t(2.0), t(3.0));
        let starts: Vec<f64> = tl
            .busy_intervals()
            .iter()
            .map(|&(s, _)| s.as_secs())
            .collect();
        assert_eq!(starts, vec![0.0, 2.0, 5.0]);
        assert_eq!(tl.busy_time(), d(3.0));
        assert_eq!(tl.len(), 3);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_reserve_panics() {
        let mut tl = DeviceTimeline::new();
        tl.reserve(t(0.0), t(2.0));
        tl.reserve(t(1.0), t(3.0));
    }

    #[test]
    fn zero_length_reservations_allowed() {
        let mut tl = DeviceTimeline::new();
        tl.reserve(t(1.0), t(1.0));
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.busy_time(), d(0.0));
        // Another task can start at the same instant.
        assert_eq!(tl.earliest_start(t(1.0), d(1.0), true), t(1.0));
    }
}
