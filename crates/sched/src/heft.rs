//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

use helios_platform::Platform;
use helios_workflow::{analysis, TaskId, Workflow};

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::Scheduler;

/// The HEFT list scheduler: tasks are prioritized by *upward rank* (mean
/// execution plus the heaviest downstream chain) and greedily placed on
/// the device minimizing their earliest finish time, with insertion into
/// idle gaps.
///
/// # Examples
///
/// ```
/// use helios_platform::presets;
/// use helios_sched::{HeftScheduler, Scheduler};
/// use helios_workflow::generators::cybershake;
///
/// let s = HeftScheduler::default()
///     .schedule(&cybershake(30, 1)?, &presets::hpc_node())?;
/// assert!(s.makespan().as_secs() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct HeftScheduler {
    /// Disable the insertion policy (append-only placement).
    pub no_insertion: bool,
}

/// Task ids sorted by decreasing upward rank (ties by id, deterministic).
pub(crate) fn rank_order(wf: &Workflow, platform: &Platform) -> Result<Vec<TaskId>, SchedError> {
    let ranks = analysis::bottom_levels(wf, platform)?;
    let mut order: Vec<TaskId> = (0..wf.num_tasks()).map(TaskId).collect();
    order.sort_by(|a, b| ranks[b.0].total_cmp(&ranks[a.0]).then(a.0.cmp(&b.0)));
    Ok(order)
}

impl Scheduler for HeftScheduler {
    fn name(&self) -> &str {
        if self.no_insertion {
            "heft-noins"
        } else {
            "heft"
        }
    }

    fn schedule(&self, wf: &Workflow, platform: &Platform) -> Result<Schedule, SchedError> {
        let order = rank_order(wf, platform)?;
        let mut ctx = SchedContext::new(wf, platform, !self.no_insertion)?;
        for task in order {
            let (dev, start, finish) = ctx.best_eft(task)?;
            ctx.place(task, dev, start, finish)?;
        }
        ctx.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{montage, synthetic};

    #[test]
    fn rank_order_is_topologically_consistent() {
        let wf = montage(50, 2).unwrap();
        let p = presets::hpc_node();
        let order = rank_order(&wf, &p).unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; wf.num_tasks()];
            for (i, &t) in order.iter().enumerate() {
                pos[t.0] = i;
            }
            pos
        };
        // Upward rank strictly decreases along edges, so every predecessor
        // precedes its successors in rank order.
        for e in wf.edges() {
            assert!(pos[e.src.0] < pos[e.dst.0], "{} !< {}", e.src, e.dst);
        }
    }

    #[test]
    fn produces_valid_schedules() {
        let p = presets::hpc_node();
        for seed in 0..5 {
            let wf = montage(60, seed).unwrap();
            let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
            s.validate(&wf, &p).unwrap();
        }
    }

    #[test]
    fn insertion_never_hurts() {
        let p = presets::hpc_node();
        for seed in 0..5 {
            let wf = montage(80, seed).unwrap();
            let ins = HeftScheduler::default().schedule(&wf, &p).unwrap();
            let noins = HeftScheduler { no_insertion: true }
                .schedule(&wf, &p)
                .unwrap();
            noins.validate(&wf, &p).unwrap();
            assert!(
                ins.makespan().as_secs() <= noins.makespan().as_secs() + 1e-9,
                "seed {seed}: insertion {} vs append {}",
                ins.makespan(),
                noins.makespan()
            );
        }
    }

    #[test]
    fn chain_goes_mostly_to_one_fast_device() {
        // A pure chain has no parallelism: HEFT should not scatter it
        // across devices unless transfers are free.
        let wf = synthetic::chain(10, 50.0, 100e6, 1).unwrap();
        let p = presets::workstation();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        s.validate(&wf, &p).unwrap();
        let devices: std::collections::BTreeSet<_> =
            s.placements().iter().map(|pl| pl.device).collect();
        assert!(devices.len() <= 2, "chain scattered over {devices:?}");
    }
}
