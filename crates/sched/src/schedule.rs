//! Schedules: per-task placements plus validation and quality metrics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use helios_platform::{DeviceId, DvfsLevel, Platform};
use helios_sim::{SimDuration, SimTime};
use helios_workflow::{analysis, TaskId, Workflow};

use crate::error::SchedError;

/// Tolerance for floating-point comparisons in schedule validation.
const EPS: f64 = 1e-9;

/// One task's assignment: where, at which DVFS state, and when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The placed task.
    pub task: TaskId,
    /// Executing device.
    pub device: DeviceId,
    /// DVFS state the task runs at.
    pub level: DvfsLevel,
    /// Start time.
    pub start: SimTime,
    /// Finish time.
    pub finish: SimTime,
}

impl Placement {
    /// The placement's duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.finish.saturating_since(self.start)
    }
}

/// A complete mapping of a workflow onto a platform.
///
/// Produced by a [`Scheduler`](crate::Scheduler); validated against the
/// DAG's precedence constraints (including inter-device transfer times)
/// and each device's concurrency limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    placements: Vec<Placement>,
}

impl Schedule {
    /// Creates a schedule from per-task placements.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Internal`] if two placements reference the
    /// same task.
    pub fn new(mut placements: Vec<Placement>) -> Result<Schedule, SchedError> {
        placements.sort_by_key(|p| p.task);
        for pair in placements.windows(2) {
            if pair[0].task == pair[1].task {
                return Err(SchedError::Internal(format!(
                    "duplicate placement for task {}",
                    pair[0].task
                )));
            }
        }
        Ok(Schedule { placements })
    }

    /// All placements, sorted by task id.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The placement of `task`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Unscheduled`] if the task has no placement.
    pub fn placement(&self, task: TaskId) -> Result<&Placement, SchedError> {
        self.placements
            .binary_search_by_key(&task, |p| p.task)
            .map(|i| &self.placements[i])
            .map_err(|_| SchedError::Unscheduled(task))
    }

    /// The schedule's makespan: the latest finish time.
    #[must_use]
    pub fn makespan(&self) -> SimDuration {
        self.placements
            .iter()
            .map(|p| p.finish)
            .max()
            .map_or(SimDuration::ZERO, |t| t.saturating_since(SimTime::ZERO))
    }

    /// Task ids grouped by device, ordered by start time within a device.
    #[must_use]
    pub fn tasks_by_device(&self) -> BTreeMap<DeviceId, Vec<TaskId>> {
        let mut by_dev: BTreeMap<DeviceId, Vec<(SimTime, TaskId)>> = BTreeMap::new();
        for p in &self.placements {
            by_dev.entry(p.device).or_default().push((p.start, p.task));
        }
        by_dev
            .into_iter()
            .map(|(d, mut v)| {
                v.sort_by_key(|p| p.0);
                (d, v.into_iter().map(|(_, t)| t).collect())
            })
            .collect()
    }

    /// Verifies the schedule against workflow and platform:
    ///
    /// 1. every task is placed exactly once,
    /// 2. every task starts only after each predecessor's finish plus the
    ///    inter-device transfer time of its data product,
    /// 3. no device runs more concurrent tasks than it has execution
    ///    slots,
    /// 4. every placement is at least as long as the modeled execution
    ///    time at its DVFS level,
    /// 5. every task's device is feasible for it (memory capacity and
    ///    trust level).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, wf: &Workflow, platform: &Platform) -> Result<(), SchedError> {
        for i in 0..wf.num_tasks() {
            let _ = self.placement(TaskId(i))?;
        }
        // Precedence with transfers.
        for p in &self.placements {
            for &e in wf.predecessors(p.task) {
                let edge = wf.edge(e);
                let pred = self.placement(edge.src)?;
                let transfer = platform.transfer_time(edge.bytes, pred.device, p.device)?;
                let data_ready = pred.finish + transfer;
                let deficit = data_ready.as_secs() - p.start.as_secs();
                if deficit > EPS {
                    return Err(SchedError::PrecedenceViolation {
                        task: p.task,
                        pred: edge.src,
                        deficit_secs: deficit,
                    });
                }
            }
        }
        // Device concurrency and duration feasibility.
        for (dev, tasks) in self.tasks_by_device() {
            let device = platform.device(dev)?;
            let slots = device.execution_slots();
            let mut events: Vec<(SimTime, i64, TaskId)> = Vec::new();
            for &t in &tasks {
                let p = self.placement(t)?;
                if !crate::placement_feasible(device, wf.task(t)?) {
                    return Err(SchedError::NoFeasibleDevice(t));
                }
                let exec = device.execution_time(wf.task(t)?.cost(), p.level)?;
                if p.duration().as_secs() + EPS < exec.as_secs() {
                    return Err(SchedError::Internal(format!(
                        "task {t} duration {} shorter than modeled execution {exec}",
                        p.duration()
                    )));
                }
                events.push((p.start, 1, t));
                events.push((p.finish, -1, t));
            }
            // Finish events sort before start events at the same instant.
            events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut running: Vec<TaskId> = Vec::new();
            for (_, delta, t) in events {
                if delta > 0 {
                    if running.len() >= slots {
                        return Err(SchedError::Overlap {
                            a: running[0],
                            b: t,
                        });
                    }
                    running.push(t);
                } else {
                    running.retain(|&r| r != t);
                }
            }
        }
        Ok(())
    }

    /// Per-device utilization: busy time divided by makespan, indexed by
    /// device id. Devices with no tasks report 0.
    #[must_use]
    pub fn utilization(&self, platform: &Platform) -> Vec<f64> {
        let makespan = self.makespan().as_secs();
        let mut busy = vec![0.0; platform.num_devices()];
        for p in &self.placements {
            if p.device.0 < busy.len() {
                busy[p.device.0] += p.duration().as_secs();
            }
        }
        if makespan == 0.0 {
            return busy;
        }
        busy.iter().map(|b| b / makespan).collect()
    }

    /// Renders a textual Gantt chart, one line per device.
    #[must_use]
    pub fn gantt(&self, wf: &Workflow, platform: &Platform) -> String {
        let mut out = String::new();
        for (dev, tasks) in self.tasks_by_device() {
            let name = platform
                .device(dev)
                .map(|d| d.name().to_owned())
                .unwrap_or_else(|_| dev.to_string());
            let _ = write!(out, "{name:>12} |");
            for t in tasks {
                if let (Ok(p), Ok(task)) = (self.placement(t), wf.task(t)) {
                    let _ = write!(
                        out,
                        " {}[{:.2}-{:.2}]",
                        task.name(),
                        p.start.as_secs(),
                        p.finish.as_secs()
                    );
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Schedule length ratio: makespan divided by the sum of each
/// critical-path task's *minimum* execution time across devices — the
/// standard heterogeneous lower-bound normalization. Lower is better;
/// 1.0 is the (usually unreachable) bound.
///
/// # Errors
///
/// Propagates platform and placement errors.
pub fn slr(schedule: &Schedule, wf: &Workflow, platform: &Platform) -> Result<f64, SchedError> {
    let (cp, _) = analysis::critical_path(wf, platform)?;
    let mut bound = 0.0;
    for t in cp {
        let cost = wf.task(t)?.cost();
        let best = platform
            .devices()
            .iter()
            .map(|d| {
                d.execution_time(cost, d.nominal_level())
                    .map(|t| t.as_secs())
            })
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        bound += best;
    }
    if bound == 0.0 {
        return Err(SchedError::Internal(
            "critical-path lower bound is zero".into(),
        ));
    }
    Ok(schedule.makespan().as_secs() / bound)
}

/// Speedup: the best single-device sequential execution time divided by
/// the schedule's makespan.
///
/// # Errors
///
/// Propagates platform errors.
pub fn speedup(schedule: &Schedule, wf: &Workflow, platform: &Platform) -> Result<f64, SchedError> {
    let mut best_seq = f64::INFINITY;
    for d in platform.devices() {
        let mut total = 0.0;
        for t in wf.tasks() {
            total += d.execution_time(t.cost(), d.nominal_level())?.as_secs();
        }
        best_seq = best_seq.min(total);
    }
    let makespan = schedule.makespan().as_secs();
    if makespan == 0.0 {
        return Err(SchedError::Internal("zero makespan".into()));
    }
    Ok(best_seq / makespan)
}

/// Parallel efficiency: [`speedup`] divided by the device count.
///
/// # Errors
///
/// Propagates platform errors.
pub fn efficiency(
    schedule: &Schedule,
    wf: &Workflow,
    platform: &Platform,
) -> Result<f64, SchedError> {
    Ok(speedup(schedule, wf, platform)? / platform.num_devices() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_platform::{ComputeCost, KernelClass};
    use helios_workflow::{Task, WorkflowBuilder};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn tiny_wf() -> Workflow {
        let mut b = WorkflowBuilder::new("tiny");
        let cost = ComputeCost::new(1.0, 0.0, KernelClass::Reduction);
        let a = b.add_task(Task::new("a", "s", cost));
        let c = b.add_task(Task::new("b", "s", cost));
        b.add_dep(a, c, 1e6).unwrap();
        b.build().unwrap()
    }

    fn place(task: usize, dev: usize, start: f64, finish: f64) -> Placement {
        Placement {
            task: TaskId(task),
            device: DeviceId(dev),
            level: DvfsLevel(2),
            start: t(start),
            finish: t(finish),
        }
    }

    #[test]
    fn duplicate_placement_rejected() {
        let err = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(0, 1, 0.0, 1.0)]);
        assert!(matches!(err, Err(SchedError::Internal(_))));
    }

    #[test]
    fn valid_sequential_schedule_passes() {
        let wf = tiny_wf();
        let p = presets::workstation();
        // Both on cpu0, generous gaps.
        let s = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 0, 2.0, 3.0)]).unwrap();
        s.validate(&wf, &p).unwrap();
        assert!((s.makespan().as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_placement_detected() {
        let wf = tiny_wf();
        let p = presets::workstation();
        let s = Schedule::new(vec![place(0, 0, 0.0, 1.0)]).unwrap();
        assert!(matches!(
            s.validate(&wf, &p),
            Err(SchedError::Unscheduled(TaskId(1)))
        ));
    }

    #[test]
    fn precedence_violation_detected() {
        let wf = tiny_wf();
        let p = presets::workstation();
        // Task 1 on gpu0 starting immediately: the PCIe transfer of 1 MB
        // cannot have completed.
        let s = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 2, 1.0, 2.0)]).unwrap();
        assert!(matches!(
            s.validate(&wf, &p),
            Err(SchedError::PrecedenceViolation { .. })
        ));
    }

    #[test]
    fn overlap_detected() {
        let mut b = WorkflowBuilder::new("par");
        let cost = ComputeCost::new(1.0, 0.0, KernelClass::Reduction);
        b.add_task(Task::new("a", "s", cost));
        b.add_task(Task::new("b", "s", cost));
        let wf = b.build().unwrap();
        let p = presets::workstation();
        let s = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 0, 0.5, 1.5)]).unwrap();
        assert!(matches!(
            s.validate(&wf, &p),
            Err(SchedError::Overlap { .. })
        ));
    }

    #[test]
    fn too_short_duration_detected() {
        let mut b = WorkflowBuilder::new("big");
        // 500 Gflop on a CPU takes ~1s; claim it finished in 1 µs.
        let cost = ComputeCost::new(500.0, 0.0, KernelClass::BranchyScalar);
        b.add_task(Task::new("a", "s", cost));
        let wf = b.build().unwrap();
        let p = presets::workstation();
        let s = Schedule::new(vec![place(0, 0, 0.0, 1e-6)]).unwrap();
        assert!(matches!(s.validate(&wf, &p), Err(SchedError::Internal(_))));
    }

    #[test]
    fn back_to_back_tasks_are_legal() {
        let mut b = WorkflowBuilder::new("seq");
        let cost = ComputeCost::new(0.0, 0.0, KernelClass::Reduction);
        b.add_task(Task::new("a", "s", cost));
        b.add_task(Task::new("b", "s", cost));
        let wf = b.build().unwrap();
        let p = presets::workstation();
        // b starts exactly when a finishes.
        let s = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 0, 1.0, 2.0)]).unwrap();
        s.validate(&wf, &p).unwrap();
    }

    #[test]
    fn utilization_and_gantt() {
        let wf = tiny_wf();
        let p = presets::workstation();
        let s = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 0, 2.0, 4.0)]).unwrap();
        let u = s.utilization(&p);
        assert_eq!(u.len(), p.num_devices());
        assert!((u[0] - 0.75).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
        let g = s.gantt(&wf, &p);
        assert!(g.contains("cpu0"), "{g}");
        assert!(g.contains('a') && g.contains('b'));
    }

    #[test]
    fn metrics_are_sane() {
        use crate::{HeftScheduler, Scheduler};
        let wf = helios_workflow::generators::montage(30, 1).unwrap();
        let p = presets::hpc_node();
        let s = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let slr_v = slr(&s, &wf, &p).unwrap();
        assert!(slr_v >= 0.5, "SLR {slr_v} suspiciously low");
        let sp = speedup(&s, &wf, &p).unwrap();
        assert!(sp > 0.0);
        let eff = efficiency(&s, &wf, &p).unwrap();
        assert!((0.0..=1.5).contains(&eff), "efficiency {eff}");
    }
}
