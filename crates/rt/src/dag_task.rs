//! The sporadic DAG task model and federated scheduling.

use serde::{Deserialize, Serialize};

use crate::error::{positive, RtError};

/// A sporadic parallel task whose job is a DAG of sequential sub-jobs.
///
/// Characterized (as in the federated-scheduling literature) by its
/// **volume** `C` (total work), **span** `L` (critical-path length),
/// period `T` and relative deadline `D`. Vertices/edges are kept so the
/// span and volume are derived, not asserted.
///
/// # Examples
///
/// ```
/// use helios_rt::DagTask;
///
/// // Fork-join: 1 → {2, 3} → 4, unit work each.
/// let dag = DagTask::new(
///     vec![1.0, 1.0, 1.0, 1.0],
///     vec![(0, 1), (0, 2), (1, 3), (2, 3)],
///     10.0,
///     8.0,
/// )?;
/// assert_eq!(dag.volume(), 4.0);
/// assert_eq!(dag.span(), 3.0);
/// # Ok::<(), helios_rt::RtError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagTask {
    wcets: Vec<f64>,
    edges: Vec<(usize, usize)>,
    period: f64,
    deadline: f64,
    volume: f64,
    span: f64,
}

impl DagTask {
    /// Creates a DAG task from per-vertex WCETs and precedence edges.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if a WCET is non-positive, an edge references
    /// a missing vertex, the graph is cyclic, or the span exceeds the
    /// deadline (trivially infeasible on any number of cores).
    pub fn new(
        wcets: Vec<f64>,
        edges: Vec<(usize, usize)>,
        period: f64,
        deadline: f64,
    ) -> Result<DagTask, RtError> {
        if wcets.is_empty() {
            return Err(RtError::InvalidGraph("DAG task needs >= 1 vertex".into()));
        }
        for &w in &wcets {
            positive("vertex wcet", w)?;
        }
        let period = positive("period", period)?;
        let deadline = positive("deadline", deadline)?;
        let n = wcets.len();
        for &(a, b) in &edges {
            if a >= n || b >= n {
                return Err(RtError::InvalidGraph(format!(
                    "edge ({a}, {b}) references a missing vertex (n = {n})"
                )));
            }
            if a == b {
                return Err(RtError::InvalidGraph(format!("self-loop on vertex {a}")));
            }
        }
        // Topological order via Kahn; detects cycles.
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            indeg[b] += 1;
            succ[a].push(b);
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            topo.push(u);
            for &v in &succ[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo.len() != n {
            return Err(RtError::InvalidGraph("DAG task contains a cycle".into()));
        }
        // Span: longest weighted path.
        let mut dist = wcets.clone();
        for &u in &topo {
            for &v in &succ[u] {
                dist[v] = dist[v].max(dist[u] + wcets[v]);
            }
        }
        let span = dist.iter().copied().fold(0.0, f64::max);
        let volume: f64 = wcets.iter().sum();
        if span > deadline {
            return Err(RtError::Inconsistent(format!(
                "span {span} exceeds deadline {deadline}: infeasible on any core count"
            )));
        }
        Ok(DagTask {
            wcets,
            edges,
            period,
            deadline,
            volume,
            span,
        })
    }

    /// Per-vertex WCETs.
    #[must_use]
    pub fn wcets(&self) -> &[f64] {
        &self.wcets
    }

    /// Precedence edges.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Total work `C`.
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.volume
    }

    /// Critical-path length `L`.
    #[must_use]
    pub fn span(&self) -> f64 {
        self.span
    }

    /// Minimum inter-arrival separation.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Relative deadline.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Utilization `C / T`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.volume / self.period
    }

    /// A task is *heavy* when its utilization exceeds 1: it cannot be
    /// served by any single core.
    #[must_use]
    pub fn is_heavy(&self) -> bool {
        self.utilization() > 1.0
    }

    /// Dedicated cores required under federated scheduling (Li et al.,
    /// 2014): `⌈(C − L) / (D − L)⌉` for heavy tasks. By the Graham bound
    /// the task then meets its deadline on that many dedicated cores.
    ///
    /// Returns 0 for light tasks (they share the residual cores).
    #[must_use]
    pub fn federated_cores(&self) -> usize {
        if !self.is_heavy() {
            return 0;
        }
        let num = self.volume - self.span;
        let den = self.deadline - self.span;
        // span <= deadline is a construction invariant; equality with
        // volume > span would be infeasible and yields infinity — cap it.
        if den <= 0.0 {
            return usize::MAX;
        }
        (num / den).ceil() as usize
    }

    /// Graham's bound on the makespan of one job on `m` dedicated cores
    /// under any work-conserving scheduler: `L + (C − L)/m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn graham_makespan(&self, m: usize) -> f64 {
        assert!(m > 0, "need at least one core");
        self.span + (self.volume - self.span) / m as f64
    }
}

/// Federated schedulability test (Li et al., 2014) for a set of DAG
/// tasks on `m_total` identical cores: heavy tasks get dedicated cores
/// (`federated_cores`), light tasks run on the remaining cores, which
/// must satisfy a capacity-2 bound (`U_light ≤ (m_rest + 1) / 2` is the
/// original sufficient condition; we use the commonly cited
/// `U_light ≤ m_rest / 2`).
#[must_use]
pub fn federated_test(tasks: &[DagTask], m_total: usize) -> bool {
    let mut dedicated = 0usize;
    let mut u_light = 0.0;
    for t in tasks {
        if t.is_heavy() {
            let c = t.federated_cores();
            if c == usize::MAX {
                return false;
            }
            dedicated += c;
        } else {
            u_light += t.utilization();
        }
    }
    if dedicated > m_total {
        return false;
    }
    let rest = (m_total - dedicated) as f64;
    u_light <= rest / 2.0 + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fork_join(width: usize, unit: f64, period: f64, deadline: f64) -> DagTask {
        // 0 → 1..=width → width+1.
        let n = width + 2;
        let mut edges = Vec::new();
        for i in 1..=width {
            edges.push((0, i));
            edges.push((i, width + 1));
        }
        DagTask::new(vec![unit; n], edges, period, deadline).unwrap()
    }

    #[test]
    fn volume_and_span() {
        let d = fork_join(4, 1.0, 10.0, 10.0);
        assert_eq!(d.volume(), 6.0);
        assert_eq!(d.span(), 3.0);
        assert!(!d.is_heavy());
        assert_eq!(d.federated_cores(), 0);
    }

    #[test]
    fn heavy_task_core_demand() {
        // C = 12, L = 3, T = 6, D = 6: U = 2 (heavy).
        let d = fork_join(10, 1.0, 6.0, 6.0);
        assert_eq!(d.volume(), 12.0);
        assert!(d.is_heavy());
        // ⌈(12-3)/(6-3)⌉ = 3 cores.
        assert_eq!(d.federated_cores(), 3);
        // Graham: 3 + 9/3 = 6 ≤ D.
        assert!(d.graham_makespan(3) <= d.deadline() + 1e-12);
        assert!(d.graham_makespan(2) > d.deadline());
    }

    #[test]
    fn construction_validation() {
        assert!(DagTask::new(vec![], vec![], 1.0, 1.0).is_err());
        assert!(DagTask::new(vec![1.0], vec![(0, 0)], 10.0, 10.0).is_err());
        assert!(DagTask::new(vec![1.0, 1.0], vec![(0, 5)], 10.0, 10.0).is_err());
        // Cycle.
        assert!(DagTask::new(vec![1.0, 1.0], vec![(0, 1), (1, 0)], 10.0, 10.0).is_err());
        // Span exceeds deadline.
        assert!(DagTask::new(vec![5.0, 5.0], vec![(0, 1)], 20.0, 8.0).is_err());
    }

    #[test]
    fn federated_accepts_and_rejects() {
        let heavy = fork_join(10, 1.0, 6.0, 6.0); // needs 3 cores
        let light = fork_join(2, 1.0, 16.0, 16.0); // U = 0.25
        assert!(federated_test(&[heavy.clone(), light.clone()], 4));
        assert!(
            !federated_test(&[heavy.clone(), light.clone()], 3),
            "no residual capacity for the light task"
        );
        assert!(!federated_test(&[heavy], 2));
        // Light-only: capacity bound m/2.
        let lights: Vec<DagTask> = (0..4).map(|_| light.clone()).collect();
        assert!(federated_test(&lights, 2)); // U = 1.0 ≤ 2/2
        let more: Vec<DagTask> = (0..5).map(|_| light.clone()).collect();
        assert!(!federated_test(&more, 2)); // U = 1.25 > 1
    }
}
