//! Random taskset generation for acceptance-ratio experiments.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::error::RtError;
use crate::models::{Criticality, MixedCriticalityTask, PeriodicTask};

/// UUniFast (Bini & Buttazzo, 2005): `n` utilizations that sum exactly
/// to `u_total`, uniformly distributed over the simplex.
///
/// # Errors
///
/// Returns [`RtError::InvalidParameter`] for `n == 0` or a non-positive
/// `u_total`.
pub fn uunifast(n: usize, u_total: f64, rng: &mut ChaCha8Rng) -> Result<Vec<f64>, RtError> {
    if n == 0 {
        return Err(RtError::InvalidParameter {
            name: "n",
            value: 0.0,
        });
    }
    if !(u_total.is_finite() && u_total > 0.0) {
        return Err(RtError::InvalidParameter {
            name: "u_total",
            value: u_total,
        });
    }
    let mut utils = Vec::with_capacity(n);
    let mut sum = u_total;
    for i in 1..n {
        let next = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        utils.push(sum - next);
        sum = next;
    }
    utils.push(sum);
    Ok(utils)
}

/// A random implicit-deadline periodic taskset with total utilization
/// `u_total` and log-uniform periods in `[period_min, period_max]`.
///
/// # Errors
///
/// Returns [`RtError`] for invalid parameters; individual tasks whose
/// sampled utilization exceeds 1 are clamped to a feasible WCET.
pub fn random_taskset(
    n: usize,
    u_total: f64,
    period_min: f64,
    period_max: f64,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<PeriodicTask>, RtError> {
    if !(period_min > 0.0 && period_max >= period_min) {
        return Err(RtError::InvalidParameter {
            name: "period range",
            value: period_min,
        });
    }
    let utils = uunifast(n, u_total, rng)?;
    let mut tasks = Vec::with_capacity(n);
    for u in utils {
        let log_p = rng.gen::<f64>() * (period_max.ln() - period_min.ln()) + period_min.ln();
        let period = log_p.exp();
        // Clamp to keep wcet <= period even when u_total > n allows u > 1.
        let wcet = (u * period).clamp(1e-9 * period, period);
        tasks.push(PeriodicTask::new(wcet, period)?);
    }
    Ok(tasks)
}

/// A random two-level mixed-criticality taskset: each task is HI with
/// probability `hi_prob`; HI tasks inflate their LO budget by
/// `hi_factor`.
///
/// # Errors
///
/// Returns [`RtError`] for invalid parameters.
pub fn random_mc_taskset(
    n: usize,
    u_total_lo: f64,
    hi_prob: f64,
    hi_factor: f64,
    period_min: f64,
    period_max: f64,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<MixedCriticalityTask>, RtError> {
    if !(0.0..=1.0).contains(&hi_prob) {
        return Err(RtError::InvalidParameter {
            name: "hi_prob",
            value: hi_prob,
        });
    }
    if hi_factor < 1.0 {
        return Err(RtError::InvalidParameter {
            name: "hi_factor",
            value: hi_factor,
        });
    }
    let base = random_taskset(n, u_total_lo, period_min, period_max, rng)?;
    base.into_iter()
        .map(|t| {
            let is_hi = rng.gen::<f64>() < hi_prob;
            let (wcet_hi, crit) = if is_hi {
                ((t.wcet() * hi_factor).min(t.period()), Criticality::Hi)
            } else {
                (t.wcet(), Criticality::Lo)
            };
            MixedCriticalityTask::new(t.wcet(), wcet_hi, t.period(), t.period(), crit)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn uunifast_sums_to_target() {
        let mut r = rng(1);
        for u_total in [0.3, 0.7, 0.95] {
            let u = uunifast(8, u_total, &mut r).unwrap();
            assert_eq!(u.len(), 8);
            let sum: f64 = u.iter().sum();
            assert!((sum - u_total).abs() < 1e-9, "{sum} != {u_total}");
            assert!(u.iter().all(|&x| x >= 0.0));
        }
        assert!(uunifast(0, 0.5, &mut r).is_err());
        assert!(uunifast(4, -1.0, &mut r).is_err());
    }

    #[test]
    fn random_taskset_respects_parameters() {
        let mut r = rng(2);
        let ts = random_taskset(10, 0.6, 10.0, 1000.0, &mut r).unwrap();
        assert_eq!(ts.len(), 10);
        let u: f64 = ts.iter().map(PeriodicTask::utilization).sum();
        assert!((u - 0.6).abs() < 1e-6, "U = {u}");
        for t in &ts {
            assert!(t.period() >= 10.0 && t.period() <= 1000.0);
            assert!(t.wcet() <= t.period());
        }
        assert!(random_taskset(4, 0.5, -1.0, 10.0, &mut r).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_taskset(5, 0.5, 10.0, 100.0, &mut rng(7)).unwrap();
        let b = random_taskset(5, 0.5, 10.0, 100.0, &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mc_taskset_inflates_hi_budgets() {
        let mut r = rng(3);
        let ts = random_mc_taskset(20, 0.4, 0.5, 2.0, 10.0, 100.0, &mut r).unwrap();
        assert_eq!(ts.len(), 20);
        let hi_count = ts
            .iter()
            .filter(|t| t.criticality() == Criticality::Hi)
            .count();
        assert!(hi_count > 2 && hi_count < 18, "hi_count = {hi_count}");
        for t in &ts {
            match t.criticality() {
                Criticality::Hi => assert!(t.wcet_hi() >= t.wcet_lo()),
                Criticality::Lo => assert_eq!(t.wcet_hi(), t.wcet_lo()),
            }
        }
        assert!(random_mc_taskset(4, 0.4, 1.5, 2.0, 10.0, 100.0, &mut r).is_err());
        assert!(random_mc_taskset(4, 0.4, 0.5, 0.5, 10.0, 100.0, &mut r).is_err());
    }

    #[test]
    fn acceptance_ratio_decreases_with_utilization() {
        use crate::analysis;
        let mut accepted = Vec::new();
        for &u in &[0.5, 0.7, 0.9, 1.1] {
            let mut ok = 0;
            for seed in 0..50 {
                let ts = random_taskset(6, u, 10.0, 1000.0, &mut rng(seed)).unwrap();
                if analysis::rta_fixed_priority(&ts).unwrap().is_some() {
                    ok += 1;
                }
            }
            accepted.push(ok);
        }
        assert!(
            accepted.windows(2).all(|w| w[0] >= w[1]),
            "acceptance must fall with U: {accepted:?}"
        );
        assert!(accepted[0] > accepted[3], "{accepted:?}");
    }
}
