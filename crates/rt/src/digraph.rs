//! The digraph real-time (DRT) task model.

use serde::{Deserialize, Serialize};

use crate::error::{positive, RtError};

/// One job type in a [`DigraphTask`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrtVertex {
    /// Worst-case execution time of this job type.
    pub wcet: f64,
    /// Relative deadline of this job type.
    pub deadline: f64,
}

/// A release transition between job types, labelled with the minimum
/// inter-release separation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrtEdge {
    /// Source vertex index.
    pub from: usize,
    /// Destination vertex index.
    pub to: usize,
    /// Minimum separation between the two releases.
    pub min_separation: f64,
}

/// A digraph real-time task (Stigge et al., 2011): job releases follow
/// walks in an arbitrary directed graph. Following the restriction noted
/// in the survey, **every cycle must pass through the source vertex**
/// (vertex 0) — verified at construction.
///
/// # Examples
///
/// ```
/// use helios_rt::{DigraphTask, DrtEdge, DrtVertex};
///
/// // Mode 0 alternates with mode 1 (both cycles touch the source).
/// let t = DigraphTask::new(
///     vec![
///         DrtVertex { wcet: 1.0, deadline: 5.0 },
///         DrtVertex { wcet: 3.0, deadline: 10.0 },
///     ],
///     vec![
///         DrtEdge { from: 0, to: 1, min_separation: 5.0 },
///         DrtEdge { from: 1, to: 0, min_separation: 10.0 },
///     ],
/// )?;
/// assert!((t.max_cycle_utilization()? - 4.0 / 15.0).abs() < 1e-9);
/// # Ok::<(), helios_rt::RtError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigraphTask {
    vertices: Vec<DrtVertex>,
    edges: Vec<DrtEdge>,
}

impl DigraphTask {
    /// Creates a DRT task, validating structure.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::InvalidGraph`] if there are no vertices, an
    /// edge is dangling or non-positive, or a cycle avoids the source
    /// vertex; [`RtError::Inconsistent`] if any `wcet > deadline`.
    pub fn new(vertices: Vec<DrtVertex>, edges: Vec<DrtEdge>) -> Result<DigraphTask, RtError> {
        if vertices.is_empty() {
            return Err(RtError::InvalidGraph("DRT task needs >= 1 vertex".into()));
        }
        let n = vertices.len();
        for v in &vertices {
            positive("wcet", v.wcet)?;
            positive("deadline", v.deadline)?;
            if v.wcet > v.deadline {
                return Err(RtError::Inconsistent(format!(
                    "vertex wcet {} exceeds deadline {}",
                    v.wcet, v.deadline
                )));
            }
        }
        for e in &edges {
            if e.from >= n || e.to >= n {
                return Err(RtError::InvalidGraph(format!(
                    "edge ({}, {}) references a missing vertex",
                    e.from, e.to
                )));
            }
            positive("min_separation", e.min_separation)?;
        }
        // Every cycle must pass through vertex 0: the graph minus vertex 0
        // must be acyclic.
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &edges {
            if e.from != 0 && e.to != 0 {
                indeg[e.to] += 1;
                succ[e.from].push(e.to);
            }
        }
        let mut queue: Vec<usize> = (1..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &succ[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen != n.saturating_sub(1) {
            return Err(RtError::InvalidGraph(
                "a release cycle bypasses the source vertex".into(),
            ));
        }
        Ok(DigraphTask { vertices, edges })
    }

    /// The job-type vertices.
    #[must_use]
    pub fn vertices(&self) -> &[DrtVertex] {
        &self.vertices
    }

    /// The release transitions.
    #[must_use]
    pub fn edges(&self) -> &[DrtEdge] {
        &self.edges
    }

    /// The task's long-run utilization: the maximum over release cycles
    /// of `Σ wcet / Σ separation`. Because every cycle passes through the
    /// source, cycles are enumerated by depth-first walks from vertex 0
    /// back to vertex 0 that repeat no intermediate vertex.
    ///
    /// Returns 0 for a cycle-free graph (finitely many jobs).
    ///
    /// # Errors
    ///
    /// Never fails for a validated task (kept fallible for future
    /// models without the source-cycle restriction).
    pub fn max_cycle_utilization(&self) -> Result<f64, RtError> {
        let n = self.vertices.len();
        let mut succ: Vec<Vec<&DrtEdge>> = vec![Vec::new(); n];
        for e in &self.edges {
            succ[e.from].push(e);
        }
        let mut best = 0.0f64;
        // DFS from the source; a walk closes when it returns to 0.
        let mut visited = vec![false; n];
        fn dfs(
            v: usize,
            wcet_sum: f64,
            sep_sum: f64,
            succ: &[Vec<&DrtEdge>],
            vertices: &[DrtVertex],
            visited: &mut [bool],
            best: &mut f64,
        ) {
            for e in &succ[v] {
                let w = wcet_sum + vertices[e.to].wcet;
                let s = sep_sum + e.min_separation;
                if e.to == 0 {
                    // Cycle closed: the source's wcet was counted at the
                    // start of the walk, so subtract the duplicate.
                    let cycle_wcet = w - vertices[0].wcet;
                    if s > 0.0 {
                        *best = best.max(cycle_wcet / s);
                    }
                } else if !visited[e.to] {
                    visited[e.to] = true;
                    dfs(e.to, w, s, succ, vertices, visited, best);
                    visited[e.to] = false;
                }
            }
        }
        visited[0] = true;
        dfs(
            0,
            self.vertices[0].wcet,
            0.0,
            &succ,
            &self.vertices,
            &mut visited,
            &mut best,
        );
        Ok(best)
    }

    /// Sufficient uniprocessor EDF feasibility: long-run utilization at
    /// most 1 **and** every vertex individually feasible (checked at
    /// construction). Necessary-and-sufficient analysis requires demand
    /// bound functions; this is the standard quick filter.
    ///
    /// # Errors
    ///
    /// Propagates utilization computation errors.
    pub fn edf_utilization_test(&self) -> Result<bool, RtError> {
        Ok(self.max_cycle_utilization()? <= 1.0 + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(wcet: f64, deadline: f64) -> DrtVertex {
        DrtVertex { wcet, deadline }
    }

    fn e(from: usize, to: usize, sep: f64) -> DrtEdge {
        DrtEdge {
            from,
            to,
            min_separation: sep,
        }
    }

    #[test]
    fn simple_self_cycle_utilization() {
        // Source loops on itself every 4 with wcet 1.
        let t = DigraphTask::new(vec![v(1.0, 4.0)], vec![e(0, 0, 4.0)]).unwrap();
        assert!((t.max_cycle_utilization().unwrap() - 0.25).abs() < 1e-12);
        assert!(t.edf_utilization_test().unwrap());
    }

    #[test]
    fn picks_the_heaviest_cycle() {
        // Two cycles through the source: 0→1→0 (U = (1+3)/15) and
        // 0→2→0 (U = (1+5)/8 = 0.75).
        let t = DigraphTask::new(
            vec![v(1.0, 5.0), v(3.0, 10.0), v(5.0, 6.0)],
            vec![e(0, 1, 5.0), e(1, 0, 10.0), e(0, 2, 4.0), e(2, 0, 4.0)],
        )
        .unwrap();
        assert!((t.max_cycle_utilization().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cycle_avoiding_source_rejected() {
        let err = DigraphTask::new(
            vec![v(1.0, 5.0), v(1.0, 5.0), v(1.0, 5.0)],
            vec![e(0, 1, 5.0), e(1, 2, 5.0), e(2, 1, 5.0)],
        );
        assert!(matches!(err, Err(RtError::InvalidGraph(_))));
    }

    #[test]
    fn acyclic_graph_has_zero_utilization() {
        let t = DigraphTask::new(vec![v(1.0, 5.0), v(1.0, 5.0)], vec![e(0, 1, 5.0)]).unwrap();
        assert_eq!(t.max_cycle_utilization().unwrap(), 0.0);
    }

    #[test]
    fn validation_errors() {
        assert!(DigraphTask::new(vec![], vec![]).is_err());
        assert!(DigraphTask::new(vec![v(6.0, 5.0)], vec![]).is_err());
        assert!(DigraphTask::new(vec![v(1.0, 5.0)], vec![e(0, 3, 1.0)]).is_err());
        assert!(DigraphTask::new(vec![v(1.0, 5.0)], vec![e(0, 0, 0.0)]).is_err());
    }

    #[test]
    fn overloaded_cycle_fails_edf() {
        let t = DigraphTask::new(vec![v(4.0, 4.0)], vec![e(0, 0, 2.0)]).unwrap();
        assert!(!t.edf_utilization_test().unwrap());
    }
}

/// Demand-bound computation for DRT tasks (Stigge et al.): the maximum
/// execution demand any legal release walk can place in an interval.
impl DigraphTask {
    /// The demand bound function `dbf(t)`: over all release walks
    /// starting at any vertex, the largest total WCET of jobs whose
    /// release *and* deadline fit inside an interval of length `t`.
    ///
    /// Walks are explored by depth-first search; release times grow by
    /// at least the minimum edge separation per step, so the search is
    /// bounded by `t`. Intended for the small control graphs the DRT
    /// model describes (exponential in pathological graphs).
    #[must_use]
    pub fn demand_bound(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let n = self.vertices.len();
        let mut succ: Vec<Vec<&DrtEdge>> = vec![Vec::new(); n];
        for e in &self.edges {
            succ[e.from].push(e);
        }
        fn walk(
            v: usize,
            release: f64,
            demand_so_far: f64,
            t: f64,
            succ: &[Vec<&DrtEdge>],
            vertices: &[DrtVertex],
            best: &mut f64,
        ) {
            // Count this job if its deadline fits the interval.
            let demand = if release + vertices[v].deadline <= t + 1e-12 {
                demand_so_far + vertices[v].wcet
            } else {
                demand_so_far
            };
            *best = best.max(demand);
            for e in &succ[v] {
                let next_release = release + e.min_separation;
                if next_release <= t + 1e-12 {
                    walk(e.to, next_release, demand, t, succ, vertices, best);
                }
            }
        }
        let mut best = 0.0f64;
        for v0 in 0..n {
            walk(v0, 0.0, 0.0, t, &succ, &self.vertices, &mut best);
        }
        best
    }

    /// All candidate interval lengths up to `horizon` at which `dbf`
    /// can step (absolute deadlines along walks), sorted ascending.
    #[must_use]
    pub fn demand_steps(&self, horizon: f64) -> Vec<f64> {
        let n = self.vertices.len();
        let mut succ: Vec<Vec<&DrtEdge>> = vec![Vec::new(); n];
        for e in &self.edges {
            succ[e.from].push(e);
        }
        fn collect(
            v: usize,
            release: f64,
            horizon: f64,
            succ: &[Vec<&DrtEdge>],
            vertices: &[DrtVertex],
            out: &mut Vec<f64>,
        ) {
            let dl = release + vertices[v].deadline;
            if dl <= horizon + 1e-12 {
                out.push(dl);
            }
            for e in &succ[v] {
                let next = release + e.min_separation;
                if next <= horizon + 1e-12 {
                    collect(e.to, next, horizon, succ, vertices, out);
                }
            }
        }
        let mut out = Vec::new();
        for v0 in 0..n {
            collect(v0, 0.0, horizon, &succ, &self.vertices, &mut out);
        }
        out.sort_by(f64::total_cmp);
        out.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        out
    }
}

/// Sufficient-and-necessary (up to `horizon`) EDF test for a set of DRT
/// tasks on one processor: `Σ dbf_τ(t) ≤ t` at every demand step.
///
/// Pick `horizon` as a few multiples of the largest cycle length; the
/// long-run rate condition is covered by
/// [`DigraphTask::edf_utilization_test`].
#[must_use]
pub fn drt_edf_demand_test(tasks: &[DigraphTask], horizon: f64) -> bool {
    let mut steps: Vec<f64> = tasks.iter().flat_map(|t| t.demand_steps(horizon)).collect();
    steps.sort_by(f64::total_cmp);
    steps.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    for t in steps {
        let demand: f64 = tasks.iter().map(|task| task.demand_bound(t)).sum();
        if demand > t + 1e-9 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod dbf_tests {
    use super::*;

    fn v(wcet: f64, deadline: f64) -> DrtVertex {
        DrtVertex { wcet, deadline }
    }

    fn e(from: usize, to: usize, sep: f64) -> DrtEdge {
        DrtEdge {
            from,
            to,
            min_separation: sep,
        }
    }

    /// A self-looping vertex behaves like a periodic task: its dbf must
    /// match the classic periodic demand bound.
    #[test]
    fn dbf_matches_periodic_special_case() {
        let t = DigraphTask::new(vec![v(1.0, 3.0)], vec![e(0, 0, 4.0)]).unwrap();
        assert_eq!(t.demand_bound(2.9), 0.0);
        assert_eq!(t.demand_bound(3.0), 1.0);
        assert_eq!(t.demand_bound(6.9), 1.0);
        assert_eq!(t.demand_bound(7.0), 2.0);
        assert_eq!(t.demand_bound(11.0), 3.0);
    }

    #[test]
    fn dbf_picks_the_demand_heavy_branch() {
        // Source branches to a cheap or an expensive mode.
        let t = DigraphTask::new(
            vec![v(1.0, 2.0), v(5.0, 10.0), v(0.5, 1.0)],
            vec![e(0, 1, 2.0), e(1, 0, 10.0), e(0, 2, 2.0), e(2, 0, 2.0)],
        )
        .unwrap();
        // At t = 12: walk 0->1 gives 1 + 5 = 6; walk 0->2->0->2... gives
        // 1 + 0.5 per 2s: 0@0,2@2,0@4... total 1*3 + 0.5*3 = 4.5 < 6.
        assert!((t.demand_bound(12.0) - 6.0).abs() < 1e-9);
        let steps = t.demand_steps(12.0);
        assert!(steps.contains(&2.0) && steps.contains(&12.0));
    }

    #[test]
    fn demand_test_accepts_and_rejects() {
        let light = DigraphTask::new(vec![v(1.0, 4.0)], vec![e(0, 0, 4.0)]).unwrap();
        let heavy = DigraphTask::new(vec![v(3.0, 4.0)], vec![e(0, 0, 4.0)]).unwrap();
        assert!(drt_edf_demand_test(&[light.clone(), light.clone()], 40.0));
        // 3/4 + 3/4 = 1.5 utilization: overload shows up at the first
        // common deadline.
        assert!(!drt_edf_demand_test(&[heavy.clone(), heavy], 40.0));
        // One heavy + one light: 3/4 + 1/4 = 1.0 exactly; at t = 4 the
        // demand is 4 <= 4, and it stays tight at multiples.
        let heavy = DigraphTask::new(vec![v(3.0, 4.0)], vec![e(0, 0, 4.0)]).unwrap();
        assert!(drt_edf_demand_test(&[heavy, light], 40.0));
    }

    #[test]
    fn dbf_is_monotone() {
        let t = DigraphTask::new(
            vec![v(1.0, 5.0), v(3.0, 10.0)],
            vec![e(0, 1, 5.0), e(1, 0, 10.0)],
        )
        .unwrap();
        let mut last = 0.0;
        for i in 0..40 {
            let d = t.demand_bound(f64::from(i));
            assert!(d >= last, "dbf must be non-decreasing");
            last = d;
        }
    }
}
