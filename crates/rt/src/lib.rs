//! Real-time task models and schedulability analysis for heterogeneous
//! systems.
//!
//! Heterogeneous platforms embedded in instruments and vehicles run
//! *real-time* workloads whose correctness includes timing. This crate
//! implements the task-model zoo of the real-time literature and the
//! standard schedulability tests over them:
//!
//! * **job-based models** — [`PeriodicTask`], [`SporadicTask`],
//!   [`AperiodicJob`], the [`MultiframeTask`], the [`ElasticTask`] (Buttazzo),
//!   the [`MixedCriticalityTask`] (Vestal) and the [`SplitTask`]
//!   (limited-preemption sub-jobs),
//! * **graph-based models** — the sporadic [`DagTask`] (volume/span,
//!   federated scheduling) and the [`DigraphTask`] (DRT),
//! * **analysis** — utilization bounds (Liu–Layland, hyperbolic, EDF),
//!   fixed-priority response-time analysis with blocking, adaptive
//!   mixed-criticality (AMC-rtb) analysis, elastic compression, and
//!   federated allocation of parallel DAG tasks,
//! * **taskset generation** — UUniFast utilizations with log-uniform
//!   periods for acceptance-ratio experiments.
//!
//! # Examples
//!
//! ```
//! use helios_rt::{analysis, PeriodicTask};
//!
//! let tasks = vec![
//!     PeriodicTask::new(1.0, 4.0)?,
//!     PeriodicTask::new(2.0, 8.0)?,
//! ];
//! // U = 0.5: comfortably schedulable under rate-monotonic priorities.
//! assert!(analysis::rta_fixed_priority(&tasks)?.is_some());
//! # Ok::<(), helios_rt::RtError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod dag_task;
mod digraph;
pub mod edf;
mod error;
mod models;
pub mod taskset;

pub use dag_task::{federated_test, DagTask};
pub use digraph::{drt_edf_demand_test, DigraphTask, DrtEdge, DrtVertex};
pub use error::RtError;
pub use models::{
    AperiodicJob, Criticality, ElasticTask, MixedCriticalityTask, MultiframeTask, PeriodicTask,
    SplitTask, SporadicTask,
};
