//! Error type for real-time model construction.

use std::fmt;

/// Errors from constructing or analyzing real-time task models.
#[derive(Debug, Clone, PartialEq)]
pub enum RtError {
    /// A timing parameter was non-positive, NaN or infinite.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A deadline or separation constraint is inconsistent (e.g. a
    /// deadline shorter than the WCET).
    Inconsistent(String),
    /// A graph model violates its structural rule (e.g. a DRT cycle that
    /// bypasses the source vertex, or a cyclic DAG).
    InvalidGraph(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::InvalidParameter { name, value } => {
                write!(f, "invalid {name}: {value}")
            }
            RtError::Inconsistent(msg) => write!(f, "inconsistent task: {msg}"),
            RtError::InvalidGraph(msg) => write!(f, "invalid task graph: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

pub(crate) fn positive(name: &'static str, value: f64) -> Result<f64, RtError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(RtError::InvalidParameter { name, value })
    }
}

pub(crate) fn non_negative(name: &'static str, value: f64) -> Result<f64, RtError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(RtError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validators_and_display() {
        assert!(positive("c", 1.0).is_ok());
        assert!(positive("c", 0.0).is_err());
        assert!(non_negative("p", 0.0).is_ok());
        assert!(non_negative("p", f64::NAN).is_err());
        let e = RtError::Inconsistent("deadline < wcet".into());
        assert!(e.to_string().contains("deadline"));
    }
}
