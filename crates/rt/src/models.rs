//! Job-based real-time task models.

use serde::{Deserialize, Serialize};

use crate::error::{non_negative, positive, RtError};

/// A periodic task: identical jobs released every `period` time units,
/// each needing `wcet` execution before its relative `deadline`.
///
/// # Examples
///
/// ```
/// use helios_rt::PeriodicTask;
///
/// let t = PeriodicTask::new(2.0, 10.0)?;
/// assert_eq!(t.utilization(), 0.2);
/// # Ok::<(), helios_rt::RtError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicTask {
    wcet: f64,
    period: f64,
    deadline: f64,
    phase: f64,
}

impl PeriodicTask {
    /// An implicit-deadline periodic task (`deadline == period`, zero
    /// phase).
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if parameters are non-positive or `wcet >
    /// period`.
    pub fn new(wcet: f64, period: f64) -> Result<PeriodicTask, RtError> {
        PeriodicTask::with_deadline(wcet, period, period)
    }

    /// A constrained-deadline periodic task.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if parameters are non-positive, `deadline >
    /// period`, or `wcet > deadline`.
    pub fn with_deadline(wcet: f64, period: f64, deadline: f64) -> Result<PeriodicTask, RtError> {
        let wcet = positive("wcet", wcet)?;
        let period = positive("period", period)?;
        let deadline = positive("deadline", deadline)?;
        if deadline > period {
            return Err(RtError::Inconsistent(format!(
                "deadline {deadline} exceeds period {period} (constrained model)"
            )));
        }
        if wcet > deadline {
            return Err(RtError::Inconsistent(format!(
                "wcet {wcet} exceeds deadline {deadline}"
            )));
        }
        Ok(PeriodicTask {
            wcet,
            period,
            deadline,
            phase: 0.0,
        })
    }

    /// Returns a copy released with the given initial phase (offset).
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] for a negative or non-finite phase.
    pub fn with_phase(mut self, phase: f64) -> Result<PeriodicTask, RtError> {
        self.phase = non_negative("phase", phase)?;
        Ok(self)
    }

    /// Worst-case execution time.
    #[must_use]
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// Release period.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Relative deadline.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Initial release offset.
    #[must_use]
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Utilization `wcet / period`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }
}

/// A sporadic task: like [`PeriodicTask`] but `period` is only a *minimum*
/// inter-arrival separation. Worst-case analysis coincides with the
/// periodic case, so the type converts losslessly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SporadicTask {
    inner: PeriodicTask,
}

impl SporadicTask {
    /// Creates a sporadic task with minimum inter-arrival `min_separation`.
    ///
    /// # Errors
    ///
    /// Same as [`PeriodicTask::with_deadline`].
    pub fn new(wcet: f64, min_separation: f64, deadline: f64) -> Result<SporadicTask, RtError> {
        Ok(SporadicTask {
            inner: PeriodicTask::with_deadline(wcet, min_separation, deadline)?,
        })
    }

    /// Worst-case execution time.
    #[must_use]
    pub fn wcet(&self) -> f64 {
        self.inner.wcet()
    }

    /// Minimum inter-arrival separation.
    #[must_use]
    pub fn min_separation(&self) -> f64 {
        self.inner.period()
    }

    /// Relative deadline.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.inner.deadline()
    }

    /// The worst-case periodic abstraction used for analysis.
    #[must_use]
    pub fn as_periodic(&self) -> &PeriodicTask {
        &self.inner
    }
}

impl From<SporadicTask> for PeriodicTask {
    fn from(t: SporadicTask) -> PeriodicTask {
        t.inner
    }
}

/// A one-shot aperiodic job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AperiodicJob {
    arrival: f64,
    wcet: f64,
    absolute_deadline: f64,
}

impl AperiodicJob {
    /// Creates a job arriving at `arrival` with `wcet` work due by
    /// `absolute_deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if the deadline precedes `arrival + wcet`.
    pub fn new(arrival: f64, wcet: f64, absolute_deadline: f64) -> Result<AperiodicJob, RtError> {
        let arrival = non_negative("arrival", arrival)?;
        let wcet = positive("wcet", wcet)?;
        if absolute_deadline < arrival + wcet {
            return Err(RtError::Inconsistent(format!(
                "deadline {absolute_deadline} unreachable from arrival {arrival} + wcet {wcet}"
            )));
        }
        Ok(AperiodicJob {
            arrival,
            wcet,
            absolute_deadline,
        })
    }

    /// Arrival time.
    #[must_use]
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// Worst-case execution time.
    #[must_use]
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// Absolute deadline.
    #[must_use]
    pub fn absolute_deadline(&self) -> f64 {
        self.absolute_deadline
    }

    /// Laxity at arrival: `deadline − arrival − wcet`.
    #[must_use]
    pub fn laxity(&self) -> f64 {
        self.absolute_deadline - self.arrival - self.wcet
    }
}

/// The multiframe model (Mok & Chen): successive jobs cycle through a
/// vector of frame WCETs; frames are separated by at least
/// `min_separation`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiframeTask {
    frames: Vec<f64>,
    min_separation: f64,
    deadline: f64,
}

impl MultiframeTask {
    /// Creates a multiframe task.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if `frames` is empty, any frame is
    /// non-positive, or the largest frame exceeds the deadline.
    pub fn new(
        frames: Vec<f64>,
        min_separation: f64,
        deadline: f64,
    ) -> Result<MultiframeTask, RtError> {
        if frames.is_empty() {
            return Err(RtError::Inconsistent("multiframe needs >= 1 frame".into()));
        }
        for &f in &frames {
            positive("frame wcet", f)?;
        }
        let min_separation = positive("min_separation", min_separation)?;
        let deadline = positive("deadline", deadline)?;
        let peak = frames.iter().copied().fold(0.0f64, f64::max);
        if peak > deadline {
            return Err(RtError::Inconsistent(format!(
                "peak frame {peak} exceeds deadline {deadline}"
            )));
        }
        Ok(MultiframeTask {
            frames,
            min_separation,
            deadline,
        })
    }

    /// The frame WCET vector.
    #[must_use]
    pub fn frames(&self) -> &[f64] {
        &self.frames
    }

    /// Minimum separation between frames.
    #[must_use]
    pub fn min_separation(&self) -> f64 {
        self.min_separation
    }

    /// Relative deadline of each frame.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// The largest frame WCET.
    #[must_use]
    pub fn peak_wcet(&self) -> f64 {
        self.frames.iter().copied().fold(0.0, f64::max)
    }

    /// Average utilization over a full frame cycle.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        self.frames.iter().sum::<f64>() / (self.frames.len() as f64 * self.min_separation)
    }

    /// Peak (pessimistic) utilization using the largest frame.
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        self.peak_wcet() / self.min_separation
    }

    /// The pessimistic periodic abstraction (peak frame every
    /// separation) used by the classic sufficient test.
    ///
    /// # Errors
    ///
    /// Never fails for a valid multiframe task.
    pub fn as_peak_periodic(&self) -> Result<PeriodicTask, RtError> {
        PeriodicTask::with_deadline(
            self.peak_wcet(),
            self.min_separation,
            self.deadline.min(self.min_separation),
        )
    }
}

/// Buttazzo's elastic task: the period may stretch between `period_min`
/// and `period_max` proportionally to the `elasticity` coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticTask {
    wcet: f64,
    period_min: f64,
    period_max: f64,
    elasticity: f64,
}

impl ElasticTask {
    /// Creates an elastic task.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if parameters are non-positive, the period
    /// range is inverted, or the elasticity is negative.
    pub fn new(
        wcet: f64,
        period_min: f64,
        period_max: f64,
        elasticity: f64,
    ) -> Result<ElasticTask, RtError> {
        let wcet = positive("wcet", wcet)?;
        let period_min = positive("period_min", period_min)?;
        let period_max = positive("period_max", period_max)?;
        let elasticity = non_negative("elasticity", elasticity)?;
        if period_min > period_max {
            return Err(RtError::Inconsistent(format!(
                "period_min {period_min} exceeds period_max {period_max}"
            )));
        }
        if wcet > period_min {
            return Err(RtError::Inconsistent(format!(
                "wcet {wcet} exceeds period_min {period_min}"
            )));
        }
        Ok(ElasticTask {
            wcet,
            period_min,
            period_max,
            elasticity,
        })
    }

    /// Worst-case execution time (fixed; only the period flexes).
    #[must_use]
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// The shortest (nominal) period.
    #[must_use]
    pub fn period_min(&self) -> f64 {
        self.period_min
    }

    /// The longest acceptable period.
    #[must_use]
    pub fn period_max(&self) -> f64 {
        self.period_max
    }

    /// Stiffness coefficient (0 = rigid).
    #[must_use]
    pub fn elasticity(&self) -> f64 {
        self.elasticity
    }

    /// Utilization at the nominal period.
    #[must_use]
    pub fn nominal_utilization(&self) -> f64 {
        self.wcet / self.period_min
    }

    /// Utilization at the maximally stretched period.
    #[must_use]
    pub fn min_utilization(&self) -> f64 {
        self.wcet / self.period_max
    }
}

/// Vestal criticality levels (two-level model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Criticality {
    /// Low criticality (mission).
    Lo,
    /// High criticality (safety).
    Hi,
}

/// A two-level mixed-criticality task: a LO-mode WCET used in normal
/// operation and, for HI tasks, a larger certified HI-mode WCET.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedCriticalityTask {
    wcet_lo: f64,
    wcet_hi: f64,
    period: f64,
    deadline: f64,
    criticality: Criticality,
}

impl MixedCriticalityTask {
    /// Creates a mixed-criticality task. For LO tasks pass `wcet_hi ==
    /// wcet_lo`.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if parameters are inconsistent (`wcet_hi <
    /// wcet_lo`, deadline overruns, …).
    pub fn new(
        wcet_lo: f64,
        wcet_hi: f64,
        period: f64,
        deadline: f64,
        criticality: Criticality,
    ) -> Result<MixedCriticalityTask, RtError> {
        let wcet_lo = positive("wcet_lo", wcet_lo)?;
        let wcet_hi = positive("wcet_hi", wcet_hi)?;
        let period = positive("period", period)?;
        let deadline = positive("deadline", deadline)?;
        if wcet_hi < wcet_lo {
            return Err(RtError::Inconsistent(format!(
                "wcet_hi {wcet_hi} below wcet_lo {wcet_lo}"
            )));
        }
        let budget = match criticality {
            Criticality::Lo => wcet_lo,
            Criticality::Hi => wcet_hi,
        };
        if budget > deadline || deadline > period {
            return Err(RtError::Inconsistent(format!(
                "budget {budget} / deadline {deadline} / period {period} infeasible"
            )));
        }
        Ok(MixedCriticalityTask {
            wcet_lo,
            wcet_hi,
            period,
            deadline,
            criticality,
        })
    }

    /// LO-mode WCET.
    #[must_use]
    pub fn wcet_lo(&self) -> f64 {
        self.wcet_lo
    }

    /// HI-mode WCET.
    #[must_use]
    pub fn wcet_hi(&self) -> f64 {
        self.wcet_hi
    }

    /// Release period.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Relative deadline.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// The task's criticality level.
    #[must_use]
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }
}

/// A limited-preemption task split into non-preemptive sub-jobs;
/// preemption is only possible at sub-job boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitTask {
    subjobs: Vec<f64>,
    period: f64,
    deadline: f64,
}

impl SplitTask {
    /// Creates a split task from its sub-job WCETs.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if `subjobs` is empty, any sub-job is
    /// non-positive, or the total exceeds the deadline.
    pub fn new(subjobs: Vec<f64>, period: f64, deadline: f64) -> Result<SplitTask, RtError> {
        if subjobs.is_empty() {
            return Err(RtError::Inconsistent(
                "split task needs >= 1 sub-job".into(),
            ));
        }
        for &s in &subjobs {
            positive("subjob wcet", s)?;
        }
        let period = positive("period", period)?;
        let deadline = positive("deadline", deadline)?;
        let total: f64 = subjobs.iter().sum();
        if total > deadline || deadline > period {
            return Err(RtError::Inconsistent(format!(
                "total wcet {total} / deadline {deadline} / period {period} infeasible"
            )));
        }
        Ok(SplitTask {
            subjobs,
            period,
            deadline,
        })
    }

    /// The sub-job WCETs.
    #[must_use]
    pub fn subjobs(&self) -> &[f64] {
        &self.subjobs
    }

    /// Total WCET across sub-jobs.
    #[must_use]
    pub fn total_wcet(&self) -> f64 {
        self.subjobs.iter().sum()
    }

    /// The largest non-preemptive chunk — the blocking this task can
    /// impose on higher-priority tasks.
    #[must_use]
    pub fn max_blocking(&self) -> f64 {
        self.subjobs.iter().copied().fold(0.0, f64::max)
    }

    /// Release period.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Relative deadline.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// The periodic abstraction (total WCET) for response-time analysis.
    ///
    /// # Errors
    ///
    /// Never fails for a valid split task.
    pub fn as_periodic(&self) -> Result<PeriodicTask, RtError> {
        PeriodicTask::with_deadline(self.total_wcet(), self.period, self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_validation() {
        assert!(PeriodicTask::new(2.0, 10.0).is_ok());
        assert!(PeriodicTask::new(11.0, 10.0).is_err());
        assert!(PeriodicTask::new(0.0, 10.0).is_err());
        assert!(PeriodicTask::with_deadline(2.0, 10.0, 12.0).is_err());
        assert!(PeriodicTask::with_deadline(5.0, 10.0, 4.0).is_err());
        let t = PeriodicTask::new(2.0, 10.0)
            .unwrap()
            .with_phase(3.0)
            .unwrap();
        assert_eq!(t.phase(), 3.0);
        assert!(PeriodicTask::new(2.0, 10.0)
            .unwrap()
            .with_phase(-1.0)
            .is_err());
    }

    #[test]
    fn sporadic_converts() {
        let s = SporadicTask::new(1.0, 5.0, 4.0).unwrap();
        assert_eq!(s.min_separation(), 5.0);
        let p: PeriodicTask = s.into();
        assert_eq!(p.period(), 5.0);
        assert_eq!(p.deadline(), 4.0);
        assert_eq!(s.as_periodic().wcet(), 1.0);
    }

    #[test]
    fn aperiodic_laxity() {
        let j = AperiodicJob::new(2.0, 3.0, 10.0).unwrap();
        assert_eq!(j.laxity(), 5.0);
        assert!(AperiodicJob::new(2.0, 3.0, 4.0).is_err());
        assert_eq!(j.arrival(), 2.0);
        assert_eq!(j.wcet(), 3.0);
        assert_eq!(j.absolute_deadline(), 10.0);
    }

    #[test]
    fn multiframe_utilizations() {
        let m = MultiframeTask::new(vec![1.0, 3.0, 2.0], 5.0, 5.0).unwrap();
        assert_eq!(m.peak_wcet(), 3.0);
        assert!((m.average_utilization() - 0.4).abs() < 1e-12);
        assert!((m.peak_utilization() - 0.6).abs() < 1e-12);
        let p = m.as_peak_periodic().unwrap();
        assert_eq!(p.wcet(), 3.0);
        assert!(MultiframeTask::new(vec![], 5.0, 5.0).is_err());
        assert!(MultiframeTask::new(vec![6.0], 5.0, 5.0).is_err());
    }

    #[test]
    fn elastic_ranges() {
        let e = ElasticTask::new(2.0, 10.0, 20.0, 1.0).unwrap();
        assert_eq!(e.nominal_utilization(), 0.2);
        assert_eq!(e.min_utilization(), 0.1);
        assert!(ElasticTask::new(2.0, 20.0, 10.0, 1.0).is_err());
        assert!(ElasticTask::new(12.0, 10.0, 20.0, 1.0).is_err());
    }

    #[test]
    fn mixed_criticality_validation() {
        let hi = MixedCriticalityTask::new(1.0, 3.0, 10.0, 10.0, Criticality::Hi).unwrap();
        assert_eq!(hi.wcet_hi(), 3.0);
        assert!(MixedCriticalityTask::new(3.0, 1.0, 10.0, 10.0, Criticality::Hi).is_err());
        // HI task whose HI budget misses the deadline.
        assert!(MixedCriticalityTask::new(1.0, 12.0, 10.0, 10.0, Criticality::Hi).is_err());
        // The same budget is fine for a LO task (its HI value is unused
        // for feasibility but still capped by validation at deadline for
        // HI criticality only).
        assert!(MixedCriticalityTask::new(1.0, 1.0, 10.0, 10.0, Criticality::Lo).is_ok());
    }

    #[test]
    fn split_task_blocking() {
        let s = SplitTask::new(vec![1.0, 4.0, 2.0], 20.0, 15.0).unwrap();
        assert_eq!(s.total_wcet(), 7.0);
        assert_eq!(s.max_blocking(), 4.0);
        assert_eq!(s.as_periodic().unwrap().wcet(), 7.0);
        assert!(SplitTask::new(vec![], 20.0, 15.0).is_err());
        assert!(SplitTask::new(vec![20.0], 20.0, 15.0).is_err());
    }
}
