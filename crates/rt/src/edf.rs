//! Exact EDF schedulability: the processor-demand criterion and QPA.
//!
//! For constrained-deadline periodic/sporadic tasks on one processor,
//! EDF is schedulable iff the demand bound function never exceeds the
//! interval length: `∀ t > 0 : h(t) ≤ t`, where
//!
//! `h(t) = Σᵢ max(0, ⌊(t − Dᵢ)/Tᵢ⌋ + 1) · Cᵢ`.
//!
//! Checking every absolute deadline up to the busy-period bound is
//! exponential in the worst case; *Quick Processor-demand Analysis*
//! (QPA, Zhang & Burns 2009) walks backwards from the bound and
//! converges in a handful of iterations in practice.

use crate::error::RtError;
use crate::models::PeriodicTask;

/// The demand bound function `h(t)`: total execution demand of jobs
/// with both release and deadline inside any interval of length `t`.
#[must_use]
pub fn demand_bound(tasks: &[PeriodicTask], t: f64) -> f64 {
    tasks
        .iter()
        .map(|task| {
            let jobs = ((t - task.deadline()) / task.period()).floor() + 1.0;
            jobs.max(0.0) * task.wcet()
        })
        .sum()
}

/// The analysis interval bound `L`: EDF demand only needs checking up
/// to `min(busy period, La)` where
/// `La = max(D_max, Σ (Tᵢ − Dᵢ) Uᵢ / (1 − U))`.
///
/// Returns `None` when total utilization exceeds 1 (trivially
/// unschedulable — the bound diverges).
#[must_use]
pub fn analysis_bound(tasks: &[PeriodicTask]) -> Option<f64> {
    let u: f64 = tasks.iter().map(PeriodicTask::utilization).sum();
    if u > 1.0 + 1e-12 {
        return None;
    }
    let d_max = tasks.iter().map(PeriodicTask::deadline).fold(0.0, f64::max);
    let la = if u >= 1.0 - 1e-12 {
        // Full utilization: fall back to the synchronous busy period.
        busy_period(tasks)
    } else {
        let num: f64 = tasks
            .iter()
            .map(|t| (t.period() - t.deadline()).max(0.0) * t.utilization())
            .sum();
        (num / (1.0 - u)).max(d_max)
    };
    Some(la.min(busy_period(tasks)).max(d_max))
}

/// Length of the synchronous busy period: the fixed point of
/// `w = Σ ⌈w/Tᵢ⌉ Cᵢ` starting from `Σ Cᵢ`.
#[must_use]
pub fn busy_period(tasks: &[PeriodicTask]) -> f64 {
    let mut w: f64 = tasks.iter().map(PeriodicTask::wcet).sum();
    for _ in 0..10_000 {
        let next: f64 = tasks
            .iter()
            .map(|t| (w / t.period()).ceil() * t.wcet())
            .sum();
        if (next - w).abs() <= 1e-9 {
            return next;
        }
        w = next;
    }
    w
}

/// The largest absolute deadline strictly below `t` (the QPA step).
fn prev_deadline(tasks: &[PeriodicTask], t: f64) -> f64 {
    let mut best = 0.0f64;
    for task in tasks {
        // Deadlines are D + k·T; the largest one < t.
        if task.deadline() < t {
            let k = ((t - task.deadline()) / task.period()).ceil() - 1.0;
            let candidate = task.deadline() + k.max(0.0) * task.period();
            if candidate < t {
                best = best.max(candidate);
            }
        }
    }
    best
}

/// Exact EDF schedulability via QPA for constrained-deadline periodic
/// tasks on one processor.
///
/// # Errors
///
/// Returns [`RtError::Inconsistent`] for an empty taskset.
pub fn qpa_edf_test(tasks: &[PeriodicTask]) -> Result<bool, RtError> {
    if tasks.is_empty() {
        return Err(RtError::Inconsistent("empty taskset".into()));
    }
    let Some(bound) = analysis_bound(tasks) else {
        return Ok(false); // U > 1
    };
    let d_min = tasks
        .iter()
        .map(PeriodicTask::deadline)
        .fold(f64::INFINITY, f64::min);

    // QPA: walk t backwards from the bound.
    let mut t = prev_deadline(tasks, bound + 1e-9);
    let mut iterations = 0u32;
    while t > d_min + 1e-12 {
        iterations += 1;
        if iterations > 1_000_000 {
            // Defensive: fall back to "unschedulable" rather than hang.
            return Ok(false);
        }
        let h = demand_bound(tasks, t);
        if h > t + 1e-9 {
            return Ok(false);
        }
        t = if h < t - 1e-12 {
            h.max(prev_deadline(tasks, t))
        } else {
            prev_deadline(tasks, t)
        };
    }
    Ok(demand_bound(tasks, d_min) <= d_min + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: f64, p: f64, d: f64) -> PeriodicTask {
        PeriodicTask::with_deadline(c, p, d).unwrap()
    }

    #[test]
    fn demand_bound_basics() {
        let ts = vec![t(1.0, 4.0, 4.0)];
        assert_eq!(demand_bound(&ts, 3.9), 0.0);
        assert_eq!(demand_bound(&ts, 4.0), 1.0);
        assert_eq!(demand_bound(&ts, 8.0), 2.0);
        assert_eq!(demand_bound(&ts, 11.9), 2.0);
    }

    #[test]
    fn implicit_deadline_matches_utilization_test() {
        // For implicit deadlines, QPA must agree with U <= 1.
        let ok = vec![t(1.0, 4.0, 4.0), t(2.0, 4.0, 4.0), t(1.0, 4.0, 4.0)];
        assert!(qpa_edf_test(&ok).unwrap(), "U = 1.0 exactly");
        let over = vec![t(3.0, 4.0, 4.0), t(2.0, 4.0, 4.0)];
        assert!(!qpa_edf_test(&over).unwrap(), "U > 1");
    }

    #[test]
    fn constrained_deadlines_can_fail_below_full_utilization() {
        // U = 0.75 but tight deadlines overload short intervals.
        let ts = vec![t(2.0, 8.0, 2.0), t(2.0, 8.0, 2.5)];
        // At t = 2.5: demand 4.0 > 2.5 -> unschedulable.
        assert!(!qpa_edf_test(&ts).unwrap());
        // Relax one deadline: schedulable.
        let ts = vec![t(2.0, 8.0, 2.0), t(2.0, 8.0, 4.5)];
        assert!(qpa_edf_test(&ts).unwrap());
    }

    #[test]
    fn classic_example_baruah() {
        // A known-schedulable constrained set.
        let ts = vec![t(1.0, 4.0, 2.0), t(1.0, 5.0, 3.0), t(2.0, 10.0, 8.0)];
        assert!(qpa_edf_test(&ts).unwrap());
        // Inflate until an interval overloads: at t = 3 the first two
        // tasks demand 2 + 2 = 4 > 3.
        let ts = vec![t(2.0, 4.0, 2.0), t(2.0, 5.0, 3.0), t(2.0, 10.0, 8.0)];
        assert!(demand_bound(&ts, 3.0) > 3.0);
        assert!(!qpa_edf_test(&ts).unwrap());
    }

    #[test]
    fn busy_period_fixed_point() {
        let ts = vec![t(1.0, 2.0, 2.0), t(1.0, 4.0, 4.0)];
        // w = 1+1=2 -> ceil(2/2)*1+ceil(2/4)*1 = 2 ... wait: 1+1=2; then
        // ceil(2/2)=1, ceil(2/4)=1 -> 2: fixed point at 2? 2 -> 1*1+1*1=2 yes.
        // Actually U=0.75: busy period = 2? h: at w=2 both release once.
        assert!((busy_period(&ts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_taskset_rejected() {
        assert!(qpa_edf_test(&[]).is_err());
    }

    #[test]
    fn qpa_agrees_with_brute_force_on_random_sets() {
        use crate::taskset;
        use rand::SeedableRng;
        let mut agreements = 0;
        for seed in 0..60u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let base = taskset::random_taskset(5, 0.85, 4.0, 64.0, &mut rng).unwrap();
            // Constrain deadlines to 60-100% of period.
            let ts: Vec<PeriodicTask> = base
                .iter()
                .map(|task| {
                    let d = (task.period() * 0.6).max(task.wcet());
                    PeriodicTask::with_deadline(task.wcet(), task.period(), d).unwrap()
                })
                .collect();
            let qpa = qpa_edf_test(&ts).unwrap();
            // Brute force: check every absolute deadline up to the bound.
            let bound = analysis_bound(&ts).unwrap();
            let mut brute = true;
            for task in &ts {
                let mut dl = task.deadline();
                while dl <= bound + 1e-9 {
                    if demand_bound(&ts, dl) > dl + 1e-9 {
                        brute = false;
                        break;
                    }
                    dl += task.period();
                }
            }
            assert_eq!(qpa, brute, "seed {seed}: QPA {qpa} vs brute {brute}");
            agreements += 1;
        }
        assert_eq!(agreements, 60);
    }
}
