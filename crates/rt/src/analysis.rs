//! Schedulability analysis.

use crate::error::RtError;
use crate::models::{Criticality, ElasticTask, MixedCriticalityTask, PeriodicTask, SplitTask};

/// Total utilization of a periodic taskset.
#[must_use]
pub fn total_utilization(tasks: &[PeriodicTask]) -> f64 {
    tasks.iter().map(PeriodicTask::utilization).sum()
}

/// Liu & Layland's rate-monotonic utilization bound `n(2^{1/n} − 1)`.
/// Tasksets at or below the bound are schedulable under RM; above it the
/// test is inconclusive (use [`rta_fixed_priority`]).
#[must_use]
pub fn rm_utilization_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2.0f64.powf(1.0 / n) - 1.0)
}

/// Sufficient RM test by the Liu–Layland bound.
#[must_use]
pub fn rm_utilization_test(tasks: &[PeriodicTask]) -> bool {
    total_utilization(tasks) <= rm_utilization_bound(tasks.len()) + 1e-12
}

/// The hyperbolic bound (Bini & Buttazzo): schedulable under RM if
/// `Π (Uᵢ + 1) ≤ 2`. Strictly dominates the Liu–Layland bound.
#[must_use]
pub fn hyperbolic_test(tasks: &[PeriodicTask]) -> bool {
    tasks.iter().map(|t| t.utilization() + 1.0).product::<f64>() <= 2.0 + 1e-12
}

/// Exact EDF test for implicit-deadline periodic tasks: `U ≤ 1`.
#[must_use]
pub fn edf_test(tasks: &[PeriodicTask]) -> bool {
    total_utilization(tasks) <= 1.0 + 1e-12
}

/// Exact fixed-priority response-time analysis (deadline-monotonic
/// priority order, preemptive, uniprocessor). Optionally accounts for a
/// per-task blocking term (limited-preemption / resource access).
///
/// Returns `Some(response_times)` (indexed like the input, which is
/// re-sorted internally by deadline-monotonic priority) when every task
/// meets its deadline, `None` when any task misses.
///
/// # Errors
///
/// Returns [`RtError::Inconsistent`] if `blocking` is present but its
/// length differs from `tasks`.
pub fn rta_fixed_priority_with_blocking(
    tasks: &[PeriodicTask],
    blocking: Option<&[f64]>,
) -> Result<Option<Vec<f64>>, RtError> {
    if let Some(b) = blocking {
        if b.len() != tasks.len() {
            return Err(RtError::Inconsistent(format!(
                "blocking vector length {} != taskset size {}",
                b.len(),
                tasks.len()
            )));
        }
    }
    // Deadline-monotonic priority: shorter deadline = higher priority.
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| tasks[a].deadline().total_cmp(&tasks[b].deadline()));

    let mut response = vec![0.0; tasks.len()];
    for (rank, &i) in order.iter().enumerate() {
        let task = &tasks[i];
        let b = blocking.map_or(0.0, |bl| bl[i]);
        let mut r = task.wcet() + b;
        loop {
            let mut interference = 0.0;
            for &j in &order[..rank] {
                let hp = &tasks[j];
                interference += (r / hp.period()).ceil() * hp.wcet();
            }
            let next = task.wcet() + b + interference;
            if next > task.deadline() + 1e-12 {
                return Ok(None);
            }
            if (next - r).abs() <= 1e-12 {
                r = next;
                break;
            }
            r = next;
        }
        response[i] = r;
    }
    Ok(Some(response))
}

/// [`rta_fixed_priority_with_blocking`] without blocking terms.
///
/// # Errors
///
/// Never fails (the blocking-length check is vacuous).
pub fn rta_fixed_priority(tasks: &[PeriodicTask]) -> Result<Option<Vec<f64>>, RtError> {
    rta_fixed_priority_with_blocking(tasks, None)
}

/// Response-time analysis for limited-preemption [`SplitTask`]s: each
/// task suffers blocking equal to the largest non-preemptive sub-job of
/// any lower-priority task.
///
/// # Errors
///
/// Propagates construction errors from the periodic abstraction.
pub fn rta_split_tasks(tasks: &[SplitTask]) -> Result<Option<Vec<f64>>, RtError> {
    let periodic: Vec<PeriodicTask> = tasks
        .iter()
        .map(SplitTask::as_periodic)
        .collect::<Result<_, _>>()?;
    // Deadline-monotonic rank for blocking computation.
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| periodic[a].deadline().total_cmp(&periodic[b].deadline()));
    let mut blocking = vec![0.0; tasks.len()];
    for (rank, &i) in order.iter().enumerate() {
        blocking[i] = order[rank + 1..]
            .iter()
            .map(|&j| tasks[j].max_blocking())
            .fold(0.0, f64::max);
    }
    rta_fixed_priority_with_blocking(&periodic, Some(&blocking))
}

/// Buttazzo's elastic compression: shrink task rates (stretch periods)
/// proportionally to elasticity until total utilization fits `u_target`.
/// Returns the compressed periods, or `None` when even maximal
/// compression cannot reach the target.
///
/// # Errors
///
/// Returns [`RtError::InvalidParameter`] for a non-positive target.
pub fn elastic_compress(tasks: &[ElasticTask], u_target: f64) -> Result<Option<Vec<f64>>, RtError> {
    if !(u_target.is_finite() && u_target > 0.0) {
        return Err(RtError::InvalidParameter {
            name: "u_target",
            value: u_target,
        });
    }
    let u_nominal: f64 = tasks.iter().map(ElasticTask::nominal_utilization).sum();
    if u_nominal <= u_target {
        return Ok(Some(tasks.iter().map(|t| t.period_min()).collect()));
    }
    let u_min: f64 = tasks.iter().map(ElasticTask::min_utilization).sum();
    if u_min > u_target + 1e-12 {
        return Ok(None);
    }
    // Iteratively compress; tasks that hit period_max become fixed.
    let n = tasks.len();
    let mut fixed = vec![false; n];
    let mut u = vec![0.0; n];
    loop {
        let mut u_fixed = 0.0;
        let mut e_sum = 0.0;
        for (i, t) in tasks.iter().enumerate() {
            if fixed[i] {
                u_fixed += t.min_utilization();
            } else {
                e_sum += t.elasticity();
            }
        }
        if e_sum == 0.0 {
            // All flexible tasks are rigid: only feasible if fixed load fits.
            for (i, t) in tasks.iter().enumerate() {
                u[i] = if fixed[i] {
                    t.min_utilization()
                } else {
                    t.nominal_utilization()
                };
            }
            let total: f64 = u.iter().sum();
            if total <= u_target + 1e-9 {
                break;
            }
            return Ok(None);
        }
        let u_flex_nominal: f64 = tasks
            .iter()
            .enumerate()
            .filter(|(i, _)| !fixed[*i])
            .map(|(_, t)| t.nominal_utilization())
            .sum();
        let excess = u_flex_nominal - (u_target - u_fixed);
        let mut converged = true;
        for (i, t) in tasks.iter().enumerate() {
            if fixed[i] {
                u[i] = t.min_utilization();
                continue;
            }
            let compressed = t.nominal_utilization() - excess * t.elasticity() / e_sum;
            if compressed < t.min_utilization() - 1e-12 {
                fixed[i] = true;
                converged = false;
            } else {
                u[i] = compressed;
            }
        }
        if converged {
            break;
        }
    }
    Ok(Some(
        tasks
            .iter()
            .zip(&u)
            .map(|(t, &ui)| (t.wcet() / ui).clamp(t.period_min(), t.period_max()))
            .collect(),
    ))
}

/// AMC-rtb (adaptive mixed criticality, response-time bound; Baruah,
/// Burns & Davis 2011), two criticality levels, deadline-monotonic
/// priorities.
///
/// Verifies (1) every task meets its deadline in LO mode using LO
/// budgets, and (2) every HI task meets its deadline across the mode
/// switch: HI-mode interference from HI tasks plus LO-mode interference
/// (frozen at the LO response time) from LO tasks.
#[must_use]
pub fn amc_rtb_test(tasks: &[MixedCriticalityTask]) -> bool {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| tasks[a].deadline().total_cmp(&tasks[b].deadline()));
    let rank_of = |i: usize| order.iter().position(|&x| x == i).unwrap_or(0);

    // Phase 1: LO-mode RTA with LO budgets.
    let mut r_lo = vec![0.0; tasks.len()];
    for &i in &order {
        let t = &tasks[i];
        let mut r = t.wcet_lo();
        loop {
            let mut interference = 0.0;
            for &j in &order[..rank_of(i)] {
                interference += (r / tasks[j].period()).ceil() * tasks[j].wcet_lo();
            }
            let next = t.wcet_lo() + interference;
            if next > t.deadline() + 1e-12 {
                return false;
            }
            if (next - r).abs() <= 1e-12 {
                r = next;
                break;
            }
            r = next;
        }
        r_lo[i] = r;
    }
    // Phase 2: mode-switch RTA for HI tasks.
    for &i in &order {
        let t = &tasks[i];
        if t.criticality() != Criticality::Hi {
            continue;
        }
        let mut r = t.wcet_hi();
        loop {
            let mut interference = 0.0;
            for &j in &order[..rank_of(i)] {
                let hp = &tasks[j];
                match hp.criticality() {
                    Criticality::Hi => {
                        interference += (r / hp.period()).ceil() * hp.wcet_hi();
                    }
                    Criticality::Lo => {
                        // LO tasks stop at the switch: interference frozen
                        // at the LO-mode response time of task i.
                        interference += (r_lo[i] / hp.period()).ceil() * hp.wcet_lo();
                    }
                }
            }
            let next = t.wcet_hi() + interference;
            if next > t.deadline() + 1e-12 {
                return false;
            }
            if (next - r).abs() <= 1e-12 {
                break;
            }
            r = next;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: f64, p: f64) -> PeriodicTask {
        PeriodicTask::new(c, p).unwrap()
    }

    #[test]
    fn ll_bound_values() {
        assert!((rm_utilization_bound(1) - 1.0).abs() < 1e-12);
        assert!((rm_utilization_bound(2) - 0.8284271247).abs() < 1e-9);
        // n → ∞ tends to ln 2.
        assert!((rm_utilization_bound(10_000) - std::f64::consts::LN_2).abs() < 1e-4);
        assert_eq!(rm_utilization_bound(0), 1.0);
    }

    #[test]
    fn classic_ll_example() {
        // U = 0.5 + 0.25 = 0.75 < bound(2) = 0.828: RM schedulable.
        let ts = vec![t(1.0, 2.0), t(1.0, 4.0)];
        assert!(rm_utilization_test(&ts));
        assert!(hyperbolic_test(&ts));
        assert!(edf_test(&ts));
        let r = rta_fixed_priority(&ts).unwrap().unwrap();
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 2.0);
    }

    #[test]
    fn rta_catches_what_bound_misses() {
        // U = 1.0: fails both utilization bounds but is RM-schedulable
        // (harmonic periods).
        let ts = vec![t(1.0, 2.0), t(2.0, 4.0)];
        assert!(!rm_utilization_test(&ts));
        assert!(edf_test(&ts));
        let r = rta_fixed_priority(&ts).unwrap();
        assert!(r.is_some(), "harmonic full-utilization set is schedulable");
        assert_eq!(r.unwrap()[1], 4.0);
    }

    #[test]
    fn hyperbolic_dominates_ll() {
        // Three tasks with u = 0.258 each: U = 0.774, just under the
        // hyperbolic product bound (1.258³ = 1.991) but just over the
        // Liu–Layland bound for n = 3 (0.7798 vs... 0.774 is under; push
        // to 0.26 each for LL rejection is too much for hyperbolic, so
        // craft asymmetric utilizations instead).
        let ts = vec![t(4.0, 10.0), t(2.0, 10.0), t(1.9, 10.0)];
        // U = 0.79 > LL bound 0.7798; Π = 1.4·1.2·1.19 = 1.999 ≤ 2.
        assert!(!rm_utilization_test(&ts));
        assert!(hyperbolic_test(&ts));
    }

    #[test]
    fn overload_is_rejected() {
        let ts = vec![t(3.0, 4.0), t(3.0, 4.0)];
        assert!(!edf_test(&ts));
        assert!(rta_fixed_priority(&ts).unwrap().is_none());
    }

    #[test]
    fn blocking_lengths_checked() {
        let ts = vec![t(1.0, 4.0)];
        assert!(rta_fixed_priority_with_blocking(&ts, Some(&[0.0, 0.0])).is_err());
        let r = rta_fixed_priority_with_blocking(&ts, Some(&[2.0]))
            .unwrap()
            .unwrap();
        assert_eq!(r[0], 3.0);
    }

    #[test]
    fn split_task_blocking_degrades_schedulability() {
        // High-priority task with tight deadline; low-priority task with a
        // big non-preemptive chunk.
        let hp = SplitTask::new(vec![1.0], 4.0, 2.0).unwrap();
        let lp_small = SplitTask::new(vec![1.0, 1.0, 1.0], 20.0, 20.0).unwrap();
        let lp_big = SplitTask::new(vec![3.0], 20.0, 20.0).unwrap();
        assert!(rta_split_tasks(&[hp.clone(), lp_small]).unwrap().is_some());
        // Blocking 3.0 pushes the HP response past its 2.0 deadline.
        assert!(rta_split_tasks(&[hp, lp_big]).unwrap().is_none());
    }

    #[test]
    fn elastic_compression_meets_target() {
        let tasks = vec![
            ElasticTask::new(2.0, 10.0, 40.0, 1.0).unwrap(),
            ElasticTask::new(3.0, 10.0, 40.0, 1.0).unwrap(),
            ElasticTask::new(4.0, 10.0, 40.0, 2.0).unwrap(),
        ];
        // Nominal U = 0.9; compress to 0.6.
        let periods = elastic_compress(&tasks, 0.6).unwrap().unwrap();
        let u: f64 = tasks.iter().zip(&periods).map(|(t, &p)| t.wcet() / p).sum();
        assert!(u <= 0.6 + 1e-9, "compressed U = {u}");
        for (t, &p) in tasks.iter().zip(&periods) {
            assert!(p >= t.period_min() - 1e-12 && p <= t.period_max() + 1e-12);
        }
        // Higher elasticity gives up more utilization.
        let give = |i: usize| tasks[i].nominal_utilization() - tasks[i].wcet() / periods[i];
        assert!(give(2) > give(1), "stiffer task compressed less");
    }

    #[test]
    fn elastic_compression_infeasible_and_trivial() {
        let tasks = vec![ElasticTask::new(5.0, 10.0, 12.0, 1.0).unwrap()];
        assert!(elastic_compress(&tasks, 0.1).unwrap().is_none());
        // Already fits: nominal periods returned.
        let p = elastic_compress(&tasks, 0.9).unwrap().unwrap();
        assert_eq!(p, vec![10.0]);
        assert!(elastic_compress(&tasks, 0.0).is_err());
    }

    #[test]
    fn elastic_rigid_tasks() {
        // Zero elasticity everywhere: can't compress at all.
        let tasks = vec![
            ElasticTask::new(4.0, 10.0, 40.0, 0.0).unwrap(),
            ElasticTask::new(4.0, 10.0, 40.0, 0.0).unwrap(),
        ];
        assert!(elastic_compress(&tasks, 0.5).unwrap().is_none());
    }

    #[test]
    fn amc_accepts_light_and_rejects_heavy() {
        use Criticality::*;
        let light = vec![
            MixedCriticalityTask::new(1.0, 2.0, 10.0, 10.0, Hi).unwrap(),
            MixedCriticalityTask::new(2.0, 2.0, 10.0, 10.0, Lo).unwrap(),
        ];
        assert!(amc_rtb_test(&light));
        // A higher-priority LO task whose frozen interference pushes the
        // HI task past its deadline after the mode switch:
        // r_lo(HI) = 2 + 4 = 6; HI mode: 8 + ceil(6/10)·4 = 12 > 10.
        let heavy = vec![
            MixedCriticalityTask::new(2.0, 8.0, 10.0, 10.0, Hi).unwrap(),
            MixedCriticalityTask::new(4.0, 4.0, 10.0, 5.0, Lo).unwrap(),
        ];
        assert!(!amc_rtb_test(&heavy));
    }

    #[test]
    fn amc_lo_mode_failure_detected() {
        use Criticality::*;
        let ts = vec![
            MixedCriticalityTask::new(6.0, 6.0, 10.0, 10.0, Lo).unwrap(),
            MixedCriticalityTask::new(5.0, 5.0, 10.0, 10.0, Lo).unwrap(),
        ];
        assert!(!amc_rtb_test(&ts), "LO-mode overload must fail");
    }
}
