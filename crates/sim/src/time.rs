//! Virtual-time types.
//!
//! Simulated time is measured in seconds and stored as `f64`. The types here
//! enforce the two invariants the rest of the workspace relies on:
//!
//! * a [`SimTime`] is always finite and non-negative,
//! * a [`SimDuration`] is always finite and non-negative.
//!
//! Violations are caught at construction ([`SimTime::try_from_secs`]) or, for
//! the infallible constructors, by a panic with a clear message — a NaN
//! timestamp silently entering the event queue would corrupt event ordering.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Error returned when constructing a [`SimTime`] or [`SimDuration`] from an
/// invalid floating-point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// The value was NaN or infinite.
    NotFinite,
    /// The value was negative.
    Negative,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::NotFinite => write!(f, "time value was not finite"),
            TimeError::Negative => write!(f, "time value was negative"),
        }
    }
}

impl std::error::Error for TimeError {}

fn validate(secs: f64) -> Result<f64, TimeError> {
    if !secs.is_finite() {
        Err(TimeError::NotFinite)
    } else if secs < 0.0 {
        Err(TimeError::Negative)
    } else {
        Ok(secs)
    }
}

/// An instant on the simulated timeline, in seconds since simulation start.
///
/// `SimTime` is totally ordered (the construction invariant rules out NaN),
/// so it can key the event queue directly.
///
/// # Examples
///
/// ```
/// use helios_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(1.5);
/// assert_eq!(t.as_secs(), 1.5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

// Invariant: the inner value is finite and non-negative, so `partial_cmp`
// never returns `None` and these manual impls are sound.
impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a `SimTime` from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN, infinite or negative. Use
    /// [`SimTime::try_from_secs`] for fallible construction.
    #[must_use]
    pub fn from_secs(secs: f64) -> SimTime {
        match Self::try_from_secs(secs) {
            Ok(t) => t,
            Err(e) => panic!("invalid SimTime {secs}: {e}"),
        }
    }

    /// Creates a `SimTime` from seconds, validating the input.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError`] if `secs` is NaN, infinite or negative.
    pub fn try_from_secs(secs: f64) -> Result<SimTime, TimeError> {
        validate(secs).map(SimTime)
    }

    /// Returns the instant as seconds since simulation start.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is actually later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// A span of simulated time, in seconds. Always finite and non-negative.
///
/// # Examples
///
/// ```
/// use helios_sim::SimDuration;
///
/// let d = SimDuration::from_secs(2.0) * 3.0;
/// assert_eq!(d.as_secs(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimDuration(f64);

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a `SimDuration` from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN, infinite or negative. Use
    /// [`SimDuration::try_from_secs`] for fallible construction.
    #[must_use]
    pub fn from_secs(secs: f64) -> SimDuration {
        match Self::try_from_secs(secs) {
            Ok(d) => d,
            Err(e) => panic!("invalid SimDuration {secs}: {e}"),
        }
    }

    /// Creates a `SimDuration` from seconds, validating the input.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError`] if `secs` is NaN, infinite or negative.
    pub fn try_from_secs(secs: f64) -> Result<SimDuration, TimeError> {
        validate(secs).map(SimDuration)
    }

    /// Returns the span as seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// Saturating difference between two durations.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    /// Scales a duration.
    ///
    /// # Panics
    ///
    /// Panics if the scale factor is negative or not finite.
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;

    /// Divides a duration.
    ///
    /// # Panics
    ///
    /// Panics if the divisor is zero, negative or not finite.
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(SimTime::try_from_secs(-1.0), Err(TimeError::Negative));
        assert_eq!(SimTime::try_from_secs(f64::NAN), Err(TimeError::NotFinite));
        assert_eq!(
            SimTime::try_from_secs(f64::INFINITY),
            Err(TimeError::NotFinite)
        );
        assert!(SimTime::try_from_secs(0.0).is_ok());
        assert_eq!(SimDuration::try_from_secs(-0.5), Err(TimeError::Negative));
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn from_secs_panics_on_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 12.5);
        assert_eq!(((t + d) - t).as_secs(), 2.5);
        assert_eq!((d * 2.0).as_secs(), 5.0);
        assert_eq!((d / 2.0).as_secs(), 1.25);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(b.saturating_since(a).as_secs(), 2.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        times.sort();
        assert_eq!(times[0].as_secs(), 1.0);
        assert_eq!(times[2].as_secs(), 3.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_secs(1.0).max(SimDuration::from_secs(4.0)),
            SimDuration::from_secs(4.0)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(f64::from(i))).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn duration_sub_saturates() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(2.0);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!((b - a).as_secs(), 1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250000s");
    }
}
