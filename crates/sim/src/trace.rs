//! Execution tracing.
//!
//! A [`Trace`] records what happened during a simulated run as a flat
//! list of [`TraceEvent`]s — task executions, data transfers, faults —
//! each bound to a *track* (a device or link) and a time span. Traces
//! export to the Chrome trace-event JSON format, so a run can be
//! inspected interactively in `chrome://tracing` / Perfetto.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The kind of activity a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// A task executing on a device.
    Execution,
    /// A data transfer occupying a link or path.
    Transfer,
    /// A fault-recovery interval (restart overhead).
    Recovery,
    /// A device sleeping under DRS.
    Sleep,
}

impl TraceKind {
    /// Short stable category label (Chrome trace `cat` field).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Execution => "exec",
            TraceKind::Transfer => "xfer",
            TraceKind::Recovery => "recovery",
            TraceKind::Sleep => "sleep",
        }
    }
}

/// One completed span on one track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span label (task name, edge description, …).
    pub name: String,
    /// Activity category.
    pub kind: TraceKind,
    /// Track index (device id or link id, namespaced by `kind`).
    pub track: usize,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
}

/// An append-only recording of a run.
///
/// # Examples
///
/// ```
/// use helios_sim::trace::{Trace, TraceKind};
/// use helios_sim::SimTime;
///
/// let mut trace = Trace::new();
/// trace.record("mProject_0", TraceKind::Execution, 0,
///              SimTime::from_secs(0.0), SimTime::from_secs(1.5));
/// assert_eq!(trace.len(), 1);
/// let json = trace.to_chrome_json(&["cpu0".into()]);
/// assert!(json.contains("mProject_0"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records one completed span.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        kind: TraceKind,
        track: usize,
        start: SimTime,
        end: SimTime,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            kind,
            track,
            start,
            end,
        });
    }

    /// All recorded events, in recording order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overlapping the given window, in recording order.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.end >= from && e.start <= to)
    }

    /// Total busy time per track for one activity kind. The result maps
    /// `track -> seconds`; missing tracks saw no activity.
    #[must_use]
    pub fn busy_by_track(&self, kind: TraceKind) -> std::collections::BTreeMap<usize, f64> {
        let mut busy = std::collections::BTreeMap::new();
        for e in &self.events {
            if e.kind == kind {
                *busy.entry(e.track).or_insert(0.0) += e.end.saturating_since(e.start).as_secs();
            }
        }
        busy
    }

    /// Serializes to the Chrome trace-event format (a JSON array of
    /// complete `"X"` events, microsecond timestamps). `track_names`
    /// labels the execution tracks (device names); transfer tracks are
    /// named `link<N>`.
    #[must_use]
    pub fn to_chrome_json(&self, track_names: &[String]) -> String {
        use std::fmt::Write as _;

        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            let tid = e.track;
            let pid = match e.kind {
                TraceKind::Execution | TraceKind::Recovery | TraceKind::Sleep => 1,
                TraceKind::Transfer => 2,
            };
            let track_label = match e.kind {
                TraceKind::Transfer => format!("link{tid}"),
                _ => track_names
                    .get(tid)
                    .cloned()
                    .unwrap_or_else(|| format!("track{tid}")),
            };
            let ts_us = e.start.as_secs() * 1e6;
            let dur_us = e.end.saturating_since(e.start).as_secs() * 1e6;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {ts_us:.3}, \"dur\": {dur_us:.3}, \"pid\": {pid}, \
                 \"tid\": {tid}, \"args\": {{\"track\": \"{track_label}\"}}}}",
                escape(&e.name),
                e.kind.as_str()
            );
            out.push_str(if i + 1 == self.events.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push(']');
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Extend<TraceEvent> for Trace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> Trace {
        let mut tr = Trace::new();
        tr.record("a", TraceKind::Execution, 0, t(0.0), t(1.0));
        tr.record("b", TraceKind::Execution, 0, t(2.0), t(3.0));
        tr.record("a->b", TraceKind::Transfer, 1, t(1.0), t(2.0));
        tr.record("b retry", TraceKind::Recovery, 0, t(3.0), t(3.5));
        tr
    }

    #[test]
    fn records_and_windows() {
        let tr = sample();
        assert_eq!(tr.len(), 4);
        assert!(!tr.is_empty());
        let in_window: Vec<_> = tr.window(t(1.5), t(2.5)).collect();
        assert_eq!(in_window.len(), 2, "task b and the transfer overlap");
    }

    #[test]
    fn busy_accounting() {
        let tr = sample();
        let exec = tr.busy_by_track(TraceKind::Execution);
        assert_eq!(exec[&0], 2.0);
        let xfer = tr.busy_by_track(TraceKind::Transfer);
        assert_eq!(xfer[&1], 1.0);
        assert!(tr.busy_by_track(TraceKind::Sleep).is_empty());
    }

    #[test]
    fn chrome_json_is_valid_json() {
        let tr = sample();
        let json = tr.to_chrome_json(&["cpu0".into(), "gpu0".into()]);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed.as_array().expect("array");
        assert_eq!(events.len(), 4);
        assert_eq!(events[0]["name"], "a");
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[2]["pid"], 2, "transfers go to the transfer pid");
        // Microsecond scaling.
        assert_eq!(events[1]["ts"], 2e6);
    }

    #[test]
    fn escaping() {
        let mut tr = Trace::new();
        tr.record("quo\"te\\path", TraceKind::Execution, 0, t(0.0), t(1.0));
        let json = tr.to_chrome_json(&[]);
        assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
    }

    #[test]
    fn empty_trace_exports() {
        let json = Trace::new().to_chrome_json(&[]);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }
}
