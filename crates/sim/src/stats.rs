//! Online statistics for experiment reporting.
//!
//! The experiment harness aggregates many simulation runs; these helpers
//! compute summary statistics without storing every sample ([`OnlineStats`],
//! Welford's algorithm) or with storage when percentiles are needed
//! ([`Sample`]), plus a fixed-width [`Histogram`] for distribution shapes.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use helios_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (which would poison every subsequent statistic).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot accumulate NaN sample");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance, or 0 with fewer than two samples.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`), or 0 when the mean is 0.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A stored sample supporting exact percentiles.
///
/// # Examples
///
/// ```
/// use helios_sim::stats::Sample;
///
/// let mut s: Sample = (1..=100).map(f64::from).collect();
/// assert_eq!(s.percentile(50.0), Some(50.5));
/// assert_eq!(s.percentile(100.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sample {
    values: Vec<f64>,
    sorted: bool,
}

impl Sample {
    /// Creates an empty sample.
    #[must_use]
    pub fn new() -> Sample {
        Sample::default()
    }

    /// Adds a value.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot store NaN sample");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no values are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Exact percentile `p` in `[0, 100]` with linear interpolation, or
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let n = self.values.len();
        if n == 1 {
            return Some(self.values[0]);
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Borrows the raw values (insertion order not guaranteed after a
    /// percentile query, which sorts in place).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Extend<f64> for Sample {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Sample {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Sample::new();
        s.extend(iter);
        s
    }
}

/// A fixed-width histogram over `[low, high)` with overflow/underflow bins.
///
/// # Examples
///
/// ```
/// use helios_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(2.5);
/// h.record(-1.0); // underflow
/// assert_eq!(h.bin_count(1), 1);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning
    /// `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`, `bins == 0`, or the bounds are not finite.
    #[must_use]
    pub fn new(low: f64, high: f64, bins: usize) -> Histogram {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "invalid histogram range [{low}, {high})"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a value.
    pub fn record(&mut self, x: f64) {
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / width) as usize;
            // Floating-point edge: x just below `high` can round to len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// `[start, end)` interval covered by bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.bins.len(), "bin index {idx} out of bounds");
        let width = (self.high - self.low) / self.bins.len() as f64;
        let start = self.low + width * idx as f64;
        (start, start + width)
    }

    /// Samples recorded below the histogram range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples recorded at or above the histogram range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..37].iter().copied().collect();
        let b: OnlineStats = all[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);

        let mut empty = OnlineStats::new();
        empty.merge(&seq);
        assert_eq!(empty.count(), seq.count());
        let mut seq2 = seq.clone();
        seq2.merge(&OnlineStats::new());
        assert_eq!(seq2.count(), seq.count());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn online_stats_rejects_nan() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s: Sample = (1..=4).map(f64::from).collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(4.0));
        assert_eq!(s.median(), Some(2.5));
        assert_eq!(s.percentile(25.0), Some(1.75));
    }

    #[test]
    fn percentile_edge_cases() {
        let mut empty = Sample::new();
        assert_eq!(empty.percentile(50.0), None);
        let mut one: Sample = std::iter::once(7.0).collect();
        assert_eq!(one.percentile(10.0), Some(7.0));
        assert_eq!(one.mean(), Some(7.0));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(f64::from(i) + 0.5);
        }
        h.record(10.0); // overflow (range is half-open)
        h.record(-0.1);
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1, "bin {i}");
        }
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 12);
        assert_eq!(h.bin_range(0), (0.0, 1.0));
        assert_eq!(h.num_bins(), 10);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 4);
    }
}
