//! Deterministic future-event list.
//!
//! [`EventQueue`] is a min-heap keyed by `(SimTime, sequence)`. The sequence
//! number is a monotonically increasing insertion counter, which gives
//! simultaneous events a stable first-in-first-out order — a requirement for
//! reproducible simulations, since [`std::collections::BinaryHeap`] makes no
//! ordering promise for equal keys.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event stored in the [`EventQueue`], pairing a payload with its
/// scheduled activation time and insertion sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> ScheduledEvent<E> {
    /// The simulated time at which the event fires.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The insertion sequence number (global FIFO tie-break key).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Borrows the event payload.
    #[must_use]
    pub fn payload(&self) -> &E {
        &self.payload
    }

    /// Consumes the entry, returning the payload.
    #[must_use]
    pub fn into_payload(self) -> E {
        self.payload
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event (and
        // for ties, the earliest-inserted event) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same [`SimTime`] are returned in insertion
/// order. Popping never returns an event earlier than the last popped event,
/// so consumers can treat the pop sequence as the simulation clock.
///
/// # Examples
///
/// ```
/// use helios_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// let (t, e) = q.pop().expect("queue is non-empty");
/// assert_eq!((t.as_secs(), e), (1.0, "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, payload });
    }

    /// Schedules every payload in `payloads` to fire at `time`, in
    /// iterator order (consecutive sequence numbers), reserving heap
    /// space once for the whole batch.
    ///
    /// Equivalent to calling [`push`](EventQueue::push) per payload —
    /// simultaneous batch members pop FIFO in batch order — but a bulk
    /// producer (e.g. one task finish fanning out same-timestamp
    /// arrivals to all its consumers) pays one reservation instead of
    /// per-event growth checks.
    pub fn push_batch<I>(&mut self, time: SimTime, payloads: I)
    where
        I: IntoIterator<Item = E>,
    {
        let iter = payloads.into_iter();
        let (lower, _) = iter.size_hint();
        self.heap.reserve(lower);
        for payload in iter {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(ScheduledEvent { time, seq, payload });
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|ev| (ev.time, ev.payload))
    }

    /// Returns the activation time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(ScheduledEvent::time)
    }

    /// Returns the number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains all events at the current head time (a simultaneous batch),
    /// in insertion order.
    ///
    /// Returns an empty vector when the queue is empty.
    pub fn pop_batch(&mut self) -> Vec<(SimTime, E)> {
        let mut batch = Vec::new();
        self.pop_batch_into(&mut batch);
        batch
    }

    /// [`pop_batch`](EventQueue::pop_batch) into a caller-owned buffer:
    /// appends the head-time batch to `buf` (which is *not* cleared) and
    /// returns how many events were drained. A consumer draining
    /// simultaneous batches every step can reuse one scratch buffer
    /// instead of allocating a fresh vector per batch.
    pub fn pop_batch_into(&mut self, buf: &mut Vec<(SimTime, E)>) -> usize {
        let Some(head) = self.peek_time() else {
            return 0;
        };
        let mut drained = 0;
        while self.peek_time() == Some(head) {
            // The loop condition guarantees the pop succeeds.
            if let Some(item) = self.pop() {
                buf.push(item);
                drained += 1;
            }
        }
        drained
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<T: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: T) {
        for (time, payload) in iter {
            self.push(time, payload);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<T: IntoIterator<Item = (SimTime, E)>>(iter: T) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 'c');
        q.push(t(1.0), 'a');
        q.push(t(2.0), 'b');
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, ['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(1.0), i);
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(t(2.0), ());
        q.push(t(1.0), ());
        assert_eq!(q.peek_time(), Some(t(1.0)));
        let (popped, ()) = q.pop().unwrap();
        assert_eq!(popped, t(1.0));
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(0.0), ());
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn batch_drains_equal_times_only() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1);
        q.push(t(1.0), 2);
        q.push(t(2.0), 3);
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, 1);
        assert_eq!(batch[1].1, 2);
        assert_eq!(q.len(), 1);
        assert!(EventQueue::<u8>::new().pop_batch().is_empty());
    }

    #[test]
    fn push_batch_matches_sequential_pushes() {
        // The batch push must be observationally identical to pushing
        // each payload in turn: same FIFO order among batch members,
        // same interleaving with singly-pushed events at the same time.
        let mut batched = EventQueue::new();
        let mut sequential = EventQueue::new();
        sequential.push(t(1.0), 0);
        batched.push(t(1.0), 0);
        sequential.push(t(1.0), 1);
        sequential.push(t(1.0), 2);
        batched.push_batch(t(1.0), [1, 2]);
        sequential.push(t(0.5), 3);
        batched.push(t(0.5), 3);
        sequential.push(t(1.0), 4);
        batched.push(t(1.0), 4);
        let a: Vec<_> = std::iter::from_fn(|| batched.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| sequential.pop()).collect();
        assert_eq!(a, b);
        assert_eq!(
            a.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            [3, 0, 1, 2, 4]
        );
    }

    #[test]
    fn pop_batch_into_reuses_the_buffer() {
        let mut q = EventQueue::new();
        q.push_batch(t(1.0), ["a", "b"]);
        q.push(t(2.0), "c");
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch_into(&mut buf), 2);
        assert_eq!(buf.iter().map(|&(_, e)| e).collect::<Vec<_>>(), ["a", "b"]);
        buf.clear();
        assert_eq!(q.pop_batch_into(&mut buf), 1);
        assert_eq!(buf[0].1, "c");
        buf.clear();
        assert_eq!(q.pop_batch_into(&mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let q: EventQueue<&str> = vec![(t(2.0), "b"), (t(1.0), "a")].into_iter().collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(1.0)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(5.0), "e");
        q.push(t(1.0), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t(3.0), "c");
        q.push(t(2.0), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "e");
    }
}
