//! Per-device failure processes.
//!
//! A [`FailureProcess`] turns a forked [`SimRng`] stream into a
//! deterministic sequence of timed [`FailureEvent`]s for one device:
//! inter-failure times follow either an exponential or a Weibull
//! distribution, and each event is classified as transient, degraded or
//! permanent by a second draw from the same stream. Because every device
//! owns its own stream, the trace a device experiences is independent of
//! how (or whether) any other component draws randomness — the property
//! the rest of the simulator relies on for bit-identical replays.
//!
//! The process is *memoryless across events but not across modes*: a
//! permanent failure ends the trace (the device has left the platform),
//! which callers observe via [`FailureEvent::kind`] and must not sample
//! past.

use crate::rng::SimRng;
use crate::time::SimTime;

/// What a failure does to the device it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The in-flight task attempt aborts; the device itself is fine.
    Transient,
    /// The device keeps running but slows down until repaired.
    Degraded,
    /// The device leaves the platform for the rest of the run.
    Permanent,
}

impl FailureKind {
    /// Stable lower-case name, used in reports and error messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Transient => "transient",
            FailureKind::Degraded => "degraded",
            FailureKind::Permanent => "permanent",
        }
    }
}

/// A timed failure on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// Absolute simulation time at which the failure strikes.
    pub at: SimTime,
    /// Severity class of the failure.
    pub kind: FailureKind,
}

/// Inter-failure time distribution for a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureDistribution {
    /// Memoryless failures with the given mean time to failure.
    Exponential {
        /// Mean time to failure in seconds.
        mttf_secs: f64,
    },
    /// Weibull inter-failure times: `scale` is the characteristic life
    /// (63.2nd percentile) in seconds, `shape` > 1 models ageing
    /// hardware, `shape` = 1 reduces to the exponential.
    Weibull {
        /// Characteristic life in seconds.
        scale_secs: f64,
        /// Dimensionless shape parameter.
        shape: f64,
    },
}

impl FailureDistribution {
    fn sample(self, rng: &mut SimRng) -> f64 {
        match self {
            FailureDistribution::Exponential { mttf_secs } => rng.exponential(mttf_secs),
            FailureDistribution::Weibull { scale_secs, shape } => rng.weibull(scale_secs, shape),
        }
    }

    /// Mean of the distribution in seconds.
    #[must_use]
    pub fn mean_secs(self) -> f64 {
        match self {
            FailureDistribution::Exponential { mttf_secs } => mttf_secs,
            // E[X] = scale * Γ(1 + 1/shape); Lanczos is overkill here, so
            // use the ln-gamma free identity via the gamma function from
            // Stirling only for display purposes. Keep it simple: callers
            // only use this for reporting, so a numeric Γ via the
            // reflection-free Lanczos approximation is fine.
            FailureDistribution::Weibull { scale_secs, shape } => {
                scale_secs * gamma(1.0 + 1.0 / shape)
            }
        }
    }
}

/// Lanczos approximation of Γ(x) for x > 0 (g = 7, n = 9 coefficients).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula; not hit for our 1 + 1/shape arguments but
        // kept so the helper is total on (0, 1).
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A deterministic per-device failure process.
///
/// # Examples
///
/// ```
/// use helios_sim::failure::{FailureDistribution, FailureProcess};
/// use helios_sim::{SimRng, SimTime};
///
/// let process = FailureProcess::new(
///     FailureDistribution::Exponential { mttf_secs: 10.0 },
///     0.1, // 10% of failures degrade the device
///     0.0, // none are permanent
/// )
/// .unwrap();
/// let mut rng = SimRng::seed_from(42).fork(7);
/// let first = process.next_after(&mut rng, SimTime::ZERO);
/// let mut rng2 = SimRng::seed_from(42).fork(7);
/// assert_eq!(first, process.next_after(&mut rng2, SimTime::ZERO));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureProcess {
    distribution: FailureDistribution,
    degraded_prob: f64,
    permanent_prob: f64,
}

impl FailureProcess {
    /// Creates a failure process; the remaining probability mass
    /// (`1 - degraded_prob - permanent_prob`) is transient.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter if the
    /// distribution parameters are not positive and finite, either
    /// probability is outside `[0, 1]`, or the two probabilities sum to
    /// more than 1.
    pub fn new(
        distribution: FailureDistribution,
        degraded_prob: f64,
        permanent_prob: f64,
    ) -> Result<FailureProcess, String> {
        match distribution {
            FailureDistribution::Exponential { mttf_secs } => {
                if !(mttf_secs.is_finite() && mttf_secs > 0.0) {
                    return Err(format!(
                        "mttf_secs must be positive and finite, got {mttf_secs}"
                    ));
                }
            }
            FailureDistribution::Weibull { scale_secs, shape } => {
                if !(scale_secs.is_finite() && scale_secs > 0.0) {
                    return Err(format!(
                        "weibull scale_secs must be positive and finite, got {scale_secs}"
                    ));
                }
                if !(shape.is_finite() && shape > 0.0) {
                    return Err(format!(
                        "weibull shape must be positive and finite, got {shape}"
                    ));
                }
            }
        }
        for (name, p) in [
            ("degraded_prob", degraded_prob),
            ("permanent_prob", permanent_prob),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if degraded_prob + permanent_prob > 1.0 {
            return Err(format!(
                "degraded_prob + permanent_prob must not exceed 1, got {}",
                degraded_prob + permanent_prob
            ));
        }
        Ok(FailureProcess {
            distribution,
            degraded_prob,
            permanent_prob,
        })
    }

    /// The inter-failure time distribution.
    #[must_use]
    pub fn distribution(&self) -> FailureDistribution {
        self.distribution
    }

    /// Samples the next failure strictly after `after`.
    ///
    /// Draws exactly two values from `rng` (an inter-failure time and a
    /// mode classifier), so the stream position is deterministic in the
    /// number of events sampled. Callers must stop sampling once a
    /// [`FailureKind::Permanent`] event is returned.
    pub fn next_after(&self, rng: &mut SimRng, after: SimTime) -> FailureEvent {
        let gap = self.distribution.sample(rng);
        let u = rng.uniform(0.0, 1.0);
        let kind = if u < self.permanent_prob {
            FailureKind::Permanent
        } else if u < self.permanent_prob + self.degraded_prob {
            FailureKind::Degraded
        } else {
            FailureKind::Transient
        };
        FailureEvent {
            at: after + crate::time::SimDuration::from_secs(gap),
            kind,
        }
    }
}

/// What a failure does to the link it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFailureKind {
    /// The link goes down entirely for a bounded repair window; transfers
    /// that need it stall (or reroute) until it comes back.
    Outage,
    /// The link keeps moving data, but at degraded bandwidth until
    /// repaired.
    Degraded,
}

impl LinkFailureKind {
    /// Stable lower-case name, used in reports and error messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LinkFailureKind::Outage => "outage",
            LinkFailureKind::Degraded => "degraded",
        }
    }
}

/// A timed failure on one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFailureEvent {
    /// Absolute simulation time at which the failure strikes.
    pub at: SimTime,
    /// Severity class of the failure.
    pub kind: LinkFailureKind,
}

/// A deterministic per-link failure process.
///
/// Mirrors [`FailureProcess`] for interconnect links: inter-failure
/// times follow the configured distribution, and a second draw
/// classifies each event as a full outage or a bandwidth degradation.
/// Every link owns its own forked RNG stream, so its trace is
/// independent of what any device or other link samples.
///
/// # Examples
///
/// ```
/// use helios_sim::failure::{FailureDistribution, LinkFailureProcess};
/// use helios_sim::{SimRng, SimTime};
///
/// let process = LinkFailureProcess::new(
///     FailureDistribution::Exponential { mttf_secs: 5.0 },
///     0.25, // a quarter of the faults degrade bandwidth instead
/// )
/// .unwrap();
/// let mut rng = SimRng::seed_from(7).fork(3);
/// let first = process.next_after(&mut rng, SimTime::ZERO);
/// let mut rng2 = SimRng::seed_from(7).fork(3);
/// assert_eq!(first, process.next_after(&mut rng2, SimTime::ZERO));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFailureProcess {
    distribution: FailureDistribution,
    degraded_prob: f64,
}

impl LinkFailureProcess {
    /// Creates a link failure process; the remaining probability mass
    /// (`1 - degraded_prob`) is a full outage.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter if the
    /// distribution parameters are not positive and finite or
    /// `degraded_prob` is outside `[0, 1]`.
    pub fn new(
        distribution: FailureDistribution,
        degraded_prob: f64,
    ) -> Result<LinkFailureProcess, String> {
        // Reuse the device-process parameter validation.
        FailureProcess::new(distribution, 0.0, 0.0)?;
        if !(degraded_prob.is_finite() && (0.0..=1.0).contains(&degraded_prob)) {
            return Err(format!(
                "degraded_prob must be in [0, 1], got {degraded_prob}"
            ));
        }
        Ok(LinkFailureProcess {
            distribution,
            degraded_prob,
        })
    }

    /// The inter-failure time distribution.
    #[must_use]
    pub fn distribution(&self) -> FailureDistribution {
        self.distribution
    }

    /// Samples the next link failure strictly after `after`.
    ///
    /// Draws exactly two values from `rng` (an inter-failure time and a
    /// mode classifier), so the stream position is deterministic in the
    /// number of events sampled.
    pub fn next_after(&self, rng: &mut SimRng, after: SimTime) -> LinkFailureEvent {
        let gap = self.distribution.sample(rng);
        let u = rng.uniform(0.0, 1.0);
        let kind = if u < self.degraded_prob {
            LinkFailureKind::Degraded
        } else {
            LinkFailureKind::Outage
        };
        LinkFailureEvent {
            at: after + crate::time::SimDuration::from_secs(gap),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        let exp = |m| FailureDistribution::Exponential { mttf_secs: m };
        assert!(FailureProcess::new(exp(0.0), 0.0, 0.0).is_err());
        assert!(FailureProcess::new(exp(f64::NAN), 0.0, 0.0).is_err());
        assert!(FailureProcess::new(exp(1.0), -0.1, 0.0).is_err());
        assert!(FailureProcess::new(exp(1.0), 0.0, 1.5).is_err());
        assert!(FailureProcess::new(exp(1.0), 0.7, 0.7).is_err());
        let weib = |s, k| FailureDistribution::Weibull {
            scale_secs: s,
            shape: k,
        };
        assert!(FailureProcess::new(weib(1.0, 0.0), 0.0, 0.0).is_err());
        assert!(FailureProcess::new(weib(-1.0, 2.0), 0.0, 0.0).is_err());
        assert!(FailureProcess::new(weib(1.0, 2.0), 0.1, 0.1).is_ok());
    }

    #[test]
    fn exponential_trace_mean_converges() {
        let process = FailureProcess::new(
            FailureDistribution::Exponential { mttf_secs: 5.0 },
            0.0,
            0.0,
        )
        .unwrap();
        let mut rng = SimRng::seed_from(1).fork(3);
        let mut t = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            let ev = process.next_after(&mut rng, t);
            assert!(ev.at > t, "failures are strictly ordered");
            assert_eq!(ev.kind, FailureKind::Transient);
            t = ev.at;
        }
        let mean = t.as_secs() / f64::from(n);
        assert!((mean - 5.0).abs() < 0.2, "observed MTTF {mean}");
    }

    #[test]
    fn weibull_trace_mean_matches_gamma_moment() {
        let dist = FailureDistribution::Weibull {
            scale_secs: 4.0,
            shape: 2.0,
        };
        // E[X] = 4 * Γ(1.5) = 4 * (√π / 2) ≈ 3.5449.
        let expected = 4.0 * (std::f64::consts::PI.sqrt() / 2.0);
        assert!((dist.mean_secs() - expected).abs() < 1e-9, "gamma helper");
        let process = FailureProcess::new(dist, 0.0, 0.0).unwrap();
        let mut rng = SimRng::seed_from(2).fork(4);
        let n = 20_000;
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            t = process.next_after(&mut rng, t).at;
        }
        let mean = t.as_secs() / f64::from(n);
        assert!(
            (mean - expected).abs() < 0.1,
            "observed mean {mean} vs {expected}"
        );
    }

    #[test]
    fn mode_probabilities_converge() {
        let process = FailureProcess::new(
            FailureDistribution::Exponential { mttf_secs: 1.0 },
            0.3,
            0.1,
        )
        .unwrap();
        let mut rng = SimRng::seed_from(5).fork(1);
        let (mut transient, mut degraded, mut permanent) = (0u32, 0u32, 0u32);
        let n = 20_000;
        for _ in 0..n {
            // Sampling past a permanent event is the caller's contract to
            // avoid; here we only count classifications.
            match process.next_after(&mut rng, SimTime::ZERO).kind {
                FailureKind::Transient => transient += 1,
                FailureKind::Degraded => degraded += 1,
                FailureKind::Permanent => permanent += 1,
            }
        }
        let frac = |c: u32| f64::from(c) / f64::from(n);
        assert!(
            (frac(transient) - 0.6).abs() < 0.02,
            "transient {}",
            frac(transient)
        );
        assert!(
            (frac(degraded) - 0.3).abs() < 0.02,
            "degraded {}",
            frac(degraded)
        );
        assert!(
            (frac(permanent) - 0.1).abs() < 0.02,
            "permanent {}",
            frac(permanent)
        );
    }

    #[test]
    fn link_process_rejects_bad_parameters() {
        let exp = |m| FailureDistribution::Exponential { mttf_secs: m };
        assert!(LinkFailureProcess::new(exp(0.0), 0.0).is_err());
        assert!(LinkFailureProcess::new(exp(1.0), -0.1).is_err());
        assert!(LinkFailureProcess::new(exp(1.0), 1.5).is_err());
        assert!(LinkFailureProcess::new(exp(1.0), 0.5).is_ok());
    }

    #[test]
    fn link_mode_probabilities_converge() {
        let process =
            LinkFailureProcess::new(FailureDistribution::Exponential { mttf_secs: 1.0 }, 0.25)
                .unwrap();
        let mut rng = SimRng::seed_from(6).fork(2);
        let (mut outage, mut degraded) = (0u32, 0u32);
        let n = 20_000;
        for _ in 0..n {
            match process.next_after(&mut rng, SimTime::ZERO).kind {
                LinkFailureKind::Outage => outage += 1,
                LinkFailureKind::Degraded => degraded += 1,
            }
        }
        let frac = |c: u32| f64::from(c) / f64::from(n);
        assert!(
            (frac(outage) - 0.75).abs() < 0.02,
            "outage {}",
            frac(outage)
        );
        assert!(
            (frac(degraded) - 0.25).abs() < 0.02,
            "degraded {}",
            frac(degraded)
        );
    }

    #[test]
    fn link_traces_are_deterministic_per_stream() {
        let process = LinkFailureProcess::new(
            FailureDistribution::Weibull {
                scale_secs: 3.0,
                shape: 1.2,
            },
            0.4,
        )
        .unwrap();
        let trace = |seed: u64, stream: u64| {
            let mut rng = SimRng::seed_from(seed).fork(stream);
            let mut t = SimTime::ZERO;
            (0..64)
                .map(|_| {
                    let ev = process.next_after(&mut rng, t);
                    t = ev.at;
                    (ev.at.as_secs().to_bits(), ev.kind.as_str())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(4, 8), trace(4, 8), "same stream, same trace");
        assert_ne!(trace(4, 8), trace(4, 9), "distinct streams diverge");
    }

    #[test]
    fn traces_are_deterministic_per_stream() {
        let process = FailureProcess::new(
            FailureDistribution::Weibull {
                scale_secs: 2.0,
                shape: 1.5,
            },
            0.2,
            0.05,
        )
        .unwrap();
        let trace = |seed: u64, stream: u64| {
            let mut rng = SimRng::seed_from(seed).fork(stream);
            let mut t = SimTime::ZERO;
            (0..64)
                .map(|_| {
                    let ev = process.next_after(&mut rng, t);
                    t = ev.at;
                    (ev.at.as_secs().to_bits(), ev.kind.as_str())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(9, 11), trace(9, 11), "same stream, same trace");
        assert_ne!(trace(9, 11), trace(9, 12), "distinct streams diverge");
        assert_ne!(trace(9, 11), trace(10, 11), "distinct seeds diverge");
    }
}
