//! Deterministic discrete-event simulation kernel for the `helios` workspace.
//!
//! This crate provides the minimal, reusable machinery that every other
//! `helios` crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — validated virtual-time types,
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   tie-breaking for simultaneous events,
//! * [`SimRng`] — a seedable, portable random-number generator with the
//!   distributions used by the workload generators and fault models,
//! * [`failure`] — per-device failure processes (exponential/Weibull
//!   inter-failure times, transient/degraded/permanent modes) that turn
//!   forked RNG streams into deterministic failure traces,
//! * [`stats`] — online statistics (mean/variance/min/max), histograms and
//!   percentile estimation for experiment reporting.
//!
//! Determinism is a design requirement: two runs with the same seed must
//! produce byte-identical results on every platform. This is why the RNG is
//! a fixed ChaCha8 stream rather than [`rand::rngs::StdRng`] (whose algorithm
//! may change between `rand` releases), and why the event queue breaks time
//! ties by insertion order rather than by heap internals.
//!
//! # Examples
//!
//! ```
//! use helios_sim::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(2.0), "second");
//! queue.push(SimTime::from_secs(1.0), "first");
//! queue.push(SimTime::from_secs(2.0), "third"); // same time: FIFO order
//!
//! let order: Vec<_> = std::iter::from_fn(|| queue.pop())
//!     .map(|(_, e)| e)
//!     .collect();
//! assert_eq!(order, ["first", "second", "third"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod failure;
mod rng;
pub mod stats;
mod time;
pub mod trace;

pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime, TimeError};
