//! Seedable, portable random-number generation.
//!
//! [`SimRng`] wraps a ChaCha8 stream cipher RNG. ChaCha8 is fast, has a
//! stable specification (so streams are identical across `rand` releases and
//! platforms), and supports cheap forking into independent sub-streams —
//! used to give each simulated device or workflow generator its own
//! deterministic stream regardless of the order in which other components
//! draw numbers.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random-number generator for simulations.
///
/// # Examples
///
/// ```
/// use helios_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Forks an independent sub-stream identified by `stream`.
    ///
    /// Draws from the fork do not perturb `self`, and forks with distinct
    /// stream ids are statistically independent. This keeps per-component
    /// randomness stable when unrelated components add or remove draws.
    #[must_use]
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut inner = self.inner.clone();
        inner.set_stream(stream);
        // Skip ahead so the fork does not replay the parent's position 0
        // block when the parent has not drawn yet.
        inner.set_word_pos(0);
        let mut fork = SimRng { inner };
        // Decorrelate: mix the stream id into the first draws.
        let _ = fork.inner.next_u64();
        fork
    }

    /// Draws a uniform `f64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is not finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low <= high,
            "invalid uniform bounds [{low}, {high})"
        );
        if low == high {
            return low;
        }
        low + (high - low) * self.inner.gen::<f64>()
    }

    /// Draws a uniform integer in `[low, high]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform_usize(&mut self, low: usize, high: usize) -> usize {
        assert!(low <= high, "invalid uniform_usize bounds [{low}, {high}]");
        self.inner.gen_range(low..=high)
    }

    /// Draws a `bool` that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.inner.gen::<f64>() < p
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Used for inter-arrival and failure times (Poisson processes).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean {mean} must be positive"
        );
        // Inverse CDF; `1 - u` avoids ln(0).
        let u: f64 = self.inner.gen();
        -mean * (1.0 - u).ln()
    }

    /// Draws from a Weibull distribution with the given scale
    /// (characteristic life) and shape, via the inverse CDF.
    ///
    /// Shape 1 reduces to the exponential distribution with mean
    /// `scale`; shape > 1 gives the increasing hazard rate of ageing
    /// hardware (the regime failure-trace studies report for
    /// leadership-class machines).
    ///
    /// # Panics
    ///
    /// Panics if `scale` or `shape` is not positive and finite.
    pub fn weibull(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(
            scale.is_finite() && scale > 0.0 && shape.is_finite() && shape > 0.0,
            "invalid weibull parameters ({scale}, {shape})"
        );
        let u: f64 = self.inner.gen();
        scale * (-(1.0 - u).ln()).powf(1.0 / shape)
    }

    /// Draws from a normal distribution via the Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters ({mean}, {std_dev})"
        );
        if std_dev == 0.0 {
            return mean;
        }
        let u1: f64 = 1.0 - self.inner.gen::<f64>(); // (0, 1]
        let u2: f64 = self.inner.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Draws from a normal distribution truncated below at `floor`.
    ///
    /// Values below `floor` are clamped (not resampled), which keeps the
    /// draw count deterministic.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Draws from a log-normal distribution parameterized by the mean and
    /// standard deviation of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.uniform_usize(0, slice.len() - 1);
            Some(&slice[idx])
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_usize(0, i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn forks_are_independent_of_parent_draws() {
        let parent = SimRng::seed_from(99);
        let mut fork1 = parent.fork(1);
        let mut parent2 = SimRng::seed_from(99);
        let _ = parent2.next_u64(); // perturb the parent
        let fork2 = parent2.fork(1);
        // fork is taken from the seed-state, not the drawn state, so the
        // clone of the *unperturbed* parent matches the original fork only
        // when taken at the same state. Here we verify forks from the same
        // state agree and distinct streams disagree.
        let mut fork1b = parent.fork(1);
        assert_eq!(fork1.next_u64(), fork1b.next_u64());
        let mut other = parent.fork(2);
        let mut base = parent.fork(1);
        let _ = base.next_u64();
        assert_ne!(base.next_u64(), other.next_u64());
        let _ = fork2;
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_rejects_inverted_bounds() {
        let _ = SimRng::seed_from(0).uniform(2.0, 1.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / f64::from(n);
        assert!(
            (observed - mean).abs() < 0.15,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
        assert_eq!(rng.normal(5.0, 0.0), 5.0);
    }

    #[test]
    fn normal_clamped_respects_floor() {
        let mut rng = SimRng::seed_from(17);
        for _ in 0..1000 {
            assert!(rng.normal_clamped(0.0, 10.0, 0.5) >= 0.5);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from(23);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50-element shuffle should not be identity");
    }
}
