//! Tests of the threaded executor and the core's realized-schedule
//! repair/validation services (split out of `executor.rs`).

use super::*;
use crate::{Engine, EngineConfig};
use helios_platform::{presets, DeviceId};
use helios_sched::{HeftScheduler, Scheduler};
use helios_workflow::generators::montage;

#[test]
fn threaded_matches_simulated_makespan() {
    let p = presets::workstation();
    let wf = montage(30, 1).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let simulated = Engine::new(EngineConfig::default())
        .execute_plan(&p, &wf, &plan)
        .unwrap();
    // Scale so the whole run takes a few hundred ms of wall time.
    let scale = 0.25 / simulated.makespan().as_secs();
    let sim = simulated.makespan().as_secs();
    // Wall-clock accuracy depends on how loaded the host is (other
    // test binaries share the cores), so allow a few attempts
    // before declaring the executor itself off.
    let mut threaded = None;
    for attempt in 0..3 {
        let run = ThreadedExecutor::new(scale)
            .unwrap()
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        let wall = run.makespan().as_secs();
        let err = (wall - sim).abs() / sim;
        if err < 0.35 {
            threaded = Some(run);
            break;
        }
        assert!(
            attempt < 2,
            "threaded {wall} vs simulated {sim} ({:.1}% off)",
            err * 100.0
        );
    }
    let threaded = threaded.unwrap();
    // Precedence holds in the realized wall-clock schedule.
    for pl in threaded.schedule.placements() {
        for &e in wf.predecessors(pl.task) {
            let edge = wf.edge(e);
            let pred = threaded.schedule.placement(edge.src).unwrap();
            assert!(pred.finish.as_secs() <= pl.finish.as_secs() + 1e-9);
        }
    }
}

#[test]
fn invalid_scale_rejected() {
    assert!(ThreadedExecutor::new(0.0).is_err());
    assert!(ThreadedExecutor::new(f64::NAN).is_err());
}

fn place(task: usize, dev: usize, start: f64, finish: f64) -> Placement {
    Placement {
        task: TaskId(task),
        device: DeviceId(dev),
        level: helios_platform::DvfsLevel(2),
        start: SimTime::from_secs(start),
        finish: SimTime::from_secs(finish),
    }
}

#[test]
fn repair_clamps_overlapping_starts_per_device() {
    // Device 0: task 1's derived start lands inside task 0; task 2 is
    // clean. Device 1 is untouched.
    let mut placements = vec![
        place(0, 0, 0.0, 10.0),
        place(1, 0, 9.9, 20.0),
        place(2, 0, 20.0, 30.0),
        place(3, 1, 0.0, 5.0),
    ];
    repair_device_overlaps(&mut placements);
    assert_eq!(placements[1].start, SimTime::from_secs(10.0));
    assert_eq!(placements[1].finish, SimTime::from_secs(20.0));
    assert_eq!(placements[0].start, SimTime::from_secs(0.0));
    assert_eq!(placements[2].start, SimTime::from_secs(20.0));
    assert_eq!(placements[3].start, SimTime::from_secs(0.0));
}

#[test]
fn repair_never_moves_a_start_past_its_finish() {
    let mut placements = vec![place(0, 0, 0.0, 10.0), place(1, 0, 2.0, 4.0)];
    // Malformed input (finishes not monotone): the repair must stay
    // total and keep start <= finish.
    repair_device_overlaps(&mut placements);
    for p in &placements {
        assert!(p.start <= p.finish, "{p:?}");
    }
}

#[test]
fn realized_schedule_has_no_device_overlaps() {
    let p = presets::workstation();
    let wf = montage(40, 7).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let scale = 0.15 / plan.makespan().as_secs();
    let threaded = ThreadedExecutor::new(scale)
        .unwrap()
        .execute_plan(&p, &wf, &plan)
        .unwrap();
    for (_, tasks) in threaded.schedule.tasks_by_device() {
        for pair in tasks.windows(2) {
            let a = threaded.schedule.placement(pair[0]).unwrap();
            let b = threaded.schedule.placement(pair[1]).unwrap();
            assert!(
                b.start >= a.finish,
                "device overlap after repair: {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn validate_realized_rejects_bad_schedules() {
    let wf = montage(30, 1).unwrap();
    // Overlap on one device.
    let mut placements: Vec<Placement> = (0..wf.num_tasks())
        .map(|i| place(i, 0, i as f64, i as f64 + 1.0))
        .collect();
    placements[5].start = SimTime::from_secs(4.2);
    let s = Schedule::new(placements).unwrap();
    assert!(matches!(
        validate_realized(&s, &wf),
        Err(EngineError::Executor(_))
    ));
    // Missing task.
    let s = Schedule::new(vec![place(0, 0, 0.0, 1.0)]).unwrap();
    assert!(validate_realized(&s, &wf).is_err());
}
