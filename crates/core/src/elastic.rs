//! Elastic capacity: devices join, drain, get preempted and leave
//! mid-run.
//!
//! The paper's platforms are static device sets, but the deployments it
//! targets run on elastic, preemptible capacity — pilot-job systems
//! acquire and lose resources while the workflow is in flight. This
//! module describes *capacity events* over a platform:
//!
//! * [`ElasticEventKind::Join`] — spot acquisition: the device becomes
//!   available mid-run and the runtime starts placing work on it,
//! * [`ElasticEventKind::Drain`] — maintenance window: the device stops
//!   accepting work at the notice time and must be empty by the
//!   deadline; queued work migrates immediately, a running attempt may
//!   finish until the deadline aborts it,
//! * [`ElasticEventKind::Preempt`] — spot kill with notice: the device
//!   stops accepting work at the notice time and is killed
//!   `notice_secs` later; in-flight work is checkpointed if the
//!   recovery policy allows, otherwise lost and recovered through the
//!   existing retry/replicate/reschedule/lineage paths,
//! * [`ElasticEventKind::Leave`] — immediate departure, no notice.
//!
//! Plans are either *timed* ([`ElasticEvent`], no randomness consumed)
//! or *stochastic* ([`ElasticChurn`]: an alternating renewal process of
//! preemptions and re-acquisitions with exponential or Weibull
//! inter-event times, sampled from a forked RNG stream keyed by device
//! id). Both compose, and both are executed by the
//! [`ResilientRunner`](crate::ResilientRunner) as one more hook set
//! over the shared execution core — there is no second step loop.
//!
//! Capacity *membership* is orthogonal to failure *health*: an absent
//! device is not "down", it is simply not part of the platform right
//! now, and a later join brings it back — unless a failure domain has
//! killed it permanently, in which case dead capacity stays dead and
//! the event becomes a counted no-op. When every device has departed
//! and no join is still pending, the run stops with
//! [`EngineError::CapacityExhausted`](crate::EngineError) — a
//! measurement (`incomplete_reason = "capacity_exhausted"`), not an
//! error.

use serde::{Deserialize, Serialize};

use crate::error::EngineError;
use helios_sim::failure::FailureDistribution;

/// What happens to the named device at an [`ElasticEvent`]'s time.
#[derive(Debug, Clone, PartialEq)]
pub enum ElasticEventKind {
    /// The device joins (or re-joins) the platform and starts accepting
    /// work. A device whose *first* event is a join starts the run
    /// absent.
    Join,
    /// Maintenance drain: the device stops accepting work at the event
    /// time, queued work migrates, and whatever is still running is
    /// aborted at `deadline_secs` when the device departs.
    Drain {
        /// Absolute time the device must be empty and departs, seconds;
        /// must be strictly after the event time.
        deadline_secs: f64,
    },
    /// Spot preemption: the device stops accepting work at the event
    /// time and is killed `notice_secs` later.
    Preempt {
        /// Kill notice, seconds; must be strictly positive.
        notice_secs: f64,
    },
    /// The device departs immediately; running work is lost to the
    /// recovery machinery.
    Leave,
}

impl ElasticEventKind {
    /// Stable kind tag used in specs and error messages.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ElasticEventKind::Join => "join",
            ElasticEventKind::Drain { .. } => "drain",
            ElasticEventKind::Preempt { .. } => "preempt",
            ElasticEventKind::Leave => "leave",
        }
    }

    /// Every legal kind tag, for validation errors.
    #[must_use]
    pub fn kinds() -> &'static [&'static str] {
        &["join", "drain", "preempt", "leave"]
    }
}

/// One timed capacity event against a named platform device. Timed
/// events consume no randomness, so they cannot perturb any other RNG
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticEvent {
    /// Device name, resolved against the platform when the run starts.
    pub device: String,
    /// Absolute event time, seconds; finite and non-negative.
    pub at_secs: f64,
    /// What happens at `at_secs`.
    pub kind: ElasticEventKind,
}

/// Stochastic spot churn for one device: an alternating renewal process
/// — after `mtbp_secs` (mean) of presence the device is preempted with
/// `notice_secs` of notice, stays absent for `rejoin_secs` (mean), then
/// re-joins, repeating for the whole run. Inter-event gaps are sampled
/// from the device's own forked RNG stream
/// (`ELASTIC_STREAM_BASE + device id`), never by event order.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticChurn {
    /// Device name, resolved against the platform when the run starts.
    pub device: String,
    /// Mean time between preemptions while present, seconds.
    pub mtbp_secs: f64,
    /// Weibull shape for the inter-preemption distribution; `None`
    /// selects the exponential.
    pub weibull_shape: Option<f64>,
    /// Kill notice per preemption, seconds; strictly positive.
    pub notice_secs: f64,
    /// Mean absence before the device is re-acquired, seconds.
    pub rejoin_secs: f64,
}

impl ElasticChurn {
    /// The inter-preemption distribution this churn model describes.
    #[must_use]
    pub fn distribution(&self) -> FailureDistribution {
        match self.weibull_shape {
            None => FailureDistribution::Exponential {
                mttf_secs: self.mtbp_secs,
            },
            Some(shape) => FailureDistribution::Weibull {
                scale_secs: self.mtbp_secs,
                shape,
            },
        }
    }
}

/// Complete elasticity configuration: timed events plus stochastic
/// churn, attached to
/// [`EngineConfig::elasticity`](crate::EngineConfig). Requires the
/// [`ResilientRunner`](crate::ResilientRunner) — departures feed the
/// same recovery machinery as permanent faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElasticityConfig {
    /// Timed capacity events, in any order (execution sorts by time).
    pub events: Vec<ElasticEvent>,
    /// Stochastic churn processes, at most one per device.
    pub churn: Vec<ElasticChurn>,
}

impl ElasticityConfig {
    /// Validates every parameter; device names are resolved later,
    /// against the concrete platform of each run.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.events.is_empty() && self.churn.is_empty() {
            return Err(EngineError::Config(
                "elasticity block must declare at least one event or churn process".into(),
            ));
        }
        for (i, ev) in self.events.iter().enumerate() {
            let fail = |msg: String| {
                Err(EngineError::Config(format!(
                    "elasticity event {i} ({} {:?}): {msg}",
                    ev.kind.name(),
                    ev.device
                )))
            };
            if ev.device.is_empty() {
                return fail("device name must not be empty".into());
            }
            if !(ev.at_secs.is_finite() && ev.at_secs >= 0.0) {
                return fail(format!(
                    "at_secs must be finite and non-negative, got {}",
                    ev.at_secs
                ));
            }
            match ev.kind {
                ElasticEventKind::Drain { deadline_secs } => {
                    if !(deadline_secs.is_finite() && deadline_secs > ev.at_secs) {
                        return fail(format!(
                            "deadline_secs must be finite and after at_secs {}, got {}",
                            ev.at_secs, deadline_secs
                        ));
                    }
                }
                ElasticEventKind::Preempt { notice_secs } => {
                    if !(notice_secs.is_finite() && notice_secs > 0.0) {
                        return fail(format!(
                            "notice_secs must be finite and positive \
                             (a zero-notice kill is `leave`), got {notice_secs}"
                        ));
                    }
                }
                ElasticEventKind::Join | ElasticEventKind::Leave => {}
            }
        }
        let mut churned: Vec<&str> = Vec::new();
        for c in &self.churn {
            let fail = |msg: String| {
                Err(EngineError::Config(format!(
                    "elasticity churn for {:?}: {msg}",
                    c.device
                )))
            };
            if c.device.is_empty() {
                return fail("device name must not be empty".into());
            }
            if churned.contains(&c.device.as_str()) {
                return fail("device has two churn processes; at most one is allowed".into());
            }
            churned.push(&c.device);
            for (name, v) in [("mtbp_secs", c.mtbp_secs), ("rejoin_secs", c.rejoin_secs)] {
                if !(v.is_finite() && v > 0.0) {
                    return fail(format!("{name} must be finite and positive, got {v}"));
                }
            }
            if !(c.notice_secs.is_finite() && c.notice_secs > 0.0) {
                return fail(format!(
                    "notice_secs must be finite and positive, got {}",
                    c.notice_secs
                ));
            }
            if let Some(shape) = c.weibull_shape {
                if !(shape.is_finite() && shape > 0.0) {
                    return fail(format!(
                        "weibull_shape must be finite and positive, got {shape}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether any capacity event (timed or stochastic) can ever fire.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.churn.is_empty()
    }
}

/// Elasticity outcome metrics attached to an
/// [`ExecutionReport`](crate::ExecutionReport) by the
/// [`ResilientRunner`](crate::ResilientRunner) when the run had an
/// elasticity block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticityMetrics {
    /// Device-seconds of live capacity integrated over the run: a
    /// device contributes while present and not permanently failed.
    pub capacity_secs: f64,
    /// Join events that actually added capacity (timed joins plus churn
    /// re-acquisitions; no-ops on present or dead devices excluded).
    pub joins: u32,
    /// Departures of every kind: leaves, completed drains and
    /// preemption kills.
    pub departures: u32,
    /// Drain windows opened.
    pub drains: u32,
    /// Preemption kills executed (timed preempts plus churn kills).
    pub preemptions: u32,
    /// Queued task copies migrated off a draining or preempted device
    /// before its departure.
    pub drain_migrated_tasks: u32,
    /// Busy device-seconds on devices that joined mid-run, divided by
    /// those devices' capacity-seconds; 0 when nothing ever joined.
    pub join_utilization: f64,
    /// Elasticity events targeting a device already removed permanently
    /// by the failure machinery — dead capacity stays dead, so these
    /// are counted no-ops.
    pub dead_capacity_events: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(device: &str, at: f64) -> ElasticEvent {
        ElasticEvent {
            device: device.into(),
            at_secs: at,
            kind: ElasticEventKind::Join,
        }
    }

    #[test]
    fn kind_names_round_trip_the_menu() {
        let kinds = [
            ElasticEventKind::Join,
            ElasticEventKind::Drain { deadline_secs: 2.0 },
            ElasticEventKind::Preempt { notice_secs: 0.5 },
            ElasticEventKind::Leave,
        ];
        let names: Vec<&str> = kinds.iter().map(ElasticEventKind::name).collect();
        assert_eq!(names, ElasticEventKind::kinds());
    }

    #[test]
    fn validation_accepts_a_sane_plan() {
        let cfg = ElasticityConfig {
            events: vec![
                join("gpu0", 1.0),
                ElasticEvent {
                    device: "cpu0".into(),
                    at_secs: 2.0,
                    kind: ElasticEventKind::Drain { deadline_secs: 3.0 },
                },
                ElasticEvent {
                    device: "cpu1".into(),
                    at_secs: 0.0,
                    kind: ElasticEventKind::Preempt { notice_secs: 0.25 },
                },
            ],
            churn: vec![ElasticChurn {
                device: "gpu0".into(),
                mtbp_secs: 10.0,
                weibull_shape: Some(1.4),
                notice_secs: 0.5,
                rejoin_secs: 4.0,
            }],
        };
        assert!(cfg.validate().is_ok());
        assert!(!cfg.is_empty());
    }

    #[test]
    fn validation_rejects_pathological_plans() {
        let empty = ElasticityConfig::default();
        assert!(empty.is_empty());
        assert!(empty.validate().is_err(), "empty block is a config error");

        let mut cfg = ElasticityConfig {
            events: vec![join("gpu0", f64::NAN)],
            churn: Vec::new(),
        };
        assert!(cfg.validate().is_err(), "non-finite time");
        cfg.events = vec![join("gpu0", -1.0)];
        assert!(cfg.validate().is_err(), "negative time");
        cfg.events = vec![join("", 1.0)];
        assert!(cfg.validate().is_err(), "empty device name");

        cfg.events = vec![ElasticEvent {
            device: "gpu0".into(),
            at_secs: 2.0,
            kind: ElasticEventKind::Drain { deadline_secs: 2.0 },
        }];
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("deadline_secs"), "{err}");

        cfg.events = vec![ElasticEvent {
            device: "gpu0".into(),
            at_secs: 2.0,
            kind: ElasticEventKind::Preempt { notice_secs: 0.0 },
        }];
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("notice_secs"), "{err}");

        let churn = |mtbp: f64, rejoin: f64, notice: f64, shape: Option<f64>| ElasticityConfig {
            events: Vec::new(),
            churn: vec![ElasticChurn {
                device: "gpu0".into(),
                mtbp_secs: mtbp,
                weibull_shape: shape,
                notice_secs: notice,
                rejoin_secs: rejoin,
            }],
        };
        assert!(churn(10.0, 4.0, 0.5, None).validate().is_ok());
        assert!(churn(0.0, 4.0, 0.5, None).validate().is_err());
        assert!(churn(10.0, -4.0, 0.5, None).validate().is_err());
        assert!(churn(10.0, 4.0, 0.0, None).validate().is_err());
        assert!(churn(10.0, 4.0, 0.5, Some(0.0)).validate().is_err());

        let mut twice = churn(10.0, 4.0, 0.5, None);
        twice.churn.push(twice.churn[0].clone());
        let err = twice.validate().unwrap_err().to_string();
        assert!(err.contains("two churn"), "{err}");
    }

    #[test]
    fn metrics_roundtrip_serde() {
        let m = ElasticityMetrics {
            capacity_secs: 42.5,
            joins: 3,
            departures: 4,
            drains: 1,
            preemptions: 2,
            drain_migrated_tasks: 5,
            join_utilization: 0.75,
            dead_capacity_events: 1,
        };
        let v = serde::Serialize::to_value(&m);
        let back: ElasticityMetrics = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);
    }
}
