//! Workflow ensembles: orchestrating several workflows on one platform.
//!
//! Scientific discovery campaigns rarely run one DAG at a time — they
//! submit *ensembles*: parameter sweeps, observation batches, or
//! pipelines from several instruments arriving over time. The
//! [`EnsembleRunner`] shares the platform between members under a
//! configurable [`EnsemblePolicy`], dispatching just-in-time like
//! [`OnlineRunner`](crate::OnlineRunner) but with release-time gating
//! and inter-member arbitration.

use helios_energy::account;
use helios_platform::{DeviceId, Platform};
use helios_sched::{Placement, Schedule};
use helios_sim::{EventQueue, SimDuration, SimRng, SimTime};
use helios_workflow::{analysis, TaskId, Workflow};

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::exec::{noise_factor, occupancy_on, slowdown_factor, LinkState, FAULT_STREAM_BASE};
use crate::report::TransferStats;

/// One workflow in an ensemble.
#[derive(Debug, Clone)]
pub struct EnsembleMember {
    /// The member's DAG.
    pub workflow: Workflow,
    /// When the member is submitted (its entry tasks cannot start
    /// earlier).
    pub arrival: SimTime,
    /// Relative importance under [`EnsemblePolicy::Priority`]; larger
    /// wins.
    pub priority: f64,
}

/// How the runner arbitrates between members competing for devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnsemblePolicy {
    /// Earlier-arrived members go first (ties by member index).
    #[default]
    Fifo,
    /// Higher-priority members go first.
    Priority,
    /// The member with the smallest fraction of completed work goes
    /// first — a max-min fair share of platform throughput.
    FairShare,
}

impl EnsemblePolicy {
    /// A short stable name for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EnsemblePolicy::Fifo => "fifo",
            EnsemblePolicy::Priority => "priority",
            EnsemblePolicy::FairShare => "fair-share",
        }
    }
}

/// Per-member outcome of an ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberReport {
    /// First task start.
    pub started: SimTime,
    /// Last task finish.
    pub finished: SimTime,
    /// `finished − arrival`: what the submitting scientist experiences.
    pub turnaround: SimDuration,
    /// The member's realized placements.
    pub schedule: Schedule,
}

/// Outcome of an ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleReport {
    /// Per-member results, in submission order.
    pub members: Vec<MemberReport>,
    /// Finish of the last task across members.
    pub makespan: SimDuration,
    /// Mean member turnaround.
    pub mean_turnaround: SimDuration,
    /// Total platform energy over the run.
    pub total_energy_j: f64,
    /// Aggregate transfer statistics.
    pub transfers: TransferStats,
}

/// Executes workflow ensembles with just-in-time dispatch.
#[derive(Debug, Clone)]
pub struct EnsembleRunner {
    config: EngineConfig,
    policy: EnsemblePolicy,
}

impl EnsembleRunner {
    /// Creates a runner.
    #[must_use]
    pub fn new(config: EngineConfig, policy: EnsemblePolicy) -> EnsembleRunner {
        EnsembleRunner { config, policy }
    }

    /// Runs the ensemble to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for an empty ensemble, or
    /// propagates model/dispatch errors.
    pub fn run(
        &self,
        platform: &Platform,
        members: &[EnsembleMember],
    ) -> Result<EnsembleReport, EngineError> {
        self.config.validate_for(platform)?;
        if members.is_empty() {
            return Err(EngineError::Config("ensemble has no members".into()));
        }

        // Flatten: global task index = (member, local id).
        let mut owner: Vec<usize> = Vec::new();
        let mut local: Vec<TaskId> = Vec::new();
        let mut base: Vec<usize> = Vec::with_capacity(members.len());
        for (m, member) in members.iter().enumerate() {
            base.push(owner.len());
            for i in 0..member.workflow.num_tasks() {
                owner.push(m);
                local.push(TaskId(i));
            }
        }
        let n = owner.len();
        let member_work: Vec<f64> = members
            .iter()
            .map(|m| m.workflow.total_gflop().max(1e-12))
            .collect();
        // Priorities inside a member: upward rank.
        let mut rank = vec![0.0f64; n];
        for (m, member) in members.iter().enumerate() {
            let levels = analysis::bottom_levels(&member.workflow, platform)?;
            for (i, &r) in levels.iter().enumerate() {
                rank[base[m] + i] = r;
            }
        }

        let gid = |m: usize, t: TaskId| base[m] + t.0;
        let mut preds_left: Vec<usize> = (0..n)
            .map(|g| members[owner[g]].workflow.predecessors(local[g]).len())
            .collect();
        let mut released = vec![false; n];
        let mut ready: Vec<usize> = Vec::new();
        let mut device_idle = vec![true; platform.num_devices()];
        let mut device_free_pred = vec![SimTime::ZERO; platform.num_devices()];
        let mut producer_device = vec![DeviceId(0); n];
        let mut realized: Vec<Option<Placement>> = vec![None; n];
        let mut done_work = vec![0.0f64; members.len()];

        let view = self.config.fault_view()?;
        let base_rng = SimRng::seed_from(self.config.seed);
        let mut links = LinkState::new(platform);
        let mut stats = TransferStats::default();
        let mut completed = 0usize;

        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        enum Ev {
            Finish(usize),
            Release(usize),
        }
        let mut queue: EventQueue<Ev> = EventQueue::new();
        for (m, member) in members.iter().enumerate() {
            for t in member.workflow.entry_tasks() {
                queue.push(member.arrival, Ev::Release(gid(m, t)));
            }
        }

        // Member-level arbitration key: smaller sorts first.
        let member_key = |m: usize, done_work: &[f64]| -> f64 {
            match self.policy {
                EnsemblePolicy::Fifo => members[m].arrival.as_secs(),
                EnsemblePolicy::Priority => -members[m].priority,
                EnsemblePolicy::FairShare => done_work[m] / member_work[m],
            }
        };

        macro_rules! dispatch {
            ($now:expr) => {{
                let now: SimTime = $now;
                'rounds: loop {
                    if ready.is_empty() || !device_idle.iter().any(|&i| i) {
                        break;
                    }
                    // Order ready tasks: member key, then rank.
                    let mut order = ready.clone();
                    order.sort_by(|&a, &b| {
                        member_key(owner[a], &done_work)
                            .total_cmp(&member_key(owner[b], &done_work))
                            .then(rank[b].total_cmp(&rank[a]))
                            .then(a.cmp(&b))
                    });
                    for g in order {
                        let wf = &members[owner[g]].workflow;
                        let task = local[g];
                        let cost = wf.task(task)?.cost();
                        let mut best: Option<(DeviceId, f64)> = None;
                        for d in 0..platform.num_devices() {
                            let dev = DeviceId(d);
                            let device = platform.device(dev)?;
                            if !helios_sched::placement_feasible(device, wf.task(task)?) {
                                continue;
                            }
                            let est = now.max(device_free_pred[d]);
                            let mut data_at = est;
                            for &e in wf.predecessors(task) {
                                let edge = wf.edge(e);
                                let t = platform.transfer_time(
                                    edge.bytes,
                                    producer_device[gid(owner[g], edge.src)],
                                    dev,
                                )?;
                                data_at = data_at.max(est + t);
                            }
                            let exec = device.execution_time(cost, device.nominal_level())?;
                            let score = (data_at + exec).as_secs();
                            if best.map_or(true, |(_, b)| score < b) {
                                best = Some((dev, score));
                            }
                        }
                        let (dev, _) = best.ok_or(EngineError::Sched(
                            helios_sched::SchedError::NoFeasibleDevice(task),
                        ))?;
                        if !device_idle[dev.0] {
                            continue; // wait for the preferred device
                        }
                        ready.retain(|&r| r != g);
                        device_idle[dev.0] = false;
                        let mut start = now;
                        for &e in wf.predecessors(task) {
                            let edge = wf.edge(e);
                            let arrival = links.transfer_arrival(
                                platform,
                                self.config.link_contention,
                                edge.bytes,
                                producer_device[gid(owner[g], edge.src)],
                                dev,
                                now,
                                &mut stats,
                                None,
                            )?;
                            start = start.max(arrival);
                        }
                        let device = platform.device(dev)?;
                        let modeled = device.execution_time(cost, device.nominal_level())?;
                        // Streams are keyed by the *global* task index,
                        // so each member task keeps its own draw.
                        let noise = noise_factor(self.config.noise_cv, &base_rng, g);
                        let slow = slowdown_factor(self.config.device_slowdown.as_ref(), dev.0);
                        let mut fault_rng = base_rng.fork(FAULT_STREAM_BASE + g as u64);
                        let occ = occupancy_on(
                            &view,
                            modeled * noise * slow,
                            task,
                            dev.0,
                            &mut fault_rng,
                        )?;
                        let finish = start + occ.total;
                        device_free_pred[dev.0] = start + modeled;
                        realized[g] = Some(Placement {
                            task,
                            device: dev,
                            level: device.nominal_level(),
                            start,
                            finish,
                        });
                        producer_device[g] = dev;
                        queue.push(finish, Ev::Finish(g));
                        continue 'rounds;
                    }
                    break;
                }
            }};
        }

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Release(g) => {
                    released[g] = true;
                    if preds_left[g] == 0 {
                        ready.push(g);
                    }
                    dispatch!(now);
                }
                Ev::Finish(g) => {
                    completed += 1;
                    let m = owner[g];
                    let wf = &members[m].workflow;
                    done_work[m] += wf.task(local[g])?.cost().gflop();
                    let dev = realized[g].expect("placed before finishing").device;
                    device_idle[dev.0] = true;
                    for succ in wf.successor_tasks(local[g]) {
                        let sg = gid(m, succ);
                        preds_left[sg] -= 1;
                        released[sg] = true;
                        if preds_left[sg] == 0 {
                            ready.push(sg);
                        }
                    }
                    dispatch!(now);
                }
            }
        }

        if completed != n {
            return Err(EngineError::Stalled {
                completed,
                total: n,
            });
        }

        // Assemble per-member reports.
        let mut reports = Vec::with_capacity(members.len());
        let mut overall_finish = SimTime::ZERO;
        let mut turnaround_sum = SimDuration::ZERO;
        let mut total_energy = 0.0;
        for (m, member) in members.iter().enumerate() {
            let placements: Vec<Placement> = (0..member.workflow.num_tasks())
                .map(|i| realized[base[m] + i].expect("all completed"))
                .collect();
            let started = placements
                .iter()
                .map(|p| p.start)
                .min()
                .unwrap_or(member.arrival);
            let finished = placements
                .iter()
                .map(|p| p.finish)
                .max()
                .unwrap_or(member.arrival);
            overall_finish = overall_finish.max(finished);
            let turnaround = finished.saturating_since(member.arrival);
            turnaround_sum += turnaround;
            let schedule = Schedule::new(placements)?;
            // Active energy only: idle attribution across members is not
            // well-defined, so the ensemble total reports actives plus a
            // single platform idle computed below.
            total_energy += account(&schedule, &member.workflow, platform, false)?.active_j;
            reports.push(MemberReport {
                started,
                finished,
                turnaround,
                schedule,
            });
        }
        Ok(EnsembleReport {
            mean_turnaround: turnaround_sum / members.len() as f64,
            makespan: overall_finish.saturating_since(SimTime::ZERO),
            total_energy_j: total_energy,
            transfers: stats,
            members: reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;
    use helios_workflow::generators::{cybershake, montage};

    fn member(wf: Workflow, arrival: f64, priority: f64) -> EnsembleMember {
        EnsembleMember {
            workflow: wf,
            arrival: SimTime::from_secs(arrival),
            priority,
        }
    }

    #[test]
    fn empty_ensemble_rejected() {
        let p = presets::workstation();
        let r = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::Fifo);
        assert!(matches!(r.run(&p, &[]), Err(EngineError::Config(_))));
    }

    #[test]
    fn single_member_completes_like_online() {
        let p = presets::hpc_node();
        let wf = montage(50, 1).unwrap();
        let members = [member(wf.clone(), 0.0, 1.0)];
        let report = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::Fifo)
            .run(&p, &members)
            .unwrap();
        assert_eq!(report.members.len(), 1);
        assert_eq!(
            report.members[0].schedule.placements().len(),
            wf.num_tasks()
        );
        assert!(report.makespan.as_secs() > 0.0);
        assert_eq!(report.mean_turnaround, report.members[0].turnaround);
    }

    #[test]
    fn arrivals_gate_start_times() {
        let p = presets::hpc_node();
        let members = [
            member(montage(40, 1).unwrap(), 0.0, 1.0),
            member(montage(40, 2).unwrap(), 5.0, 1.0),
        ];
        let report = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::Fifo)
            .run(&p, &members)
            .unwrap();
        assert!(report.members[1].started >= SimTime::from_secs(5.0));
        assert!(report.members[0].started < SimTime::from_secs(1.0));
    }

    #[test]
    fn priority_policy_prefers_the_vip() {
        let p = presets::workstation();
        // Two identical members arriving together; the VIP should finish
        // no later than it does under FIFO-as-second.
        let wf = cybershake(60, 3).unwrap();
        let both = |policy, prio0: f64, prio1: f64| {
            let members = [
                member(wf.clone(), 0.0, prio0),
                member(wf.clone(), 0.0, prio1),
            ];
            EnsembleRunner::new(EngineConfig::default(), policy)
                .run(&p, &members)
                .unwrap()
        };
        let vip_second = both(EnsemblePolicy::Priority, 1.0, 10.0);
        // Member 1 is the VIP: its turnaround beats member 0's.
        assert!(
            vip_second.members[1].turnaround <= vip_second.members[0].turnaround,
            "VIP {} vs commoner {}",
            vip_second.members[1].turnaround,
            vip_second.members[0].turnaround
        );
    }

    #[test]
    fn fair_share_balances_turnarounds() {
        let p = presets::workstation();
        let members = [
            member(cybershake(60, 1).unwrap(), 0.0, 1.0),
            member(cybershake(60, 2).unwrap(), 0.0, 1.0),
        ];
        let fifo = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::Fifo)
            .run(&p, &members)
            .unwrap();
        let fair = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::FairShare)
            .run(&p, &members)
            .unwrap();
        let spread = |r: &EnsembleReport| {
            (r.members[0].turnaround.as_secs() - r.members[1].turnaround.as_secs()).abs()
        };
        assert!(
            spread(&fair) <= spread(&fifo) + 1e-9,
            "fair share should not widen the turnaround gap: fair {} fifo {}",
            spread(&fair),
            spread(&fifo)
        );
        // Everything still completes.
        for r in [&fifo, &fair] {
            for m in &r.members {
                assert_eq!(m.schedule.placements().len(), 60);
            }
        }
    }

    #[test]
    fn member_precedence_is_respected() {
        let p = presets::hpc_node();
        let members = [
            member(montage(40, 5).unwrap(), 0.0, 1.0),
            member(cybershake(40, 6).unwrap(), 0.01, 2.0),
        ];
        let report = EnsembleRunner::new(EngineConfig::default(), EnsemblePolicy::FairShare)
            .run(&p, &members)
            .unwrap();
        for (m, rep) in report.members.iter().enumerate() {
            let wf = &members[m].workflow;
            for pl in rep.schedule.placements() {
                for &e in wf.predecessors(pl.task) {
                    let edge = wf.edge(e);
                    let pred = rep.schedule.placement(edge.src).unwrap();
                    assert!(
                        pred.finish.as_secs() <= pl.start.as_secs() + 1e-9,
                        "member {m}: {} before {}",
                        pl.task,
                        edge.src
                    );
                }
            }
        }
    }
}
