//! The resilient plan executor: a discrete-event loop that executes a
//! static plan while devices fail (transiently, by degradation, or
//! permanently) and a [`RecoveryPolicy`] repairs the damage.
//!
//! # Determinism
//!
//! Every stochastic input comes from a dedicated forked stream of the
//! seed RNG: task `t` draws its noise multiplier from stream
//! `NOISE_STREAM_BASE + t` and device `d` draws its failure trace from
//! stream `FAILURE_TRACE_STREAM_BASE + d`. Nothing is sampled inside
//! the event loop in event order, so identical seeds give byte-identical
//! reports regardless of how the surrounding campaign is threaded or
//! sharded.
//!
//! # Monotonicity
//!
//! A task's noise multiplier is drawn once and *replayed* on every
//! retry (the noise models input-dependent work, which re-running does
//! not change). Retries therefore repeat at least the lost work plus
//! overheads, so a fault-injected run can never finish earlier than the
//! fault-free run of the same configuration and seed — a property the
//! test battery pins down.

use std::collections::BTreeMap;

use helios_energy::account;
use helios_platform::{Availability, DeviceId, DvfsLevel, Platform};
use helios_sched::{placement_feasible, scheduler_by_name, Placement, Schedule, Scheduler};
use helios_sim::failure::{FailureKind, FailureProcess};
use helios_sim::{EventQueue, SimDuration, SimRng, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::config::EngineConfig;
use crate::engine::{LinkState, FAILURE_TRACE_STREAM_BASE, NOISE_STREAM_BASE};
use crate::error::EngineError;
use crate::report::{ExecutionReport, TransferStats};
use crate::resilience::{RecoveryPolicy, ResilienceConfig, ResilienceMetrics};

/// Executes static plans under a failure model and a recovery policy,
/// attaching [`ResilienceMetrics`] to the report.
///
/// The runner executes the configuration twice: once with failure
/// injection, once without (the *fault-free baseline*, same policy,
/// same seed, same plan), so the metrics isolate what the failures
/// themselves cost.
///
/// # Examples
///
/// ```
/// use helios_core::{EngineConfig, FailureModel, RecoveryPolicy, ResilienceConfig,
///                   ResilientRunner};
/// use helios_platform::presets;
/// use helios_sched::HeftScheduler;
/// use helios_workflow::generators::montage;
///
/// let platform = presets::hpc_node();
/// let wf = montage(40, 1).unwrap();
/// let config = EngineConfig {
///     seed: 7,
///     resilience: Some(ResilienceConfig::new(
///         FailureModel::exponential(0.5),
///         RecoveryPolicy::RetryBackoff {
///             base_secs: 0.01,
///             factor: 2.0,
///             cap_secs: 0.1,
///             max_retries: 100,
///         },
///     )),
///     ..Default::default()
/// };
/// let report = ResilientRunner::new(config)
///     .run(&platform, &wf, &HeftScheduler::default())
///     .unwrap();
/// let m = report.resilience().unwrap();
/// assert!(m.makespan_degradation >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ResilientRunner {
    config: EngineConfig,
}

impl ResilientRunner {
    /// Creates a runner; `config.resilience` must be set before
    /// [`ResilientRunner::run`].
    #[must_use]
    pub fn new(config: EngineConfig) -> ResilientRunner {
        ResilientRunner { config }
    }

    /// The runner's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Plans with `scheduler`, then executes the plan under failures.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution errors.
    pub fn run(
        &self,
        platform: &Platform,
        wf: &Workflow,
        scheduler: &dyn Scheduler,
    ) -> Result<ExecutionReport, EngineError> {
        let plan = scheduler.schedule(wf, platform)?;
        self.execute_plan(platform, wf, &plan)
    }

    /// Executes a precomputed plan under the configured failure model
    /// and recovery policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when `resilience` is unset or
    /// invalid (tracing is also unsupported here),
    /// [`EngineError::RetriesExhausted`] when a task runs out of both
    /// retries and live replicas, and [`EngineError::AllDevicesLost`]
    /// when permanent failures leave no feasible device.
    pub fn execute_plan(
        &self,
        platform: &Platform,
        wf: &Workflow,
        plan: &Schedule,
    ) -> Result<ExecutionReport, EngineError> {
        self.config.validate()?;
        let res = self.config.resilience.as_ref().ok_or_else(|| {
            EngineError::Config("ResilientRunner requires EngineConfig::resilience".into())
        })?;
        res.validate()?;
        if self.config.tracing {
            return Err(EngineError::Config(
                "tracing is not supported by the ResilientRunner".into(),
            ));
        }

        let faulty = Sim::execute(&self.config, res, platform, wf, plan, true)?;
        let baseline = Sim::execute(&self.config, res, platform, wf, plan, false)?;

        let mk = faulty.schedule.makespan().as_secs();
        let base_mk = baseline.schedule.makespan().as_secs();
        let c = &faulty.counters;
        let metrics = ResilienceMetrics {
            policy: res.policy.name().to_owned(),
            fault_free_makespan_secs: base_mk,
            makespan_degradation: if base_mk > 0.0 {
                mk / base_mk - 1.0
            } else {
                0.0
            },
            wasted_work_secs: c.wasted,
            recovery_overhead_secs: c.recovery,
            transient_failures: c.transient,
            degraded_failures: c.degraded,
            permanent_failures: c.permanent,
            retries: c.retries,
            replicas_launched: c.launched,
            replicas_cancelled: c.cancelled,
            reschedules: c.reschedules,
        };
        // Energy is accounted on the winning placements only; the device
        // time burnt by cancelled replicas shows up in wasted_work_secs,
        // not in joules (a documented approximation).
        let energy = account(&faulty.schedule, wf, platform, false)?;
        let failures = c.transient + c.degraded + c.permanent;
        Ok(ExecutionReport::new(
            faulty.schedule,
            energy,
            faulty.stats,
            failures,
            c.retries,
            None,
        )
        .with_resilience(metrics))
    }
}

/// Lifecycle of one replica (one task copy bound to one device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    /// Waiting in its device queue.
    Queued,
    /// Attempt in flight (device held).
    Running,
    /// Aborted; waiting out restart overhead + backoff (device held).
    WaitingRestart,
    /// Finished first among its siblings.
    Done,
    /// A sibling finished first, or the task completed elsewhere.
    Cancelled,
    /// Retry budget exhausted.
    Failed,
    /// Its device failed permanently.
    Lost,
}

/// Progress bookkeeping for the replica's current attempt. Progress is
/// measured in *effective* seconds (device at full speed); degradation
/// stretches wall-clock without adding effective progress.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    /// High-water mark of progress accounting; starts at the attempt's
    /// execution start.
    last_update: SimTime,
    done_eff: SimDuration,
    total_eff: SimDuration,
    slowdown: f64,
}

impl Default for Attempt {
    fn default() -> Attempt {
        Attempt {
            last_update: SimTime::ZERO,
            done_eff: SimDuration::ZERO,
            total_eff: SimDuration::ZERO,
            slowdown: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Replica {
    task: TaskId,
    device: DeviceId,
    level: DvfsLevel,
    /// Queue ordering key: (plan start, task id, replica ordinal).
    /// Plan starts respect precedence, so per-device queues sorted by
    /// this key can never deadlock across devices.
    sort_key: (SimTime, usize, usize),
    state: RState,
    /// Stale-event guard: bumped on every state transition, checked by
    /// Finish/Resume handlers.
    gen: u32,
    retries: u32,
    launched: bool,
    /// When the device first picked this replica up (realized start).
    occupied_from: SimTime,
    /// Base work left, effective seconds (excludes checkpoint writes).
    remaining_work: SimDuration,
    /// Earliest instant an attempt may begin (restart/replan overhead).
    floor: SimTime,
    attempt: Attempt,
}

#[derive(Debug)]
struct Dev {
    /// Replica indices in `sort_key` order; `queue[pos]` is the entry
    /// being run (when `running` is set) or considered next.
    queue: Vec<usize>,
    pos: usize,
    running: Option<usize>,
    /// Stale-repair guard: a newer degradation supersedes older repairs.
    repair_seq: u32,
    rng: SimRng,
    /// Failure mode pre-drawn for the next Fault event on this device.
    pending_kind: Option<FailureKind>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Finish { replica: usize, gen: u32 },
    Resume { replica: usize, gen: u32 },
    Fault { device: usize },
    Repair { device: usize, seq: u32 },
}

#[derive(Debug, Default)]
struct Counters {
    transient: u32,
    degraded: u32,
    permanent: u32,
    retries: u32,
    launched: u32,
    cancelled: u32,
    reschedules: u32,
    /// Effective device-seconds that contributed nothing.
    wasted: f64,
    /// Restart overheads + backoff delays + replan overheads, seconds.
    recovery: f64,
}

struct Outcome {
    schedule: Schedule,
    stats: TransferStats,
    counters: Counters,
}

struct Sim<'a> {
    cfg: &'a EngineConfig,
    res: &'a ResilienceConfig,
    platform: &'a Platform,
    wf: &'a Workflow,
    noise: Vec<f64>,
    replicas: Vec<Replica>,
    task_replicas: Vec<Vec<usize>>,
    devs: Vec<Dev>,
    avail: Availability,
    /// Unfinished incoming edges per task.
    preds_left: Vec<usize>,
    finished_at: Vec<Option<SimTime>>,
    winner_dev: Vec<Option<DeviceId>>,
    realized: Vec<Option<Placement>>,
    /// Original plan start per task, reused to key reassigned replicas.
    plan_key: Vec<SimTime>,
    completed: usize,
    counters: Counters,
    links: LinkState,
    stats: TransferStats,
    /// (producer, destination) -> availability instant, when caching.
    delivered: BTreeMap<(TaskId, DeviceId), SimTime>,
    queue: EventQueue<Ev>,
    process: FailureProcess,
}

impl<'a> Sim<'a> {
    fn execute(
        cfg: &'a EngineConfig,
        res: &'a ResilienceConfig,
        platform: &'a Platform,
        wf: &'a Workflow,
        plan: &Schedule,
        inject: bool,
    ) -> Result<Outcome, EngineError> {
        let n = wf.num_tasks();
        let nd = platform.num_devices();
        let base_rng = SimRng::seed_from(cfg.seed);

        // Task-intrinsic noise: drawn once per task from its own stream
        // and replayed on every retry and replica.
        let noise: Vec<f64> = (0..n)
            .map(|t| {
                if cfg.noise_cv > 0.0 {
                    let mut r = base_rng.fork(NOISE_STREAM_BASE + t as u64);
                    r.normal(1.0, cfg.noise_cv).max(0.05)
                } else {
                    1.0
                }
            })
            .collect();

        let mut plan_dev = vec![DeviceId(0); n];
        let mut plan_level = vec![DvfsLevel(0); n];
        let mut plan_key = vec![SimTime::ZERO; n];
        for p in plan.placements() {
            plan_dev[p.task.0] = p.device;
            plan_level[p.task.0] = p.level;
            plan_key[p.task.0] = p.start;
        }

        let mut sim = Sim {
            cfg,
            res,
            platform,
            wf,
            noise,
            replicas: Vec::new(),
            task_replicas: vec![Vec::new(); n],
            devs: Vec::new(),
            avail: Availability::new(nd),
            preds_left: (0..n).map(|t| wf.predecessors(TaskId(t)).len()).collect(),
            finished_at: vec![None; n],
            winner_dev: vec![None; n],
            realized: vec![None; n],
            plan_key,
            completed: 0,
            counters: Counters::default(),
            links: LinkState::new(platform),
            stats: TransferStats::default(),
            delivered: BTreeMap::new(),
            queue: EventQueue::new(),
            process: res.failures.process()?,
        };

        // Build replicas: the planned placement, plus k-1 copies on the
        // fastest other feasible devices under ReplicateK.
        let k = match res.policy {
            RecoveryPolicy::ReplicateK { replicas, .. } => replicas,
            _ => 1,
        };
        for t in 0..n {
            let task = TaskId(t);
            let primary = plan_dev[t];
            let ri = sim.replicas.len();
            let remaining = sim.work_on(task, primary, plan_level[t])?;
            sim.replicas.push(Replica {
                task,
                device: primary,
                level: plan_level[t],
                sort_key: (sim.plan_key[t], t, 0),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor: SimTime::ZERO,
                attempt: Attempt::default(),
            });
            sim.task_replicas[t].push(ri);
            if k > 1 {
                // Fastest feasible alternates first; ties break on id.
                let mut cands: Vec<(f64, usize)> = Vec::new();
                for d in 0..nd {
                    if d == primary.0 {
                        continue;
                    }
                    let device = platform.device(DeviceId(d))?;
                    if !placement_feasible(device, wf.task(task)?) {
                        continue;
                    }
                    let secs = device
                        .execution_time(wf.task(task)?.cost(), device.nominal_level())?
                        .as_secs();
                    cands.push((secs, d));
                }
                cands.sort_by(|a, b| a.partial_cmp(b).expect("finite exec times"));
                for (ordinal, &(_, d)) in cands.iter().take(k - 1).enumerate() {
                    let device = DeviceId(d);
                    let level = platform.device(device)?.nominal_level();
                    let ri = sim.replicas.len();
                    let remaining = sim.work_on(task, device, level)?;
                    sim.replicas.push(Replica {
                        task,
                        device,
                        level,
                        sort_key: (sim.plan_key[t], t, ordinal + 1),
                        state: RState::Queued,
                        gen: 0,
                        retries: 0,
                        launched: false,
                        occupied_from: SimTime::ZERO,
                        remaining_work: remaining,
                        floor: SimTime::ZERO,
                        attempt: Attempt::default(),
                    });
                    sim.task_replicas[t].push(ri);
                }
            }
        }

        for d in 0..nd {
            let mut queue: Vec<usize> = (0..sim.replicas.len())
                .filter(|&ri| sim.replicas[ri].device.0 == d)
                .collect();
            queue.sort_by_key(|&ri| sim.replicas[ri].sort_key);
            sim.devs.push(Dev {
                queue,
                pos: 0,
                running: None,
                repair_seq: 0,
                rng: base_rng.fork(FAILURE_TRACE_STREAM_BASE + d as u64),
                pending_kind: None,
            });
        }

        if inject {
            for d in 0..nd {
                sim.schedule_next_fault(d, SimTime::ZERO);
            }
        }

        sim.run_loop(n)?;

        let placements: Vec<Placement> = sim
            .realized
            .into_iter()
            .map(|p| p.expect("all tasks completed"))
            .collect();
        Ok(Outcome {
            schedule: Schedule::new(placements)?,
            stats: sim.stats,
            counters: sim.counters,
        })
    }

    fn run_loop(&mut self, n: usize) -> Result<(), EngineError> {
        self.dispatch_all(SimTime::ZERO)?;
        while self.completed < n {
            let Some((now, ev)) = self.queue.pop() else {
                return Err(EngineError::Stalled {
                    completed: self.completed,
                    total: n,
                });
            };
            match ev {
                Ev::Finish { replica, gen } => self.handle_finish(replica, gen, now)?,
                Ev::Resume { replica, gen } => self.handle_resume(replica, gen, now)?,
                Ev::Fault { device } => self.handle_fault(device, now)?,
                Ev::Repair { device, seq } => self.handle_repair(device, seq, now),
            }
            self.dispatch_all(now)?;
        }
        Ok(())
    }

    /// Modeled execution time of `task` on `device` at `level`, folding
    /// in the task's noise multiplier and the device's static slowdown.
    fn work_on(
        &self,
        task: TaskId,
        device: DeviceId,
        level: DvfsLevel,
    ) -> Result<SimDuration, EngineError> {
        let dev = self.platform.device(device)?;
        let modeled = dev.execution_time(self.wf.task(task)?.cost(), level)?;
        let slow = self
            .cfg
            .device_slowdown
            .as_ref()
            .and_then(|v| v.get(device.0))
            .copied()
            .unwrap_or(1.0);
        Ok(modeled * self.noise[task.0] * slow)
    }

    /// Effective seconds one attempt needs: the base work plus one
    /// checkpoint write per completed interval under CheckpointRestart.
    fn attempt_effective(&self, remaining: SimDuration) -> SimDuration {
        match self.res.policy {
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                let snapshots = (remaining.as_secs() / interval_secs).floor();
                remaining + SimDuration::from_secs(overhead_secs * snapshots)
            }
            _ => remaining,
        }
    }

    /// Base-work seconds preserved by completed checkpoints when an
    /// attempt with `done_eff` effective progress aborts.
    fn preserved_work(&self, done_eff: SimDuration) -> SimDuration {
        match self.res.policy {
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                let stride = interval_secs + overhead_secs;
                let units = (done_eff.as_secs() / stride).floor();
                SimDuration::from_secs(interval_secs * units)
            }
            _ => SimDuration::ZERO,
        }
    }

    fn schedule_next_fault(&mut self, d: usize, now: SimTime) {
        let ev = self.process.next_after(&mut self.devs[d].rng, now);
        self.devs[d].pending_kind = Some(ev.kind);
        self.queue.push(ev.at, Ev::Fault { device: d });
    }

    /// Scans every device (in id order) and starts the next eligible
    /// queued replica on each idle one.
    fn dispatch_all(&mut self, now: SimTime) -> Result<(), EngineError> {
        for d in 0..self.devs.len() {
            if !self.avail.is_up(DeviceId(d)) {
                continue;
            }
            loop {
                if self.devs[d].running.is_some() {
                    break;
                }
                let pos = self.devs[d].pos;
                if pos >= self.devs[d].queue.len() {
                    break;
                }
                let ri = self.devs[d].queue[pos];
                match self.replicas[ri].state {
                    RState::Done | RState::Cancelled | RState::Failed | RState::Lost => {
                        self.devs[d].pos += 1;
                    }
                    // A held entry without `running` set cannot happen;
                    // leave it to the Resume event rather than panic.
                    RState::Running | RState::WaitingRestart => break,
                    RState::Queued => {
                        let t = self.replicas[ri].task;
                        if self.finished_at[t.0].is_some() {
                            // Sibling already won; drop silently.
                            self.replicas[ri].state = RState::Cancelled;
                            self.replicas[ri].gen += 1;
                            self.devs[d].pos += 1;
                            continue;
                        }
                        if self.preds_left[t.0] > 0 {
                            // Head-of-line blocking preserves plan order.
                            break;
                        }
                        self.devs[d].running = Some(ri);
                        self.start_attempt(ri, now)?;
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Starts (or restarts) the attempt for `ri`: stages its inputs,
    /// computes the effective duration and schedules the Finish event.
    fn start_attempt(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        let task = self.replicas[ri].task;
        let device = self.replicas[ri].device;
        let wf = self.wf;
        // Input staging, anchored at each producer's finish instant —
        // equivalent to launching the transfer when the producer
        // finished. Restarts re-pull uncached inputs (the attempt
        // re-reads its data), which recounts those transfers.
        let mut data_at = SimTime::ZERO;
        for &e in wf.predecessors(task) {
            let edge = wf.edge(e);
            let src = edge.src;
            let src_dev = self.winner_dev[src.0].expect("predecessor finished");
            let ready = self.finished_at[src.0].expect("predecessor finished");
            if self.cfg.data_caching {
                if let Some(&at) = self.delivered.get(&(src, device)) {
                    data_at = data_at.max(at);
                    continue;
                }
            }
            let arrival = self.links.transfer_arrival(
                self.platform,
                self.cfg.link_contention,
                edge.bytes,
                src_dev,
                device,
                ready,
                &mut self.stats,
                None,
            )?;
            if self.cfg.data_caching {
                self.delivered.insert((src, device), arrival);
            }
            data_at = data_at.max(arrival);
        }

        let total_eff = self.attempt_effective(self.replicas[ri].remaining_work);
        let slowdown = self.avail.slowdown(device);
        let r = &mut self.replicas[ri];
        if !r.launched {
            r.launched = true;
            r.occupied_from = now;
            self.counters.launched += 1;
        }
        let exec_start = now.max(data_at).max(r.floor);
        r.state = RState::Running;
        r.gen += 1;
        r.attempt = Attempt {
            last_update: exec_start,
            done_eff: SimDuration::ZERO,
            total_eff,
            slowdown,
        };
        let gen = r.gen;
        self.queue.push(
            exec_start + total_eff * slowdown,
            Ev::Finish { replica: ri, gen },
        );
        Ok(())
    }

    /// Folds wall-clock progress since the last update into effective
    /// progress at the attempt's current slowdown.
    fn update_progress(&mut self, ri: usize, now: SimTime) {
        let a = &mut self.replicas[ri].attempt;
        let elapsed = now.saturating_since(a.last_update);
        let gained = elapsed / a.slowdown;
        a.done_eff = (a.done_eff + gained).min(a.total_eff);
        a.last_update = a.last_update.max(now);
    }

    /// Re-schedules the running attempt's Finish under a new slowdown.
    fn reproject(&mut self, ri: usize, now: SimTime, new_slowdown: f64) {
        self.update_progress(ri, now);
        let r = &mut self.replicas[ri];
        r.attempt.slowdown = new_slowdown;
        r.gen += 1;
        let gen = r.gen;
        let left = r.attempt.total_eff - r.attempt.done_eff;
        self.queue.push(
            r.attempt.last_update + left * new_slowdown,
            Ev::Finish { replica: ri, gen },
        );
    }

    /// Whether `task` still has a replica that can finish.
    fn task_has_live_replica(&self, task: TaskId) -> bool {
        self.task_replicas[task.0].iter().any(|&ri| {
            !matches!(
                self.replicas[ri].state,
                RState::Failed | RState::Cancelled | RState::Lost
            )
        })
    }

    /// Aborts the running attempt of `ri` after a transient fault:
    /// either queues a retry (device stays held through the restart
    /// overhead and backoff) or fails the replica for good.
    fn abort_attempt(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        self.update_progress(ri, now);
        let done_eff = self.replicas[ri].attempt.done_eff;
        let preserved = self.preserved_work(done_eff);
        self.counters.wasted += (done_eff - preserved).as_secs();
        let max_retries = self.res.policy.max_retries();
        let r = &mut self.replicas[ri];
        r.remaining_work = r.remaining_work - preserved;
        if r.retries >= max_retries {
            r.state = RState::Failed;
            r.gen += 1;
            let task = r.task;
            let attempts = r.retries + 1;
            let d = r.device.0;
            self.devs[d].running = None;
            self.devs[d].pos += 1;
            if !self.task_has_live_replica(task) {
                return Err(EngineError::RetriesExhausted { task, attempts });
            }
            return Ok(());
        }
        r.retries += 1;
        let retry = r.retries;
        r.state = RState::WaitingRestart;
        r.gen += 1;
        let gen = r.gen;
        self.counters.retries += 1;
        let delay =
            self.res.failures.restart_overhead_secs + self.res.policy.backoff_delay_secs(retry);
        self.counters.recovery += delay;
        self.queue.push(
            now + SimDuration::from_secs(delay),
            Ev::Resume { replica: ri, gen },
        );
        Ok(())
    }

    /// Cancels a losing replica exactly once (guarded by its state).
    fn cancel_replica(&mut self, ri: usize, now: SimTime) {
        match self.replicas[ri].state {
            RState::Queued => {
                // Never launched: nothing executed, nothing to count.
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
            }
            RState::Running => {
                self.update_progress(ri, now);
                self.counters.wasted += self.replicas[ri].attempt.done_eff.as_secs();
                self.counters.cancelled += 1;
                let d = self.replicas[ri].device.0;
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
                self.devs[d].running = None;
                self.devs[d].pos += 1;
            }
            RState::WaitingRestart => {
                self.counters.cancelled += 1;
                let d = self.replicas[ri].device.0;
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
                self.devs[d].running = None;
                self.devs[d].pos += 1;
            }
            RState::Done | RState::Cancelled | RState::Failed | RState::Lost => {}
        }
    }

    fn handle_finish(&mut self, ri: usize, gen: u32, now: SimTime) -> Result<(), EngineError> {
        if self.replicas[ri].gen != gen || self.replicas[ri].state != RState::Running {
            return Ok(()); // Stale: aborted, cancelled or reprojected.
        }
        let task = self.replicas[ri].task;
        let device = self.replicas[ri].device;
        {
            let r = &mut self.replicas[ri];
            r.state = RState::Done;
            r.gen += 1;
        }
        self.finished_at[task.0] = Some(now);
        self.winner_dev[task.0] = Some(device);
        self.realized[task.0] = Some(Placement {
            task,
            device,
            level: self.replicas[ri].level,
            start: self.replicas[ri].occupied_from,
            finish: now,
        });
        self.completed += 1;
        self.devs[device.0].running = None;
        self.devs[device.0].pos += 1;
        // First finisher wins: cancel every sibling.
        let siblings = self.task_replicas[task.0].clone();
        for si in siblings {
            if si != ri {
                self.cancel_replica(si, now);
            }
        }
        let wf = self.wf;
        for &e in wf.successors(task) {
            self.preds_left[wf.edge(e).dst.0] -= 1;
        }
        Ok(())
    }

    fn handle_resume(&mut self, ri: usize, gen: u32, now: SimTime) -> Result<(), EngineError> {
        if self.replicas[ri].gen != gen || self.replicas[ri].state != RState::WaitingRestart {
            return Ok(()); // Stale: cancelled or lost while waiting.
        }
        self.start_attempt(ri, now)
    }

    fn handle_fault(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        if !self.avail.is_up(DeviceId(d)) {
            return Ok(()); // The device already failed permanently.
        }
        let kind = self.devs[d]
            .pending_kind
            .take()
            .expect("fault event without a drawn mode");
        match kind {
            FailureKind::Transient => {
                // Idle devices shrug transient faults off.
                if let Some(ri) = self.devs[d].running {
                    if self.replicas[ri].state == RState::Running {
                        self.counters.transient += 1;
                        self.abort_attempt(ri, now)?;
                    }
                }
                self.schedule_next_fault(d, now);
            }
            FailureKind::Degraded => {
                self.counters.degraded += 1;
                let factor = self.res.failures.degraded_slowdown;
                self.avail.set_degraded(DeviceId(d), factor);
                if let Some(ri) = self.devs[d].running {
                    if self.replicas[ri].state == RState::Running {
                        self.reproject(ri, now, factor);
                    }
                }
                self.devs[d].repair_seq += 1;
                let seq = self.devs[d].repair_seq;
                self.queue.push(
                    now + SimDuration::from_secs(self.res.failures.degraded_repair_secs),
                    Ev::Repair { device: d, seq },
                );
                self.schedule_next_fault(d, now);
            }
            FailureKind::Permanent => {
                self.counters.permanent += 1;
                self.handle_device_loss(d, now)?;
            }
        }
        Ok(())
    }

    fn handle_repair(&mut self, d: usize, seq: u32, now: SimTime) {
        if self.devs[d].repair_seq != seq || !self.avail.is_up(DeviceId(d)) {
            return; // Superseded by a newer degradation, or device lost.
        }
        self.avail.repair(DeviceId(d));
        if let Some(ri) = self.devs[d].running {
            if self.replicas[ri].state == RState::Running {
                self.reproject(ri, now, 1.0);
            }
        }
    }

    /// Permanent loss of device `d`: orphan its replicas, then recover
    /// stranded tasks by policy (full replan under Reschedule, greedy
    /// per-task reassignment otherwise).
    fn handle_device_loss(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        self.avail.set_down(DeviceId(d));
        self.devs[d].running = None;
        let suffix: Vec<usize> = self.devs[d].queue[self.devs[d].pos..].to_vec();
        for ri in suffix {
            match self.replicas[ri].state {
                RState::Running => {
                    self.update_progress(ri, now);
                    self.counters.wasted += self.replicas[ri].attempt.done_eff.as_secs();
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
                RState::Queued | RState::WaitingRestart => {
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
                _ => {}
            }
        }
        let n = self.wf.num_tasks();
        if self.avail.num_up() == 0 {
            return Err(EngineError::AllDevicesLost {
                at_secs: now.as_secs(),
                completed: self.completed,
                total: n,
            });
        }
        let stranded: Vec<TaskId> = (0..n)
            .map(TaskId)
            .filter(|&t| self.finished_at[t.0].is_none() && !self.task_has_live_replica(t))
            .collect();
        match self.res.policy.clone() {
            RecoveryPolicy::Reschedule {
                scheduler,
                overhead_secs,
                ..
            } => self.reschedule_replan(&scheduler, overhead_secs, now),
            _ => self.greedy_reassign(&stranded, now),
        }
    }

    /// Moves each stranded task to the surviving feasible device where
    /// it runs fastest (ties break on device id), restarting from zero
    /// (checkpoints are device-local).
    fn greedy_reassign(&mut self, stranded: &[TaskId], now: SimTime) -> Result<(), EngineError> {
        let n = self.wf.num_tasks();
        for &task in stranded {
            let mut best: Option<(f64, usize)> = None;
            for dev in self.avail.surviving() {
                let device = self.platform.device(dev)?;
                if !placement_feasible(device, self.wf.task(task)?) {
                    continue;
                }
                let secs = self.work_on(task, dev, device.nominal_level())?.as_secs();
                let cand = (secs, dev.0);
                if best.is_none() || cand < best.expect("checked") {
                    best = Some(cand);
                }
            }
            let Some((_, d)) = best else {
                return Err(EngineError::AllDevicesLost {
                    at_secs: now.as_secs(),
                    completed: self.completed,
                    total: n,
                });
            };
            let device = DeviceId(d);
            let level = self.platform.device(device)?.nominal_level();
            let overhead = self.res.failures.restart_overhead_secs;
            self.counters.recovery += overhead;
            let ordinal = self.task_replicas[task.0].len();
            let ri = self.replicas.len();
            let remaining = self.work_on(task, device, level)?;
            self.replicas.push(Replica {
                task,
                device,
                level,
                sort_key: (self.plan_key[task.0], task.0, ordinal),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor: now + SimDuration::from_secs(overhead),
                attempt: Attempt::default(),
            });
            self.task_replicas[task.0].push(ri);
            self.insert_queued(d, ri);
        }
        Ok(())
    }

    /// Inserts a new queued replica into the unconsumed suffix of device
    /// `d`'s queue, keeping it sorted by `sort_key`.
    fn insert_queued(&mut self, d: usize, ri: usize) {
        let start = self.devs[d].pos + usize::from(self.devs[d].running.is_some());
        let key = self.replicas[ri].sort_key;
        let queue = &mut self.devs[d].queue;
        let at = queue
            .iter()
            .enumerate()
            .skip(start.min(queue.len()))
            .find(|&(_, &qri)| self.replicas[qri].sort_key > key)
            .map_or(queue.len(), |(i, _)| i);
        queue.insert(at, ri);
    }

    /// Full replan on the surviving platform: every unfinished task
    /// without a held (running or restarting) replica adopts the new
    /// plan's placement; held replicas keep running where they are.
    fn reschedule_replan(
        &mut self,
        scheduler: &str,
        overhead_secs: f64,
        now: SimTime,
    ) -> Result<(), EngineError> {
        self.counters.reschedules += 1;
        self.counters.recovery += overhead_secs;
        let alive = self.avail.surviving();
        let sub = self.platform.survivors(&alive)?;
        let sched = scheduler_by_name(scheduler).ok_or_else(|| {
            EngineError::Config(format!("unknown scheduler {scheduler:?} for reschedule"))
        })?;
        let plan2 = sched.schedule(self.wf, &sub)?;
        let floor = now + SimDuration::from_secs(overhead_secs);

        let mut new_queues: Vec<Vec<usize>> = vec![Vec::new(); self.devs.len()];
        for p in plan2.placements() {
            let t = p.task;
            if self.finished_at[t.0].is_some() {
                continue;
            }
            let held = self.task_replicas[t.0].iter().any(|&ri| {
                matches!(
                    self.replicas[ri].state,
                    RState::Running | RState::WaitingRestart
                )
            });
            if held {
                continue;
            }
            // Retire any still-queued replicas of the task; the replan
            // supersedes them.
            let old = self.task_replicas[t.0].clone();
            for ri in old {
                if self.replicas[ri].state == RState::Queued {
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
            }
            // plan2's device ids index the surviving platform; map back.
            let orig = alive[p.device.0];
            self.plan_key[t.0] = p.start;
            let ordinal = self.task_replicas[t.0].len();
            let ri = self.replicas.len();
            let remaining = self.work_on(t, orig, p.level)?;
            self.replicas.push(Replica {
                task: t,
                device: orig,
                level: p.level,
                sort_key: (p.start, t.0, ordinal),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor,
                attempt: Attempt::default(),
            });
            self.task_replicas[t.0].push(ri);
            new_queues[orig.0].push(ri);
        }
        for (d, queued) in new_queues.iter_mut().enumerate() {
            if !self.avail.is_up(DeviceId(d)) {
                continue;
            }
            let keep = (self.devs[d].pos + usize::from(self.devs[d].running.is_some()))
                .min(self.devs[d].queue.len());
            self.devs[d].queue.truncate(keep);
            let mut tail = std::mem::take(queued);
            tail.sort_by_key(|&ri| self.replicas[ri].sort_key);
            self.devs[d].queue.extend(tail);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::FailureModel;
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_workflow::generators::{cybershake, montage};

    fn config_with(seed: u64, failures: FailureModel, policy: RecoveryPolicy) -> EngineConfig {
        EngineConfig {
            seed,
            noise_cv: 0.2,
            resilience: Some(ResilienceConfig::new(failures, policy)),
            ..Default::default()
        }
    }

    fn policies() -> Vec<RecoveryPolicy> {
        vec![
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.005,
                factor: 2.0,
                cap_secs: 0.05,
                max_retries: 10_000,
            },
            RecoveryPolicy::ReplicateK {
                replicas: 2,
                max_retries: 10_000,
            },
            RecoveryPolicy::CheckpointRestart {
                interval_secs: 0.05,
                overhead_secs: 0.002,
                max_retries: 10_000,
            },
            RecoveryPolicy::Reschedule {
                scheduler: "heft".into(),
                overhead_secs: 0.01,
                max_retries: 10_000,
            },
        ]
    }

    #[test]
    fn requires_resilience_config() {
        let p = presets::hpc_node();
        let wf = montage(20, 1).unwrap();
        let err = ResilientRunner::new(EngineConfig::default())
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn every_policy_completes_under_transient_faults() {
        let p = presets::hpc_node();
        let wf = montage(50, 2).unwrap();
        for policy in policies() {
            let cfg = config_with(3, FailureModel::exponential(0.03), policy.clone());
            let report = ResilientRunner::new(cfg)
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", policy.name()));
            assert_eq!(report.schedule().placements().len(), wf.num_tasks());
            let m = report.resilience().unwrap();
            assert_eq!(m.policy, policy.name());
            assert!(
                m.makespan_degradation >= -1e-9,
                "{}: faults sped the run up ({})",
                policy.name(),
                m.makespan_degradation
            );
            assert!(m.fault_free_makespan_secs > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = presets::hpc_node();
        let wf = cybershake(40, 3).unwrap();
        for policy in policies() {
            let cfg = config_with(11, FailureModel::weibull(0.04, 1.5), policy.clone());
            let a = ResilientRunner::new(cfg.clone())
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap();
            let b = ResilientRunner::new(cfg.clone())
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap();
            assert_eq!(a, b, "{} must be deterministic", policy.name());
            let mut other = cfg;
            other.seed = 12;
            let c = ResilientRunner::new(other)
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap();
            assert_ne!(a, c, "{} must react to the seed", policy.name());
        }
    }

    #[test]
    fn degraded_devices_extend_makespan() {
        let p = presets::hpc_node();
        let wf = montage(50, 4).unwrap();
        let mut fm = FailureModel::exponential(0.01);
        fm.degraded_prob = 1.0; // Every fault degrades; none abort.
        fm.degraded_slowdown = 4.0;
        fm.degraded_repair_secs = 0.05;
        let cfg = config_with(
            5,
            fm,
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.0,
                factor: 1.0,
                cap_secs: 0.0,
                max_retries: 0,
            },
        );
        let report = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let m = report.resilience().unwrap();
        assert!(m.degraded_failures > 0);
        assert_eq!(m.transient_failures, 0);
        assert!(
            m.makespan_degradation > 0.0,
            "slowdowns must cost time, got {}",
            m.makespan_degradation
        );
    }

    #[test]
    fn permanent_loss_reassigns_and_completes() {
        let p = presets::hpc_node();
        let wf = montage(60, 5).unwrap();
        for policy in policies() {
            let mut fm = FailureModel::exponential(0.05);
            fm.permanent_prob = 0.3;
            fm.restart_overhead_secs = 0.002;
            let cfg = config_with(21, fm, policy.clone());
            match ResilientRunner::new(cfg).run(&p, &wf, &HeftScheduler::default()) {
                Ok(report) => {
                    let m = report.resilience().unwrap();
                    assert_eq!(report.schedule().placements().len(), wf.num_tasks());
                    if m.permanent_failures > 0 && policy.name() == "reschedule" {
                        assert!(m.reschedules > 0, "losses must trigger a replan");
                    }
                }
                // Losing every feasible device is a legal outcome.
                Err(EngineError::AllDevicesLost { .. }) => {}
                Err(e) => panic!("{}: unexpected error {e}", policy.name()),
            }
        }
    }

    #[test]
    fn replicate_k_counts_are_consistent() {
        let p = presets::hpc_node();
        let wf = cybershake(50, 6).unwrap();
        let cfg = config_with(
            9,
            FailureModel::exponential(0.05),
            RecoveryPolicy::ReplicateK {
                replicas: 3,
                max_retries: 10_000,
            },
        );
        let report = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let m = report.resilience().unwrap();
        assert_eq!(m.permanent_failures, 0);
        assert_eq!(
            m.replicas_launched,
            wf.num_tasks() as u32 + m.replicas_cancelled,
            "every launch either wins its task or is cancelled"
        );
        assert!(m.replicas_cancelled > 0, "replicas must actually race");
    }

    #[test]
    fn fault_free_baseline_matches_injection_disabled() {
        // With failure injection on but an astronomically large MTTF the
        // run must coincide with its own baseline.
        let p = presets::hpc_node();
        let wf = montage(40, 7).unwrap();
        let cfg = config_with(
            13,
            FailureModel::exponential(1e12),
            RecoveryPolicy::CheckpointRestart {
                interval_secs: 0.05,
                overhead_secs: 0.002,
                max_retries: 5,
            },
        );
        let report = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let m = report.resilience().unwrap();
        assert!(
            m.makespan_degradation.abs() < 1e-9,
            "{}",
            m.makespan_degradation
        );
        assert_eq!(m.wasted_work_secs, 0.0);
        assert_eq!(m.transient_failures, 0);
    }
}
