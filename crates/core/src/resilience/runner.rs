//! The resilient plan executor: a discrete-event loop that executes a
//! static plan while devices fail (transiently, by degradation, or
//! permanently) and a [`RecoveryPolicy`] repairs the damage.
//!
//! # Determinism
//!
//! Every stochastic input comes from a dedicated forked stream of the
//! seed RNG: task `t` draws its noise multiplier from stream
//! `NOISE_STREAM_BASE + t`, device `d` draws its failure trace from
//! stream `FAILURE_TRACE_STREAM_BASE + d`, link `l` draws its fault
//! trace from stream `LINK_FAULT_STREAM_BASE + l`, and failure domain
//! `i` draws its correlated-event trace from stream
//! `DOMAIN_STREAM_BASE + i`. Nothing is sampled inside the event loop
//! in event order, so identical seeds give byte-identical reports
//! regardless of how the surrounding campaign is threaded or sharded.
//!
//! # Monotonicity
//!
//! A task's noise multiplier is drawn once and *replayed* on every
//! retry (the noise models input-dependent work, which re-running does
//! not change). Retries therefore repeat at least the lost work plus
//! overheads, so a fault-injected run can never finish earlier than the
//! fault-free run of the same configuration and seed — a property the
//! test battery pins down.

use std::collections::BTreeMap;

use helios_energy::account;
use helios_platform::{
    Availability, DeviceId, DvfsLevel, LinkAvailability, LinkHealth, LinkId, Platform,
};
use helios_sched::{placement_feasible, scheduler_by_name, Placement, Schedule, Scheduler};
use helios_sim::failure::{FailureKind, FailureProcess, LinkFailureKind, LinkFailureProcess};
use helios_sim::{EventQueue, SimDuration, SimRng, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::config::EngineConfig;
use crate::engine::{
    LinkState, DOMAIN_STREAM_BASE, FAILURE_TRACE_STREAM_BASE, LINK_FAULT_STREAM_BASE,
    NOISE_STREAM_BASE,
};
use crate::error::EngineError;
use crate::report::{ExecutionReport, TransferStats};
use crate::resilience::{RecoveryPolicy, ResilienceConfig, ResilienceMetrics};

/// Executes static plans under a failure model and a recovery policy,
/// attaching [`ResilienceMetrics`] to the report.
///
/// The runner executes the configuration twice: once with failure
/// injection, once without (the *fault-free baseline*, same policy,
/// same seed, same plan), so the metrics isolate what the failures
/// themselves cost.
///
/// # Examples
///
/// ```
/// use helios_core::{EngineConfig, FailureModel, RecoveryPolicy, ResilienceConfig,
///                   ResilientRunner};
/// use helios_platform::presets;
/// use helios_sched::HeftScheduler;
/// use helios_workflow::generators::montage;
///
/// let platform = presets::hpc_node();
/// let wf = montage(40, 1).unwrap();
/// let config = EngineConfig {
///     seed: 7,
///     resilience: Some(ResilienceConfig::new(
///         FailureModel::exponential(0.5),
///         RecoveryPolicy::RetryBackoff {
///             base_secs: 0.01,
///             factor: 2.0,
///             cap_secs: 0.1,
///             max_retries: 100,
///         },
///     )),
///     ..Default::default()
/// };
/// let report = ResilientRunner::new(config)
///     .run(&platform, &wf, &HeftScheduler::default())
///     .unwrap();
/// let m = report.resilience().unwrap();
/// assert!(m.makespan_degradation >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ResilientRunner {
    config: EngineConfig,
}

impl ResilientRunner {
    /// Creates a runner; `config.resilience` must be set before
    /// [`ResilientRunner::run`].
    #[must_use]
    pub fn new(config: EngineConfig) -> ResilientRunner {
        ResilientRunner { config }
    }

    /// The runner's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Plans with `scheduler`, then executes the plan under failures.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution errors.
    pub fn run(
        &self,
        platform: &Platform,
        wf: &Workflow,
        scheduler: &dyn Scheduler,
    ) -> Result<ExecutionReport, EngineError> {
        let plan = scheduler.schedule(wf, platform)?;
        self.execute_plan(platform, wf, &plan)
    }

    /// Executes a precomputed plan under the configured failure model
    /// and recovery policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when `resilience` is unset or
    /// invalid (tracing is also unsupported here),
    /// [`EngineError::RetriesExhausted`] when a task runs out of both
    /// retries and live replicas, and [`EngineError::AllDevicesLost`]
    /// when permanent failures leave no feasible device.
    pub fn execute_plan(
        &self,
        platform: &Platform,
        wf: &Workflow,
        plan: &Schedule,
    ) -> Result<ExecutionReport, EngineError> {
        self.config.validate()?;
        let res = self.config.resilience.as_ref().ok_or_else(|| {
            EngineError::Config("ResilientRunner requires EngineConfig::resilience".into())
        })?;
        res.validate()?;
        if self.config.tracing {
            return Err(EngineError::Config(
                "tracing is not supported by the ResilientRunner".into(),
            ));
        }

        let faulty = Sim::execute(&self.config, res, platform, wf, plan, true)?;
        let baseline = Sim::execute(&self.config, res, platform, wf, plan, false)?;

        let mk = faulty.schedule.makespan().as_secs();
        let base_mk = baseline.schedule.makespan().as_secs();
        let c = &faulty.counters;
        let metrics = ResilienceMetrics {
            policy: res.policy.name().to_owned(),
            fault_free_makespan_secs: base_mk,
            makespan_degradation: if base_mk > 0.0 {
                mk / base_mk - 1.0
            } else {
                0.0
            },
            wasted_work_secs: c.wasted,
            recovery_overhead_secs: c.recovery,
            transient_failures: c.transient,
            degraded_failures: c.degraded,
            permanent_failures: c.permanent,
            retries: c.retries,
            replicas_launched: c.launched,
            replicas_cancelled: c.cancelled,
            reschedules: c.reschedules,
            link_faults: c.link_faults,
            reroutes: c.reroutes,
            partition_downtime_secs: c.partition_downtime,
            rematerialized_tasks: c.remat_tasks,
            rematerialized_bytes: c.remat_bytes,
            domain_events: c.domain_events,
        };
        // Energy is accounted on the winning placements only; the device
        // time burnt by cancelled replicas shows up in wasted_work_secs,
        // not in joules (a documented approximation).
        let energy = account(&faulty.schedule, wf, platform, false)?;
        let failures = c.transient + c.degraded + c.permanent;
        Ok(ExecutionReport::new(
            faulty.schedule,
            energy,
            faulty.stats,
            failures,
            c.retries,
            None,
        )
        .with_resilience(metrics))
    }
}

/// Lifecycle of one replica (one task copy bound to one device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    /// Waiting in its device queue.
    Queued,
    /// Attempt in flight (device held).
    Running,
    /// Aborted; waiting out restart overhead + backoff (device held).
    WaitingRestart,
    /// Finished first among its siblings.
    Done,
    /// A sibling finished first, or the task completed elsewhere.
    Cancelled,
    /// Retry budget exhausted.
    Failed,
    /// Its device failed permanently.
    Lost,
}

/// Progress bookkeeping for the replica's current attempt. Progress is
/// measured in *effective* seconds (device at full speed); degradation
/// stretches wall-clock without adding effective progress.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    /// High-water mark of progress accounting; starts at the attempt's
    /// execution start.
    last_update: SimTime,
    done_eff: SimDuration,
    total_eff: SimDuration,
    slowdown: f64,
}

impl Default for Attempt {
    fn default() -> Attempt {
        Attempt {
            last_update: SimTime::ZERO,
            done_eff: SimDuration::ZERO,
            total_eff: SimDuration::ZERO,
            slowdown: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Replica {
    task: TaskId,
    device: DeviceId,
    level: DvfsLevel,
    /// Queue ordering key: (plan start, task id, replica ordinal).
    /// Plan starts respect precedence, so per-device queues sorted by
    /// this key can never deadlock across devices.
    sort_key: (SimTime, usize, usize),
    state: RState,
    /// Stale-event guard: bumped on every state transition, checked by
    /// Finish/Resume handlers.
    gen: u32,
    retries: u32,
    launched: bool,
    /// When the device first picked this replica up (realized start).
    occupied_from: SimTime,
    /// Base work left, effective seconds (excludes checkpoint writes).
    remaining_work: SimDuration,
    /// Earliest instant an attempt may begin (restart/replan overhead).
    floor: SimTime,
    attempt: Attempt,
}

#[derive(Debug)]
struct Dev {
    /// Replica indices in `sort_key` order; `queue[pos]` is the entry
    /// being run (when `running` is set) or considered next.
    queue: Vec<usize>,
    pos: usize,
    running: Option<usize>,
    /// Stale-repair guard: a newer degradation supersedes older repairs.
    repair_seq: u32,
    rng: SimRng,
    /// Failure mode pre-drawn for the next Fault event on this device.
    pending_kind: Option<FailureKind>,
}

/// Per-link fault-injection state. Allocated for every link so domain
/// outages can share the repair-sequence guard; the RNG stream is only
/// drawn from when a [`LinkFaultModel`](crate::LinkFaultModel) is
/// configured.
#[derive(Debug)]
struct LinkRt {
    rng: SimRng,
    /// Fault mode pre-drawn for the next LinkFault event on this link.
    pending: Option<LinkFailureKind>,
    /// Stale-repair guard: a newer outage/degradation supersedes older
    /// repairs (domain outages bump it too).
    repair_seq: u32,
}

/// Runtime state of one correlated failure domain: resolved member ids
/// plus its own RNG stream and event process.
#[derive(Debug)]
struct DomainRt {
    device_ids: Vec<usize>,
    link_ids: Vec<LinkId>,
    rng: SimRng,
    pending: Option<FailureKind>,
    process: FailureProcess,
    /// Member-link downtime under non-permanent events.
    outage: SimDuration,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Finish { replica: usize, gen: u32 },
    Resume { replica: usize, gen: u32 },
    Fault { device: usize },
    Repair { device: usize, seq: u32 },
    LinkFault { link: usize },
    LinkRepair { link: usize, seq: u32 },
    DomainFault { domain: usize },
}

#[derive(Debug, Default)]
struct Counters {
    transient: u32,
    degraded: u32,
    permanent: u32,
    retries: u32,
    launched: u32,
    cancelled: u32,
    reschedules: u32,
    link_faults: u32,
    reroutes: u32,
    remat_tasks: u32,
    domain_events: u32,
    /// Output bytes destroyed with their devices and re-produced.
    remat_bytes: f64,
    /// Seconds transfers stalled waiting for downed links to heal.
    partition_downtime: f64,
    /// Effective device-seconds that contributed nothing.
    wasted: f64,
    /// Restart overheads + backoff delays + replan overheads, seconds.
    recovery: f64,
}

struct Outcome {
    schedule: Schedule,
    stats: TransferStats,
    counters: Counters,
}

struct Sim<'a> {
    cfg: &'a EngineConfig,
    res: &'a ResilienceConfig,
    platform: &'a Platform,
    wf: &'a Workflow,
    noise: Vec<f64>,
    replicas: Vec<Replica>,
    task_replicas: Vec<Vec<usize>>,
    devs: Vec<Dev>,
    avail: Availability,
    /// Unfinished incoming edges per task.
    preds_left: Vec<usize>,
    finished_at: Vec<Option<SimTime>>,
    winner_dev: Vec<Option<DeviceId>>,
    realized: Vec<Option<Placement>>,
    /// Original plan start per task, reused to key reassigned replicas.
    plan_key: Vec<SimTime>,
    completed: usize,
    counters: Counters,
    links: LinkState,
    stats: TransferStats,
    /// (producer, destination) -> availability instant, when caching.
    delivered: BTreeMap<(TaskId, DeviceId), SimTime>,
    queue: EventQueue<Ev>,
    process: FailureProcess,
    /// Link health, consulted when a transfer is staged. Running
    /// transfers are not re-projected by later link faults (a documented
    /// approximation; device faults dominate attempt lifetimes).
    links_avail: LinkAvailability,
    link_rt: Vec<LinkRt>,
    link_proc: Option<LinkFailureProcess>,
    domains_rt: Vec<DomainRt>,
    /// Whether link health can change: route-aware staging is used by
    /// both the faulty run and the baseline iff this is set, so the two
    /// runs are numerically comparable.
    link_health_active: bool,
    /// Set when recovery queues new replicas mid-dispatch, forcing
    /// another dispatch pass over all devices.
    dispatch_dirty: bool,
}

/// Health of one candidate route at staging time.
enum RouteNow {
    /// Every link carries data; transfers stretch by `scale` (≥ 1).
    Up { scale: f64 },
    /// Some link is down but repairs; all-up at `at`, then `scale`.
    Heals { at: SimTime, scale: f64 },
    /// Some link is down forever: the route is severed.
    Severed,
}

impl<'a> Sim<'a> {
    fn execute(
        cfg: &'a EngineConfig,
        res: &'a ResilienceConfig,
        platform: &'a Platform,
        wf: &'a Workflow,
        plan: &Schedule,
        inject: bool,
    ) -> Result<Outcome, EngineError> {
        let n = wf.num_tasks();
        let nd = platform.num_devices();
        let nl = platform.interconnect().links().len();
        let base_rng = SimRng::seed_from(cfg.seed);

        // Resolve failure-domain members against this platform up front,
        // so a bad name fails the cell with an actionable error instead
        // of silently injecting nothing.
        let mut domains_rt: Vec<DomainRt> = Vec::with_capacity(res.domains.len());
        for (i, dom) in res.domains.iter().enumerate() {
            let mut device_ids = Vec::with_capacity(dom.devices.len());
            for name in &dom.devices {
                let dev = platform.device_by_name(name).ok_or_else(|| {
                    EngineError::Config(format!(
                        "failure domain {:?}: unknown device {:?}; platform devices: {}",
                        dom.name,
                        name,
                        platform
                            .devices()
                            .iter()
                            .map(|d| d.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
                device_ids.push(dev.id().0);
            }
            let mut link_ids = Vec::new();
            for name in &dom.links {
                let matches = platform.interconnect().links_by_name(name);
                if matches.is_empty() {
                    let mut known: Vec<&str> = platform
                        .interconnect()
                        .links()
                        .iter()
                        .map(|l| l.name())
                        .collect();
                    known.dedup();
                    return Err(EngineError::Config(format!(
                        "failure domain {:?}: unknown link {:?}; platform links: {}",
                        dom.name,
                        name,
                        known.join(", ")
                    )));
                }
                link_ids.extend(matches);
            }
            link_ids.sort_unstable();
            link_ids.dedup();
            domains_rt.push(DomainRt {
                device_ids,
                link_ids,
                rng: base_rng.fork(DOMAIN_STREAM_BASE + i as u64),
                pending: None,
                process: dom.process()?,
                outage: SimDuration::from_secs(dom.outage_secs),
            });
        }

        let link_health_active =
            res.link_faults.is_some() || res.domains.iter().any(|d| !d.links.is_empty());
        let link_proc = res.link_faults.as_ref().map(|m| m.process()).transpose()?;

        // Task-intrinsic noise: drawn once per task from its own stream
        // and replayed on every retry and replica.
        let noise: Vec<f64> = (0..n)
            .map(|t| {
                if cfg.noise_cv > 0.0 {
                    let mut r = base_rng.fork(NOISE_STREAM_BASE + t as u64);
                    r.normal(1.0, cfg.noise_cv).max(0.05)
                } else {
                    1.0
                }
            })
            .collect();

        let mut plan_dev = vec![DeviceId(0); n];
        let mut plan_level = vec![DvfsLevel(0); n];
        let mut plan_key = vec![SimTime::ZERO; n];
        for p in plan.placements() {
            plan_dev[p.task.0] = p.device;
            plan_level[p.task.0] = p.level;
            plan_key[p.task.0] = p.start;
        }

        let mut sim = Sim {
            cfg,
            res,
            platform,
            wf,
            noise,
            replicas: Vec::new(),
            task_replicas: vec![Vec::new(); n],
            devs: Vec::new(),
            avail: Availability::new(nd),
            preds_left: (0..n).map(|t| wf.predecessors(TaskId(t)).len()).collect(),
            finished_at: vec![None; n],
            winner_dev: vec![None; n],
            realized: vec![None; n],
            plan_key,
            completed: 0,
            counters: Counters::default(),
            links: LinkState::new(platform),
            stats: TransferStats::default(),
            delivered: BTreeMap::new(),
            queue: EventQueue::new(),
            process: res.failures.process()?,
            links_avail: LinkAvailability::new(nl),
            link_rt: (0..nl)
                .map(|l| LinkRt {
                    rng: base_rng.fork(LINK_FAULT_STREAM_BASE + l as u64),
                    pending: None,
                    repair_seq: 0,
                })
                .collect(),
            link_proc,
            domains_rt,
            link_health_active,
            dispatch_dirty: false,
        };

        // Build replicas: the planned placement, plus k-1 copies on the
        // fastest other feasible devices under ReplicateK.
        let k = match res.policy {
            RecoveryPolicy::ReplicateK { replicas, .. } => replicas,
            _ => 1,
        };
        for t in 0..n {
            let task = TaskId(t);
            let primary = plan_dev[t];
            let ri = sim.replicas.len();
            let remaining = sim.work_on(task, primary, plan_level[t])?;
            sim.replicas.push(Replica {
                task,
                device: primary,
                level: plan_level[t],
                sort_key: (sim.plan_key[t], t, 0),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor: SimTime::ZERO,
                attempt: Attempt::default(),
            });
            sim.task_replicas[t].push(ri);
            if k > 1 {
                // Fastest feasible alternates first; ties break on id.
                let mut cands: Vec<(f64, usize)> = Vec::new();
                for d in 0..nd {
                    if d == primary.0 {
                        continue;
                    }
                    let device = platform.device(DeviceId(d))?;
                    if !placement_feasible(device, wf.task(task)?) {
                        continue;
                    }
                    let secs = device
                        .execution_time(wf.task(task)?.cost(), device.nominal_level())?
                        .as_secs();
                    cands.push((secs, d));
                }
                cands.sort_by(|a, b| a.partial_cmp(b).expect("finite exec times"));
                for (ordinal, &(_, d)) in cands.iter().take(k - 1).enumerate() {
                    let device = DeviceId(d);
                    let level = platform.device(device)?.nominal_level();
                    let ri = sim.replicas.len();
                    let remaining = sim.work_on(task, device, level)?;
                    sim.replicas.push(Replica {
                        task,
                        device,
                        level,
                        sort_key: (sim.plan_key[t], t, ordinal + 1),
                        state: RState::Queued,
                        gen: 0,
                        retries: 0,
                        launched: false,
                        occupied_from: SimTime::ZERO,
                        remaining_work: remaining,
                        floor: SimTime::ZERO,
                        attempt: Attempt::default(),
                    });
                    sim.task_replicas[t].push(ri);
                }
            }
        }

        for d in 0..nd {
            let mut queue: Vec<usize> = (0..sim.replicas.len())
                .filter(|&ri| sim.replicas[ri].device.0 == d)
                .collect();
            queue.sort_by_key(|&ri| sim.replicas[ri].sort_key);
            sim.devs.push(Dev {
                queue,
                pos: 0,
                running: None,
                repair_seq: 0,
                rng: base_rng.fork(FAILURE_TRACE_STREAM_BASE + d as u64),
                pending_kind: None,
            });
        }

        if inject {
            for d in 0..nd {
                sim.schedule_next_fault(d, SimTime::ZERO);
            }
            if sim.link_proc.is_some() {
                for l in 0..nl {
                    sim.schedule_next_link_fault(l, SimTime::ZERO);
                }
            }
            for i in 0..sim.domains_rt.len() {
                sim.schedule_next_domain_fault(i, SimTime::ZERO);
            }
        }

        sim.run_loop(n)?;

        let placements: Vec<Placement> = sim
            .realized
            .into_iter()
            .map(|p| p.expect("all tasks completed"))
            .collect();
        Ok(Outcome {
            schedule: Schedule::new(placements)?,
            stats: sim.stats,
            counters: sim.counters,
        })
    }

    fn run_loop(&mut self, n: usize) -> Result<(), EngineError> {
        let mut steps: u64 = 0;
        self.dispatch_all(SimTime::ZERO)?;
        while self.completed < n {
            if let Some(budget) = self.cfg.step_budget {
                if steps >= budget {
                    // Watchdog: the fault configuration is grinding this
                    // cell, not hanging the whole campaign.
                    return Err(EngineError::StepBudgetExceeded {
                        steps: budget,
                        completed: self.completed,
                        total: n,
                    });
                }
            }
            steps += 1;
            let Some((now, ev)) = self.queue.pop() else {
                return Err(EngineError::Stalled {
                    completed: self.completed,
                    total: n,
                });
            };
            match ev {
                Ev::Finish { replica, gen } => self.handle_finish(replica, gen, now)?,
                Ev::Resume { replica, gen } => self.handle_resume(replica, gen, now)?,
                Ev::Fault { device } => self.handle_fault(device, now)?,
                Ev::Repair { device, seq } => self.handle_repair(device, seq, now),
                Ev::LinkFault { link } => self.handle_link_fault(link, now),
                Ev::LinkRepair { link, seq } => self.handle_link_repair(link, seq),
                Ev::DomainFault { domain } => self.handle_domain_fault(domain, now)?,
            }
            self.dispatch_all(now)?;
        }
        Ok(())
    }

    /// Modeled execution time of `task` on `device` at `level`, folding
    /// in the task's noise multiplier and the device's static slowdown.
    fn work_on(
        &self,
        task: TaskId,
        device: DeviceId,
        level: DvfsLevel,
    ) -> Result<SimDuration, EngineError> {
        let dev = self.platform.device(device)?;
        let modeled = dev.execution_time(self.wf.task(task)?.cost(), level)?;
        let slow = self
            .cfg
            .device_slowdown
            .as_ref()
            .and_then(|v| v.get(device.0))
            .copied()
            .unwrap_or(1.0);
        Ok(modeled * self.noise[task.0] * slow)
    }

    /// Effective seconds one attempt needs: the base work plus one
    /// checkpoint write per completed interval under CheckpointRestart.
    fn attempt_effective(&self, remaining: SimDuration) -> SimDuration {
        match self.res.policy {
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                let snapshots = (remaining.as_secs() / interval_secs).floor();
                remaining + SimDuration::from_secs(overhead_secs * snapshots)
            }
            _ => remaining,
        }
    }

    /// Base-work seconds preserved by completed checkpoints when an
    /// attempt with `done_eff` effective progress aborts.
    fn preserved_work(&self, done_eff: SimDuration) -> SimDuration {
        match self.res.policy {
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                let stride = interval_secs + overhead_secs;
                let units = (done_eff.as_secs() / stride).floor();
                SimDuration::from_secs(interval_secs * units)
            }
            _ => SimDuration::ZERO,
        }
    }

    fn schedule_next_fault(&mut self, d: usize, now: SimTime) {
        let ev = self.process.next_after(&mut self.devs[d].rng, now);
        self.devs[d].pending_kind = Some(ev.kind);
        self.queue.push(ev.at, Ev::Fault { device: d });
    }

    fn schedule_next_link_fault(&mut self, l: usize, now: SimTime) {
        let proc = self
            .link_proc
            .as_ref()
            .expect("link faults scheduled without a model");
        let ev = proc.next_after(&mut self.link_rt[l].rng, now);
        self.link_rt[l].pending = Some(ev.kind);
        self.queue.push(ev.at, Ev::LinkFault { link: l });
    }

    fn schedule_next_domain_fault(&mut self, i: usize, now: SimTime) {
        let drt = &mut self.domains_rt[i];
        let ev = drt.process.next_after(&mut drt.rng, now);
        drt.pending = Some(ev.kind);
        self.queue.push(ev.at, Ev::DomainFault { domain: i });
    }

    fn handle_link_fault(&mut self, l: usize, now: SimTime) {
        let link = LinkId(l);
        if self.links_avail.down_until(link).is_some() {
            // Already out. A permanently severed link ends its trace; a
            // timed outage just waits for the next draw.
            if !matches!(self.links_avail.down_until(link), Some(None)) {
                self.schedule_next_link_fault(l, now);
            }
            return;
        }
        let kind = self.link_rt[l]
            .pending
            .take()
            .expect("link fault event without a drawn mode");
        let lf = self
            .res
            .link_faults
            .as_ref()
            .expect("link fault event without a model");
        self.counters.link_faults += 1;
        self.link_rt[l].repair_seq += 1;
        let seq = self.link_rt[l].repair_seq;
        match kind {
            LinkFailureKind::Degraded => {
                self.links_avail.set_degraded(link, lf.degraded_factor);
                self.queue.push(
                    now + SimDuration::from_secs(lf.degraded_repair_secs),
                    Ev::LinkRepair { link: l, seq },
                );
            }
            LinkFailureKind::Outage => {
                let until = now + SimDuration::from_secs(lf.outage_secs);
                self.links_avail.set_down(link, Some(until));
                self.queue.push(until, Ev::LinkRepair { link: l, seq });
            }
        }
        self.schedule_next_link_fault(l, now);
    }

    fn handle_link_repair(&mut self, l: usize, seq: u32) {
        if self.link_rt[l].repair_seq != seq {
            return; // Superseded by a newer fault or domain outage.
        }
        if matches!(self.links_avail.down_until(LinkId(l)), Some(None)) {
            return; // Permanent losses stay down.
        }
        self.links_avail.repair(LinkId(l));
    }

    /// Takes every member link of domain `i` down until `now +
    /// outage`, superseding pending repairs. Links that are already
    /// down — permanently severed or mid-outage — are left alone: an
    /// outage runs its configured course from its onset, it is not
    /// extended by later strikes.
    fn domain_link_outage(&mut self, i: usize, now: SimTime) {
        let until = now + self.domains_rt[i].outage;
        let links = self.domains_rt[i].link_ids.clone();
        for link in links {
            if self.links_avail.down_until(link).is_some() {
                continue;
            }
            self.links_avail.set_down(link, Some(until));
            self.link_rt[link.0].repair_seq += 1;
            let seq = self.link_rt[link.0].repair_seq;
            self.queue.push(until, Ev::LinkRepair { link: link.0, seq });
        }
    }

    fn handle_domain_fault(&mut self, i: usize, now: SimTime) -> Result<(), EngineError> {
        // A fully dead domain (every member device and link permanently
        // gone) generates no further events, bounding the event stream.
        let any_live = self.domains_rt[i]
            .device_ids
            .iter()
            .any(|&d| self.avail.is_up(DeviceId(d)))
            || self.domains_rt[i]
                .link_ids
                .iter()
                .any(|&l| !matches!(self.links_avail.down_until(l), Some(None)));
        if !any_live {
            return Ok(());
        }
        let kind = self.domains_rt[i]
            .pending
            .take()
            .expect("domain fault event without a drawn mode");
        self.counters.domain_events += 1;
        let member_devs = self.domains_rt[i].device_ids.clone();
        match kind {
            FailureKind::Transient => {
                for &d in &member_devs {
                    if !self.avail.is_up(DeviceId(d)) {
                        continue;
                    }
                    if let Some(ri) = self.devs[d].running {
                        if self.replicas[ri].state == RState::Running {
                            self.counters.transient += 1;
                            self.abort_attempt(ri, now)?;
                        }
                    }
                }
                self.domain_link_outage(i, now);
                self.schedule_next_domain_fault(i, now);
            }
            FailureKind::Degraded => {
                let factor = self.res.failures.degraded_slowdown;
                let repair = self.res.failures.degraded_repair_secs;
                for &d in &member_devs {
                    if !self.avail.is_up(DeviceId(d)) {
                        continue;
                    }
                    self.counters.degraded += 1;
                    self.avail.set_degraded(DeviceId(d), factor);
                    if let Some(ri) = self.devs[d].running {
                        if self.replicas[ri].state == RState::Running {
                            self.reproject(ri, now, factor);
                        }
                    }
                    self.devs[d].repair_seq += 1;
                    let seq = self.devs[d].repair_seq;
                    self.queue.push(
                        now + SimDuration::from_secs(repair),
                        Ev::Repair { device: d, seq },
                    );
                }
                self.domain_link_outage(i, now);
                self.schedule_next_domain_fault(i, now);
            }
            FailureKind::Permanent => {
                // Sever member links first so recovery placement sees the
                // partition, then fail the member devices as one batch
                // (one data-loss pass, one recovery pass).
                let links = self.domains_rt[i].link_ids.clone();
                for link in links {
                    self.links_avail.set_down(link, None);
                    self.link_rt[link.0].repair_seq += 1;
                }
                let dead: Vec<usize> = member_devs
                    .iter()
                    .copied()
                    .filter(|&d| self.avail.is_up(DeviceId(d)))
                    .collect();
                self.counters.permanent += dead.len() as u32;
                self.fail_devices(&dead, now)?;
                // The domain burnt itself out: no further events.
            }
        }
        Ok(())
    }

    /// Health of `route` right now, folding per-link states into one
    /// verdict: worst slowdown, latest repair, or permanent severance.
    fn classify_route(la: &LinkAvailability, route: &[LinkId], ready: SimTime) -> RouteNow {
        let mut scale = 1.0_f64;
        let mut heal = ready;
        let mut down = false;
        for &l in route {
            match la.state(l) {
                LinkHealth::Up => {}
                LinkHealth::Degraded { factor } => scale = scale.max(factor),
                LinkHealth::Down { until: Some(t) } => {
                    down = true;
                    heal = heal.max(t);
                }
                LinkHealth::Down { until: None } => return RouteNow::Severed,
            }
        }
        if down {
            RouteNow::Heals { at: heal, scale }
        } else {
            RouteNow::Up { scale }
        }
    }

    /// Arrival instant of one input transfer at `device`, honoring link
    /// health at staging time: degraded links stretch the transfer,
    /// downed links force a reroute over the default link or stall the
    /// transfer until the earliest repair. Returns `Ok(None)` when every
    /// candidate route is permanently severed — the device is
    /// partitioned away from the producer.
    fn staged_arrival(
        &mut self,
        src_dev: DeviceId,
        device: DeviceId,
        bytes: f64,
        ready: SimTime,
    ) -> Result<Option<SimTime>, EngineError> {
        if src_dev == device {
            return Ok(Some(ready));
        }
        let platform = self.platform;
        if !self.link_health_active {
            let arrival = self.links.transfer_arrival(
                platform,
                self.cfg.link_contention,
                bytes,
                src_dev,
                device,
                ready,
                &mut self.stats,
                None,
            )?;
            return Ok(Some(arrival));
        }
        let ic = platform.interconnect();
        let primary = ic.route(src_dev, device)?;
        // The only alternate path the model knows is the default link
        // (presets route unrelated pairs over it); a fallback identical
        // to the primary is no detour.
        let fallback: Option<Vec<LinkId>> = ic
            .default_link()
            .map(|dl| vec![dl])
            .filter(|f| f[..] != primary[..]);
        let pri = Sim::classify_route(&self.links_avail, &primary, ready);
        let fb = fallback
            .as_ref()
            .map(|r| Sim::classify_route(&self.links_avail, r, ready));
        // Preference order: any route that is up now (primary first),
        // then the route that heals earliest (primary on ties).
        let (route, anchor, scale, rerouted) = match (pri, fb) {
            (RouteNow::Up { scale }, _) => (&primary, ready, scale, false),
            (_, Some(RouteNow::Up { scale })) => {
                (fallback.as_ref().expect("classified"), ready, scale, true)
            }
            (RouteNow::Heals { at, scale }, fb) => match fb {
                Some(RouteNow::Heals {
                    at: fat,
                    scale: fsc,
                }) if fat < at => (fallback.as_ref().expect("classified"), fat, fsc, true),
                _ => (&primary, at, scale, false),
            },
            (RouteNow::Severed, Some(RouteNow::Heals { at, scale })) => {
                (fallback.as_ref().expect("classified"), at, scale, true)
            }
            (RouteNow::Severed, _) => return Ok(None),
        };
        if rerouted {
            self.counters.reroutes += 1;
        }
        if anchor > ready {
            self.counters.partition_downtime += anchor.saturating_since(ready).as_secs();
        }
        let arrival = self.links.transfer_arrival_on_route(
            platform,
            self.cfg.link_contention,
            bytes,
            route,
            anchor,
            scale,
            &mut self.stats,
        )?;
        Ok(Some(arrival))
    }

    /// Marks `ri` Lost because its inputs are permanently unreachable
    /// from its device, releases the device, and reassigns the task to a
    /// reachable device when no sibling survives.
    fn strand_replica(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        let task = self.replicas[ri].task;
        let d = self.replicas[ri].device.0;
        self.replicas[ri].state = RState::Lost;
        self.replicas[ri].gen += 1;
        self.devs[d].running = None;
        self.devs[d].pos += 1;
        if !self.task_has_live_replica(task) {
            // Partition recovery is always local reassignment (a full
            // replan cannot see link health and could re-place the task
            // on the severed device forever).
            self.greedy_reassign(&[task], now)?;
        }
        Ok(())
    }

    /// Whether `dev` can stage every already-produced input of `task`:
    /// no producer's product sits across a permanently severed route.
    /// Unfinished producers are judged optimistically — if they later
    /// finish somewhere unreachable, the consumer strands then and
    /// recovers again.
    fn reachable_for(&self, task: TaskId, dev: DeviceId) -> Result<bool, EngineError> {
        if !self.link_health_active {
            return Ok(true);
        }
        let ic = self.platform.interconnect();
        let severed = |route: &[LinkId]| {
            route
                .iter()
                .any(|&l| matches!(self.links_avail.down_until(l), Some(None)))
        };
        for &e in self.wf.predecessors(task) {
            let edge = self.wf.edge(e);
            let src = edge.src;
            let Some(src_dev) = self.winner_dev[src.0] else {
                continue;
            };
            if src_dev == dev {
                continue;
            }
            if self.cfg.data_caching && self.delivered.contains_key(&(src, dev)) {
                continue;
            }
            let primary = ic.route(src_dev, dev)?;
            if !severed(&primary) {
                continue;
            }
            let fallback_ok = match ic.default_link() {
                Some(dl) => primary[..] != [dl] && !severed(&[dl]),
                None => false,
            };
            if !fallback_ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Scans every device (in id order) and starts the next eligible
    /// queued replica on each idle one. Repeats the scan whenever a
    /// stranded start re-queued work (possibly on an already-visited
    /// device); each repeat requires fresh queued replicas, so the loop
    /// terminates.
    fn dispatch_all(&mut self, now: SimTime) -> Result<(), EngineError> {
        loop {
            self.dispatch_dirty = false;
            for d in 0..self.devs.len() {
                if !self.avail.is_up(DeviceId(d)) {
                    continue;
                }
                loop {
                    if self.devs[d].running.is_some() {
                        break;
                    }
                    let pos = self.devs[d].pos;
                    if pos >= self.devs[d].queue.len() {
                        break;
                    }
                    let ri = self.devs[d].queue[pos];
                    match self.replicas[ri].state {
                        RState::Done | RState::Cancelled | RState::Failed | RState::Lost => {
                            self.devs[d].pos += 1;
                        }
                        // A held entry without `running` set cannot happen;
                        // leave it to the Resume event rather than panic.
                        RState::Running | RState::WaitingRestart => break,
                        RState::Queued => {
                            let t = self.replicas[ri].task;
                            if self.finished_at[t.0].is_some() {
                                // Sibling already won; drop silently.
                                self.replicas[ri].state = RState::Cancelled;
                                self.replicas[ri].gen += 1;
                                self.devs[d].pos += 1;
                                continue;
                            }
                            if self.preds_left[t.0] > 0 {
                                // Head-of-line blocking preserves plan order.
                                break;
                            }
                            self.devs[d].running = Some(ri);
                            self.start_attempt(ri, now)?;
                            // A stranded start released the device again;
                            // keep scanning its queue.
                            if self.devs[d].running.is_some() {
                                break;
                            }
                        }
                    }
                }
            }
            if !self.dispatch_dirty {
                return Ok(());
            }
        }
    }

    /// Starts (or restarts) the attempt for `ri`: stages its inputs,
    /// computes the effective duration and schedules the Finish event.
    ///
    /// When every route from a producer to this device is permanently
    /// severed the replica can never start here: it is marked Lost, the
    /// device is released, and (if no sibling survives) the task is
    /// reassigned to a reachable device.
    fn start_attempt(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        let task = self.replicas[ri].task;
        let device = self.replicas[ri].device;
        let wf = self.wf;
        // Input staging, anchored at each producer's finish instant —
        // equivalent to launching the transfer when the producer
        // finished. Restarts re-pull uncached inputs (the attempt
        // re-reads its data), which recounts those transfers.
        let mut data_at = SimTime::ZERO;
        for &e in wf.predecessors(task) {
            let edge = wf.edge(e);
            let src = edge.src;
            let src_dev = self.winner_dev[src.0].expect("predecessor finished");
            let ready = self.finished_at[src.0].expect("predecessor finished");
            if self.cfg.data_caching {
                if let Some(&at) = self.delivered.get(&(src, device)) {
                    data_at = data_at.max(at);
                    continue;
                }
            }
            let Some(arrival) = self.staged_arrival(src_dev, device, edge.bytes, ready)? else {
                return self.strand_replica(ri, now);
            };
            if self.cfg.data_caching {
                self.delivered.insert((src, device), arrival);
            }
            data_at = data_at.max(arrival);
        }

        let total_eff = self.attempt_effective(self.replicas[ri].remaining_work);
        let slowdown = self.avail.slowdown(device);
        let r = &mut self.replicas[ri];
        if !r.launched {
            r.launched = true;
            r.occupied_from = now;
            self.counters.launched += 1;
        }
        let exec_start = now.max(data_at).max(r.floor);
        r.state = RState::Running;
        r.gen += 1;
        r.attempt = Attempt {
            last_update: exec_start,
            done_eff: SimDuration::ZERO,
            total_eff,
            slowdown,
        };
        let gen = r.gen;
        self.queue.push(
            exec_start + total_eff * slowdown,
            Ev::Finish { replica: ri, gen },
        );
        Ok(())
    }

    /// Folds wall-clock progress since the last update into effective
    /// progress at the attempt's current slowdown.
    fn update_progress(&mut self, ri: usize, now: SimTime) {
        let a = &mut self.replicas[ri].attempt;
        let elapsed = now.saturating_since(a.last_update);
        let gained = elapsed / a.slowdown;
        a.done_eff = (a.done_eff + gained).min(a.total_eff);
        a.last_update = a.last_update.max(now);
    }

    /// Re-schedules the running attempt's Finish under a new slowdown.
    fn reproject(&mut self, ri: usize, now: SimTime, new_slowdown: f64) {
        self.update_progress(ri, now);
        let r = &mut self.replicas[ri];
        r.attempt.slowdown = new_slowdown;
        r.gen += 1;
        let gen = r.gen;
        let left = r.attempt.total_eff - r.attempt.done_eff;
        self.queue.push(
            r.attempt.last_update + left * new_slowdown,
            Ev::Finish { replica: ri, gen },
        );
    }

    /// Whether `task` still has a replica that can finish.
    fn task_has_live_replica(&self, task: TaskId) -> bool {
        self.task_replicas[task.0].iter().any(|&ri| {
            !matches!(
                self.replicas[ri].state,
                RState::Failed | RState::Cancelled | RState::Lost
            )
        })
    }

    /// Aborts the running attempt of `ri` after a transient fault:
    /// either queues a retry (device stays held through the restart
    /// overhead and backoff) or fails the replica for good.
    fn abort_attempt(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        self.update_progress(ri, now);
        let done_eff = self.replicas[ri].attempt.done_eff;
        let preserved = self.preserved_work(done_eff);
        self.counters.wasted += (done_eff - preserved).as_secs();
        let max_retries = self.res.policy.max_retries();
        let r = &mut self.replicas[ri];
        r.remaining_work = r.remaining_work - preserved;
        if r.retries >= max_retries {
            r.state = RState::Failed;
            r.gen += 1;
            let task = r.task;
            let attempts = r.retries + 1;
            let d = r.device.0;
            self.devs[d].running = None;
            self.devs[d].pos += 1;
            if !self.task_has_live_replica(task) {
                return Err(EngineError::RetriesExhausted { task, attempts });
            }
            return Ok(());
        }
        r.retries += 1;
        let retry = r.retries;
        r.state = RState::WaitingRestart;
        r.gen += 1;
        let gen = r.gen;
        self.counters.retries += 1;
        let delay =
            self.res.failures.restart_overhead_secs + self.res.policy.backoff_delay_secs(retry);
        self.counters.recovery += delay;
        self.queue.push(
            now + SimDuration::from_secs(delay),
            Ev::Resume { replica: ri, gen },
        );
        Ok(())
    }

    /// Cancels a losing replica exactly once (guarded by its state).
    fn cancel_replica(&mut self, ri: usize, now: SimTime) {
        match self.replicas[ri].state {
            RState::Queued => {
                // Never launched: nothing executed, nothing to count.
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
            }
            RState::Running => {
                self.update_progress(ri, now);
                self.counters.wasted += self.replicas[ri].attempt.done_eff.as_secs();
                self.counters.cancelled += 1;
                let d = self.replicas[ri].device.0;
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
                self.devs[d].running = None;
                self.devs[d].pos += 1;
            }
            RState::WaitingRestart => {
                self.counters.cancelled += 1;
                let d = self.replicas[ri].device.0;
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
                self.devs[d].running = None;
                self.devs[d].pos += 1;
            }
            RState::Done | RState::Cancelled | RState::Failed | RState::Lost => {}
        }
    }

    fn handle_finish(&mut self, ri: usize, gen: u32, now: SimTime) -> Result<(), EngineError> {
        if self.replicas[ri].gen != gen || self.replicas[ri].state != RState::Running {
            return Ok(()); // Stale: aborted, cancelled or reprojected.
        }
        let task = self.replicas[ri].task;
        let device = self.replicas[ri].device;
        {
            let r = &mut self.replicas[ri];
            r.state = RState::Done;
            r.gen += 1;
        }
        self.finished_at[task.0] = Some(now);
        self.winner_dev[task.0] = Some(device);
        self.realized[task.0] = Some(Placement {
            task,
            device,
            level: self.replicas[ri].level,
            start: self.replicas[ri].occupied_from,
            finish: now,
        });
        self.completed += 1;
        self.devs[device.0].running = None;
        self.devs[device.0].pos += 1;
        // First finisher wins: cancel every sibling.
        let siblings = self.task_replicas[task.0].clone();
        for si in siblings {
            if si != ri {
                self.cancel_replica(si, now);
            }
        }
        let wf = self.wf;
        for &e in wf.successors(task) {
            let dst = wf.edge(e).dst.0;
            // A consumer that finished before lineage recovery un-did
            // this producer is not waiting on the re-run.
            if self.finished_at[dst].is_none() {
                self.preds_left[dst] -= 1;
            }
        }
        Ok(())
    }

    fn handle_resume(&mut self, ri: usize, gen: u32, now: SimTime) -> Result<(), EngineError> {
        if self.replicas[ri].gen != gen || self.replicas[ri].state != RState::WaitingRestart {
            return Ok(()); // Stale: cancelled or lost while waiting.
        }
        let t = self.replicas[ri].task;
        if self.preds_left[t.0] > 0 {
            // Lineage recovery un-finished an input while this replica
            // waited out its restart: back to Queued (still at the head
            // of its device queue), release the device, and let dispatch
            // restart it once the producers re-finish.
            let r = &mut self.replicas[ri];
            r.state = RState::Queued;
            r.gen += 1;
            let d = r.device.0;
            self.devs[d].running = None;
            return Ok(());
        }
        self.start_attempt(ri, now)
    }

    fn handle_fault(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        if !self.avail.is_up(DeviceId(d)) {
            return Ok(()); // The device already failed permanently.
        }
        let kind = self.devs[d]
            .pending_kind
            .take()
            .expect("fault event without a drawn mode");
        match kind {
            FailureKind::Transient => {
                // Idle devices shrug transient faults off.
                if let Some(ri) = self.devs[d].running {
                    if self.replicas[ri].state == RState::Running {
                        self.counters.transient += 1;
                        self.abort_attempt(ri, now)?;
                    }
                }
                self.schedule_next_fault(d, now);
            }
            FailureKind::Degraded => {
                self.counters.degraded += 1;
                let factor = self.res.failures.degraded_slowdown;
                self.avail.set_degraded(DeviceId(d), factor);
                if let Some(ri) = self.devs[d].running {
                    if self.replicas[ri].state == RState::Running {
                        self.reproject(ri, now, factor);
                    }
                }
                self.devs[d].repair_seq += 1;
                let seq = self.devs[d].repair_seq;
                self.queue.push(
                    now + SimDuration::from_secs(self.res.failures.degraded_repair_secs),
                    Ev::Repair { device: d, seq },
                );
                self.schedule_next_fault(d, now);
            }
            FailureKind::Permanent => {
                self.counters.permanent += 1;
                self.handle_device_loss(d, now)?;
            }
        }
        Ok(())
    }

    fn handle_repair(&mut self, d: usize, seq: u32, now: SimTime) {
        if self.devs[d].repair_seq != seq || !self.avail.is_up(DeviceId(d)) {
            return; // Superseded by a newer degradation, or device lost.
        }
        self.avail.repair(DeviceId(d));
        if let Some(ri) = self.devs[d].running {
            if self.replicas[ri].state == RState::Running {
                self.reproject(ri, now, 1.0);
            }
        }
    }

    /// Permanent loss of device `d` alone (per-device failure trace).
    fn handle_device_loss(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        self.fail_devices(&[d], now)
    }

    /// Permanent loss of every device in `dead` at once (one batch for a
    /// correlated domain event): orphan their replicas, destroy the data
    /// products resident on them, re-materialize the lost lineage, then
    /// recover stranded tasks by policy (full replan under Reschedule,
    /// greedy per-task reassignment otherwise).
    fn fail_devices(&mut self, dead: &[usize], now: SimTime) -> Result<(), EngineError> {
        for &d in dead {
            self.avail.set_down(DeviceId(d));
            self.devs[d].running = None;
            let suffix: Vec<usize> = self.devs[d].queue[self.devs[d].pos..].to_vec();
            for ri in suffix {
                match self.replicas[ri].state {
                    RState::Running => {
                        self.update_progress(ri, now);
                        self.counters.wasted += self.replicas[ri].attempt.done_eff.as_secs();
                        self.replicas[ri].state = RState::Lost;
                        self.replicas[ri].gen += 1;
                    }
                    RState::Queued | RState::WaitingRestart => {
                        self.replicas[ri].state = RState::Lost;
                        self.replicas[ri].gen += 1;
                    }
                    _ => {}
                }
            }
        }
        let n = self.wf.num_tasks();
        if self.avail.num_up() == 0 {
            return Err(EngineError::AllDevicesLost {
                at_secs: now.as_secs(),
                completed: self.completed,
                total: n,
            });
        }
        self.rematerialize_lost_products();
        let stranded: Vec<TaskId> = (0..n)
            .map(TaskId)
            .filter(|&t| self.finished_at[t.0].is_none() && !self.task_has_live_replica(t))
            .collect();
        match self.res.policy.clone() {
            RecoveryPolicy::Reschedule {
                scheduler,
                overhead_secs,
                ..
            } => self.reschedule_replan(&scheduler, overhead_secs, now),
            _ => self.greedy_reassign(&stranded, now),
        }
    }

    /// Data-product loss and lineage recovery.
    ///
    /// A finished task's product lives on its winner device plus any
    /// delivered cache copies. Dead devices take their copies with them:
    /// products with a surviving copy are re-pointed there; products
    /// with none are *lost*. Walking lineage upward from every
    /// unfinished task, each finished ancestor whose product is lost is
    /// un-finished so it re-executes — and only those: the walk stops at
    /// ancestors whose products survive, so exactly the lost ancestor
    /// chain is re-materialized.
    fn rematerialize_lost_products(&mut self) {
        let n = self.wf.num_tasks();
        // 1. Purge copies that died with their devices.
        let avail = &self.avail;
        self.delivered.retain(|&(_, dev), _| avail.is_up(dev));
        // 2. Re-point dead winners at the smallest surviving cached
        //    copy; products with no copy anywhere are lost.
        let mut lost = vec![false; n];
        for (t, lost_t) in lost.iter_mut().enumerate() {
            let Some(w) = self.winner_dev[t] else {
                continue;
            };
            if self.avail.is_up(w) {
                continue;
            }
            let copy = self
                .delivered
                .iter()
                .filter(|((src, _), _)| src.0 == t)
                .map(|((_, dev), &at)| (dev.0, at))
                .min();
            match copy {
                Some((d2, at)) => {
                    self.winner_dev[t] = Some(DeviceId(d2));
                    // The copy only became usable when it arrived there.
                    let f = self.finished_at[t].expect("winner implies finished");
                    self.finished_at[t] = Some(f.max(at));
                }
                None => *lost_t = true,
            }
        }
        // 3. Lineage walk from unfinished tasks: a lost finished
        //    ancestor needs re-materializing, and so (recursively) do
        //    the lost ancestors feeding *its* re-run.
        let mut need = vec![false; n];
        let mut visited = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&t| self.finished_at[t].is_none()).collect();
        for &t in &stack {
            visited[t] = true;
        }
        while let Some(t) = stack.pop() {
            for &e in self.wf.predecessors(TaskId(t)) {
                let p = self.wf.edge(e).src.0;
                if visited[p] {
                    continue;
                }
                if self.finished_at[p].is_some() && lost[p] {
                    visited[p] = true;
                    need[p] = true;
                    stack.push(p);
                }
            }
        }
        // 4. Un-finish the chain and charge the re-materialization.
        for t in (0..n).filter(|&t| need[t]) {
            self.finished_at[t] = None;
            self.winner_dev[t] = None;
            self.realized[t] = None;
            self.completed -= 1;
            self.counters.remat_tasks += 1;
            for &e in self.wf.successors(TaskId(t)) {
                self.counters.remat_bytes += self.wf.edge(e).bytes;
            }
            for ri in self.task_replicas[t].clone() {
                if self.replicas[ri].state == RState::Done {
                    // The winning attempt's work is gone with its output.
                    self.counters.wasted += self.replicas[ri].attempt.total_eff.as_secs();
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
            }
        }
        if need.iter().any(|&x| x) {
            // Finished-edge counts changed; rebuild them for every
            // unfinished task (re-run consumers wait for re-run inputs).
            for t in 0..n {
                if self.finished_at[t].is_some() {
                    continue;
                }
                self.preds_left[t] = self
                    .wf
                    .predecessors(TaskId(t))
                    .iter()
                    .filter(|&&e| self.finished_at[self.wf.edge(e).src.0].is_none())
                    .count();
            }
        }
    }

    /// Moves each stranded task to the surviving feasible *reachable*
    /// device where it runs fastest (ties break on device id),
    /// restarting from zero (checkpoints are device-local).
    fn greedy_reassign(&mut self, stranded: &[TaskId], now: SimTime) -> Result<(), EngineError> {
        let n = self.wf.num_tasks();
        for &task in stranded {
            let mut best: Option<(f64, usize)> = None;
            for dev in self.avail.surviving() {
                let device = self.platform.device(dev)?;
                if !placement_feasible(device, self.wf.task(task)?) {
                    continue;
                }
                if !self.reachable_for(task, dev)? {
                    continue;
                }
                let secs = self.work_on(task, dev, device.nominal_level())?.as_secs();
                let cand = (secs, dev.0);
                if best.is_none() || cand < best.expect("checked") {
                    best = Some(cand);
                }
            }
            let Some((_, d)) = best else {
                return Err(EngineError::AllDevicesLost {
                    at_secs: now.as_secs(),
                    completed: self.completed,
                    total: n,
                });
            };
            let device = DeviceId(d);
            let level = self.platform.device(device)?.nominal_level();
            let overhead = self.res.failures.restart_overhead_secs;
            self.counters.recovery += overhead;
            let ordinal = self.task_replicas[task.0].len();
            let ri = self.replicas.len();
            let remaining = self.work_on(task, device, level)?;
            self.replicas.push(Replica {
                task,
                device,
                level,
                sort_key: (self.plan_key[task.0], task.0, ordinal),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor: now + SimDuration::from_secs(overhead),
                attempt: Attempt::default(),
            });
            self.task_replicas[task.0].push(ri);
            self.insert_queued(d, ri);
        }
        Ok(())
    }

    /// Inserts a new queued replica into the unconsumed suffix of device
    /// `d`'s queue, keeping it sorted by `sort_key`.
    fn insert_queued(&mut self, d: usize, ri: usize) {
        self.dispatch_dirty = true;
        let start = self.devs[d].pos + usize::from(self.devs[d].running.is_some());
        let key = self.replicas[ri].sort_key;
        let queue = &mut self.devs[d].queue;
        let at = queue
            .iter()
            .enumerate()
            .skip(start.min(queue.len()))
            .find(|&(_, &qri)| self.replicas[qri].sort_key > key)
            .map_or(queue.len(), |(i, _)| i);
        queue.insert(at, ri);
    }

    /// Full replan on the surviving platform: every unfinished task
    /// without a held (running or restarting) replica adopts the new
    /// plan's placement; held replicas keep running where they are.
    fn reschedule_replan(
        &mut self,
        scheduler: &str,
        overhead_secs: f64,
        now: SimTime,
    ) -> Result<(), EngineError> {
        self.counters.reschedules += 1;
        self.counters.recovery += overhead_secs;
        self.dispatch_dirty = true;
        let alive = self.avail.surviving();
        let sub = self.platform.survivors(&alive)?;
        let sched = scheduler_by_name(scheduler).ok_or_else(|| {
            EngineError::Config(format!("unknown scheduler {scheduler:?} for reschedule"))
        })?;
        let plan2 = sched.schedule(self.wf, &sub)?;
        let floor = now + SimDuration::from_secs(overhead_secs);

        let mut new_queues: Vec<Vec<usize>> = vec![Vec::new(); self.devs.len()];
        for p in plan2.placements() {
            let t = p.task;
            if self.finished_at[t.0].is_some() {
                continue;
            }
            let held = self.task_replicas[t.0].iter().any(|&ri| {
                matches!(
                    self.replicas[ri].state,
                    RState::Running | RState::WaitingRestart
                )
            });
            if held {
                continue;
            }
            // Retire any still-queued replicas of the task; the replan
            // supersedes them.
            let old = self.task_replicas[t.0].clone();
            for ri in old {
                if self.replicas[ri].state == RState::Queued {
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
            }
            // plan2's device ids index the surviving platform; map back.
            let orig = alive[p.device.0];
            self.plan_key[t.0] = p.start;
            let ordinal = self.task_replicas[t.0].len();
            let ri = self.replicas.len();
            let remaining = self.work_on(t, orig, p.level)?;
            self.replicas.push(Replica {
                task: t,
                device: orig,
                level: p.level,
                sort_key: (p.start, t.0, ordinal),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor,
                attempt: Attempt::default(),
            });
            self.task_replicas[t.0].push(ri);
            new_queues[orig.0].push(ri);
        }
        for (d, queued) in new_queues.iter_mut().enumerate() {
            if !self.avail.is_up(DeviceId(d)) {
                continue;
            }
            let keep = (self.devs[d].pos + usize::from(self.devs[d].running.is_some()))
                .min(self.devs[d].queue.len());
            self.devs[d].queue.truncate(keep);
            let mut tail = std::mem::take(queued);
            tail.sort_by_key(|&ri| self.replicas[ri].sort_key);
            self.devs[d].queue.extend(tail);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::FailureModel;
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_workflow::generators::{cybershake, montage};

    fn config_with(seed: u64, failures: FailureModel, policy: RecoveryPolicy) -> EngineConfig {
        EngineConfig {
            seed,
            noise_cv: 0.2,
            resilience: Some(ResilienceConfig::new(failures, policy)),
            ..Default::default()
        }
    }

    fn policies() -> Vec<RecoveryPolicy> {
        vec![
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.005,
                factor: 2.0,
                cap_secs: 0.05,
                max_retries: 10_000,
            },
            RecoveryPolicy::ReplicateK {
                replicas: 2,
                max_retries: 10_000,
            },
            RecoveryPolicy::CheckpointRestart {
                interval_secs: 0.05,
                overhead_secs: 0.002,
                max_retries: 10_000,
            },
            RecoveryPolicy::Reschedule {
                scheduler: "heft".into(),
                overhead_secs: 0.01,
                max_retries: 10_000,
            },
        ]
    }

    #[test]
    fn requires_resilience_config() {
        let p = presets::hpc_node();
        let wf = montage(20, 1).unwrap();
        let err = ResilientRunner::new(EngineConfig::default())
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn every_policy_completes_under_transient_faults() {
        let p = presets::hpc_node();
        let wf = montage(50, 2).unwrap();
        for policy in policies() {
            let cfg = config_with(3, FailureModel::exponential(0.03), policy.clone());
            let report = ResilientRunner::new(cfg)
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", policy.name()));
            assert_eq!(report.schedule().placements().len(), wf.num_tasks());
            let m = report.resilience().unwrap();
            assert_eq!(m.policy, policy.name());
            assert!(
                m.makespan_degradation >= -1e-9,
                "{}: faults sped the run up ({})",
                policy.name(),
                m.makespan_degradation
            );
            assert!(m.fault_free_makespan_secs > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = presets::hpc_node();
        let wf = cybershake(40, 3).unwrap();
        for policy in policies() {
            let cfg = config_with(11, FailureModel::weibull(0.04, 1.5), policy.clone());
            let a = ResilientRunner::new(cfg.clone())
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap();
            let b = ResilientRunner::new(cfg.clone())
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap();
            assert_eq!(a, b, "{} must be deterministic", policy.name());
            let mut other = cfg;
            other.seed = 12;
            let c = ResilientRunner::new(other)
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap();
            assert_ne!(a, c, "{} must react to the seed", policy.name());
        }
    }

    #[test]
    fn degraded_devices_extend_makespan() {
        let p = presets::hpc_node();
        let wf = montage(50, 4).unwrap();
        let mut fm = FailureModel::exponential(0.01);
        fm.degraded_prob = 1.0; // Every fault degrades; none abort.
        fm.degraded_slowdown = 4.0;
        fm.degraded_repair_secs = 0.05;
        let cfg = config_with(
            5,
            fm,
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.0,
                factor: 1.0,
                cap_secs: 0.0,
                max_retries: 0,
            },
        );
        let report = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let m = report.resilience().unwrap();
        assert!(m.degraded_failures > 0);
        assert_eq!(m.transient_failures, 0);
        assert!(
            m.makespan_degradation > 0.0,
            "slowdowns must cost time, got {}",
            m.makespan_degradation
        );
    }

    #[test]
    fn permanent_loss_reassigns_and_completes() {
        let p = presets::hpc_node();
        let wf = montage(60, 5).unwrap();
        for policy in policies() {
            let mut fm = FailureModel::exponential(0.05);
            fm.permanent_prob = 0.3;
            fm.restart_overhead_secs = 0.002;
            let cfg = config_with(21, fm, policy.clone());
            match ResilientRunner::new(cfg).run(&p, &wf, &HeftScheduler::default()) {
                Ok(report) => {
                    let m = report.resilience().unwrap();
                    assert_eq!(report.schedule().placements().len(), wf.num_tasks());
                    if m.permanent_failures > 0 && policy.name() == "reschedule" {
                        assert!(m.reschedules > 0, "losses must trigger a replan");
                    }
                }
                // Losing every feasible device is a legal outcome.
                Err(EngineError::AllDevicesLost { .. }) => {}
                Err(e) => panic!("{}: unexpected error {e}", policy.name()),
            }
        }
    }

    #[test]
    fn replicate_k_counts_are_consistent() {
        let p = presets::hpc_node();
        let wf = cybershake(50, 6).unwrap();
        let cfg = config_with(
            9,
            FailureModel::exponential(0.05),
            RecoveryPolicy::ReplicateK {
                replicas: 3,
                max_retries: 10_000,
            },
        );
        let report = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let m = report.resilience().unwrap();
        assert_eq!(m.permanent_failures, 0);
        assert_eq!(
            m.replicas_launched,
            wf.num_tasks() as u32 + m.replicas_cancelled,
            "every launch either wins its task or is cancelled"
        );
        assert!(m.replicas_cancelled > 0, "replicas must actually race");
    }

    #[test]
    fn fault_free_baseline_matches_injection_disabled() {
        // With failure injection on but an astronomically large MTTF the
        // run must coincide with its own baseline.
        let p = presets::hpc_node();
        let wf = montage(40, 7).unwrap();
        let cfg = config_with(
            13,
            FailureModel::exponential(1e12),
            RecoveryPolicy::CheckpointRestart {
                interval_secs: 0.05,
                overhead_secs: 0.002,
                max_retries: 5,
            },
        );
        let report = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let m = report.resilience().unwrap();
        assert!(
            m.makespan_degradation.abs() < 1e-9,
            "{}",
            m.makespan_degradation
        );
        assert_eq!(m.wasted_work_secs, 0.0);
        assert_eq!(m.transient_failures, 0);
    }

    // ---- interconnect faults, correlated domains, lineage recovery ----

    use crate::resilience::{FailureDomain, LinkFaultModel};
    use helios_platform::{
        ComputeCost, DeviceBuilder, DeviceKind, InterconnectBuilder, KernelClass, Link,
        PlatformBuilder,
    };
    use helios_sched::SchedError;
    use helios_workflow::{Task, WorkflowBuilder};

    /// A scheduler that returns a pre-built plan, so tests control the
    /// exact placement and queue order the runner executes.
    struct FixedPlan(Schedule);

    impl Scheduler for FixedPlan {
        fn name(&self) -> &str {
            "fixed"
        }
        fn schedule(&self, _wf: &Workflow, _p: &Platform) -> Result<Schedule, SchedError> {
            Ok(self.0.clone())
        }
    }

    fn retry_policy() -> RecoveryPolicy {
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.0,
            factor: 1.0,
            cap_secs: 0.0,
            max_retries: 10_000,
        }
    }

    /// A rack-style domain striking devices `devices` and links `links`
    /// near t ≈ 0.14–0.22 s (Weibull scale 0.2, shape 60 is almost a
    /// delta function there), with the given event-kind mix.
    fn tight_domain(
        devices: &[&str],
        links: &[&str],
        degraded_prob: f64,
        permanent_prob: f64,
        outage_secs: f64,
    ) -> FailureDomain {
        FailureDomain {
            kind: "rack".into(),
            name: "r0".into(),
            devices: devices.iter().map(|s| s.to_string()).collect(),
            links: links.iter().map(|s| s.to_string()).collect(),
            mttf_secs: 0.2,
            weibull_shape: Some(60.0),
            degraded_prob,
            permanent_prob,
            outage_secs,
        }
    }

    /// Two 1 TFLOP/s CPUs joined by a single 10 GB/s link. Reduction
    /// kernels run at efficiency 0.8, so a task of `g` GFLOP takes
    /// `g / 800` seconds — exact, because `noise_cv` is zero in these
    /// tests.
    fn pair_platform(default_link: Option<(&str, f64)>) -> Platform {
        let mut b = PlatformBuilder::new("pair");
        let a = b.add_device(
            DeviceBuilder::new("a", DeviceKind::Cpu)
                .peak_gflops(1000.0)
                .build()
                .unwrap(),
        );
        let bb = b.add_device(
            DeviceBuilder::new("b", DeviceKind::Cpu)
                .peak_gflops(1000.0)
                .build()
                .unwrap(),
        );
        let mut ic = InterconnectBuilder::new();
        let wire = ic.add_link(Link::new("wire", 10.0, SimDuration::from_secs(5e-6)).unwrap());
        ic.route_symmetric(a, bb, vec![wire]);
        if let Some((name, gbs)) = default_link {
            let alt = ic.add_link(Link::new(name, gbs, SimDuration::from_secs(5e-6)).unwrap());
            ic.default_link(alt);
        }
        b.interconnect(ic.build());
        b.build().unwrap()
    }

    fn place(task: usize, dev: usize, start: f64, finish: f64) -> Placement {
        Placement {
            task: TaskId(task),
            device: DeviceId(dev),
            level: DvfsLevel(2),
            start: SimTime::from_secs(start),
            finish: SimTime::from_secs(finish),
        }
    }

    fn exact_config(seed: u64, res: ResilienceConfig) -> EngineConfig {
        EngineConfig {
            seed,
            noise_cv: 0.0,
            resilience: Some(res),
            ..Default::default()
        }
    }

    /// A producer-side chain on device `a` plus a long straggler on `b`:
    /// t0→t2 and t3→t4 cross the link, t5 has no consumers, t1 keeps
    /// `b` busy for a full second. Paired with its fixed plan.
    fn lineage_fixture() -> (Workflow, Schedule) {
        let mut w = WorkflowBuilder::new("lineage");
        let quick = ComputeCost::new(8.0, 0.0, KernelClass::Reduction); // 10 ms
        let slow = ComputeCost::new(800.0, 0.0, KernelClass::Reduction); // 1 s
        let t0 = w.add_task(Task::new("t0", "s", quick));
        let t1 = w.add_task(Task::new("t1", "s", slow));
        let t2 = w.add_task(Task::new("t2", "s", quick));
        let t3 = w.add_task(Task::new("t3", "s", quick));
        let t4 = w.add_task(Task::new("t4", "s", quick));
        let t5 = w.add_task(Task::new("t5", "s", quick));
        w.add_dep(t0, t2, 2e6).unwrap();
        w.add_dep(t3, t4, 3e6).unwrap();
        let _ = t1;
        let _ = t5;
        let wf = w.build().unwrap();
        let plan = Schedule::new(vec![
            place(0, 0, 0.00, 0.01),
            place(3, 0, 0.02, 0.03),
            place(5, 0, 0.04, 0.05),
            place(1, 1, 0.00, 1.00),
            place(2, 1, 1.05, 1.06),
            place(4, 1, 1.07, 1.08),
        ])
        .unwrap();
        (wf, plan)
    }

    #[test]
    fn permanent_domain_loss_rematerializes_only_lost_ancestors() {
        // Device `a` finishes t0, t3, t5 by t ≈ 0.03 s, then its PSU
        // domain kills it near t ≈ 0.17 s while t1 still holds `b`.
        // The products of t0 and t3 are lost before their consumers
        // staged them; lineage recovery must re-run exactly those two —
        // not t5, whose product nobody needs.
        let p = pair_platform(None);
        let (wf, plan) = lineage_fixture();
        let res = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
            .with_domains(vec![FailureDomain {
                kind: "psu".into(),
                devices: vec!["a".into()],
                links: vec![],
                ..tight_domain(&[], &[], 0.0, 1.0, 0.0)
            }]);
        let report = ResilientRunner::new(exact_config(9, res))
            .run(&p, &wf, &FixedPlan(plan))
            .unwrap();
        let m = report.resilience().unwrap();
        assert_eq!(m.domain_events, 1, "domain dies with its first strike");
        assert_eq!(m.permanent_failures, 1);
        assert_eq!(m.rematerialized_tasks, 2, "t0 and t3, not t5");
        assert!(
            (m.rematerialized_bytes - 5e6).abs() < 1.0,
            "re-staged bytes must equal the lost products' out-edges, got {}",
            m.rematerialized_bytes
        );
        assert!(m.wasted_work_secs > 0.0, "re-running t0/t3 is wasted work");
        assert!(m.makespan_degradation > 0.0);
        assert_eq!(report.schedule().placements().len(), wf.num_tasks());
    }

    #[test]
    fn severed_primary_route_reroutes_over_default_link() {
        // The rack strike permanently severs the fast primary link at
        // t ≈ 0.17 s; t1 stages its input at t = 1 s and must fall back
        // to the slower default link instead of stranding.
        let p = pair_platform(Some(("alt", 2.0)));
        let mut w = WorkflowBuilder::new("reroute");
        let t0 = w.add_task(Task::new(
            "t0",
            "s",
            ComputeCost::new(800.0, 0.0, KernelClass::Reduction),
        ));
        let t1 = w.add_task(Task::new(
            "t1",
            "s",
            ComputeCost::new(8.0, 0.0, KernelClass::Reduction),
        ));
        w.add_dep(t0, t1, 2e7).unwrap();
        let wf = w.build().unwrap();
        let plan = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 1, 1.0, 1.1)]).unwrap();
        let res = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
            .with_domains(vec![tight_domain(&[], &["wire"], 0.0, 1.0, 0.0)]);
        let report = ResilientRunner::new(exact_config(4, res))
            .run(&p, &wf, &FixedPlan(plan))
            .unwrap();
        let m = report.resilience().unwrap();
        assert_eq!(m.domain_events, 1);
        assert_eq!(m.permanent_failures, 0, "links died, devices did not");
        assert_eq!(m.reroutes, 1, "the one cross-link transfer reroutes");
        assert!(
            m.makespan_degradation > 0.0,
            "the 2 GB/s detour must cost time over the 10 GB/s primary, got {}",
            m.makespan_degradation
        );
        assert_eq!(report.schedule().placements().len(), wf.num_tasks());
    }

    #[test]
    fn link_outage_without_fallback_stalls_transfers() {
        // Same topology but no default link: a 1000 s outage starting
        // near t ≈ 0.17 s leaves the staging at t = 1 s nothing to
        // reroute over, so the transfer stalls until the link heals and
        // the stall is booked as partition downtime.
        let p = pair_platform(None);
        let mut w = WorkflowBuilder::new("stall");
        let t0 = w.add_task(Task::new(
            "t0",
            "s",
            ComputeCost::new(800.0, 0.0, KernelClass::Reduction),
        ));
        let t1 = w.add_task(Task::new(
            "t1",
            "s",
            ComputeCost::new(8.0, 0.0, KernelClass::Reduction),
        ));
        w.add_dep(t0, t1, 2e6).unwrap();
        let wf = w.build().unwrap();
        let plan = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 1, 1.0, 1.1)]).unwrap();
        let res = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
            .with_domains(vec![tight_domain(&[], &["wire"], 0.0, 0.0, 1000.0)]);
        let report = ResilientRunner::new(exact_config(4, res))
            .run(&p, &wf, &FixedPlan(plan))
            .unwrap();
        let m = report.resilience().unwrap();
        assert!(m.domain_events >= 1);
        assert_eq!(m.reroutes, 0, "nothing to reroute over");
        assert!(
            m.partition_downtime_secs > 100.0,
            "staging must wait out most of the outage, got {}",
            m.partition_downtime_secs
        );
        assert!(m.makespan_degradation > 100.0);
        assert_eq!(report.schedule().placements().len(), wf.num_tasks());
    }

    #[test]
    fn link_faults_cost_time_and_stay_deterministic() {
        let p = presets::hpc_node();
        let wf = montage(50, 2).unwrap();
        let res = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
            .with_link_faults(LinkFaultModel::exponential(0.05));
        let cfg = EngineConfig {
            seed: 17,
            noise_cv: 0.1,
            resilience: Some(res),
            ..Default::default()
        };
        let a = ResilientRunner::new(cfg.clone())
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let m = a.resilience().unwrap();
        assert!(m.link_faults > 0, "MTTF 0.05 s must actually fire");
        assert_eq!(m.transient_failures, 0, "devices were not touched");
        assert!(
            m.makespan_degradation >= -1e-9,
            "link faults must never speed the run up, got {}",
            m.makespan_degradation
        );
        assert_eq!(a.schedule().placements().len(), wf.num_tasks());
        let b = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        assert_eq!(a, b, "link-fault runs must be deterministic per seed");
    }

    #[test]
    fn correlated_domain_strikes_every_policy_survives() {
        let p = presets::hpc_node();
        let wf = montage(30, 3).unwrap();
        for policy in policies() {
            let res = ResilienceConfig::new(FailureModel::exponential(1e12), policy.clone())
                .with_domains(vec![FailureDomain {
                    kind: "rack".into(),
                    name: "gpu-rack".into(),
                    devices: vec!["gpu0".into(), "gpu1".into()],
                    links: vec!["nvlink".into()],
                    mttf_secs: 0.002,
                    weibull_shape: None,
                    degraded_prob: 0.3,
                    permanent_prob: 0.0,
                    outage_secs: 0.005,
                }]);
            let cfg = EngineConfig {
                seed: 23,
                noise_cv: 0.1,
                resilience: Some(res),
                ..Default::default()
            };
            let a = ResilientRunner::new(cfg.clone())
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", policy.name()));
            let m = a.resilience().unwrap();
            assert!(m.domain_events > 0, "{}: domain must strike", policy.name());
            assert!(
                m.makespan_degradation >= -1e-9,
                "{}: correlated faults must never speed the run up, got {}",
                policy.name(),
                m.makespan_degradation
            );
            assert_eq!(a.schedule().placements().len(), wf.num_tasks());
            let b = ResilientRunner::new(cfg)
                .run(&p, &wf, &HeftScheduler::default())
                .unwrap();
            assert_eq!(a, b, "{} must be deterministic", policy.name());
        }
    }

    #[test]
    fn unknown_domain_members_are_actionable_config_errors() {
        let p = presets::hpc_node();
        let wf = montage(20, 1).unwrap();
        let bad_dev = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
            .with_domains(vec![tight_domain(&["nope"], &[], 0.0, 0.0, 0.1)]);
        let err = ResilientRunner::new(exact_config(1, bad_dev))
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
        assert!(msg.contains("nope") && msg.contains("cpu0"), "{msg}");

        let bad_link = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
            .with_domains(vec![tight_domain(&[], &["nolink"], 0.0, 0.0, 0.1)]);
        let err = ResilientRunner::new(exact_config(1, bad_link))
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
        assert!(msg.contains("nolink") && msg.contains("nvlink"), "{msg}");
    }

    #[test]
    fn step_budget_watchdog_aborts_grinding_runs() {
        let p = presets::hpc_node();
        let wf = montage(40, 1).unwrap();
        let cfg = EngineConfig {
            seed: 3,
            step_budget: Some(10),
            resilience: Some(ResilienceConfig::new(
                FailureModel::exponential(0.05),
                retry_policy(),
            )),
            ..Default::default()
        };
        let err = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap_err();
        assert!(
            matches!(err, EngineError::StepBudgetExceeded { steps: 10, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("step budget"), "{err}");
    }
}
