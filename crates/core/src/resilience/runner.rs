//! The resilient plan executor: a discrete-event loop that executes a
//! static plan while devices fail (transiently, by degradation, or
//! permanently) and a [`RecoveryPolicy`] repairs the damage.
//!
//! This file holds the hook set over the execution core
//! ([`crate::exec`]): the replica/device/domain state, the dispatcher,
//! and the [`Hooks`](crate::exec) implementation that plugs them into
//! the shared step loop. The fault-injection handlers live in
//! [`faults`], the recovery machinery (device loss, lineage
//! re-materialization, reassignment, replanning) in [`recovery`], the
//! work/transfer modeling in [`staging`], and the elastic-capacity
//! handlers (join/drain/preempt/leave, spot churn) in [`elastic`]; all
//! are `impl` extensions of [`Sim`].
//!
//! # Determinism
//!
//! Every stochastic input comes from a dedicated forked stream of the
//! seed RNG: task `t` draws its noise multiplier from stream
//! `NOISE_STREAM_BASE + t`, device `d` draws its failure trace from
//! stream `FAILURE_TRACE_STREAM_BASE + d`, link `l` draws its fault
//! trace from stream `LINK_FAULT_STREAM_BASE + l`, and failure domain
//! `i` draws its correlated-event trace from stream
//! `DOMAIN_STREAM_BASE + i`, and device `d`'s elastic churn renewal
//! draws from `ELASTIC_STREAM_BASE + d` (timed elasticity events
//! consume no randomness at all). Nothing is sampled inside the event
//! loop in event order, so identical seeds give byte-identical reports
//! regardless of how the surrounding campaign is threaded or sharded.
//!
//! # Monotonicity
//!
//! A task's noise multiplier is drawn once and *replayed* on every
//! retry (the noise models input-dependent work, which re-running does
//! not change). Retries therefore repeat at least the lost work plus
//! overheads, so a fault-injected run can never finish earlier than the
//! fault-free run of the same configuration and seed — a property the
//! test battery pins down.

use helios_energy::account;
use helios_platform::{Availability, DeviceId, DvfsLevel, LinkAvailability, LinkId, Platform};
use helios_sched::{placement_feasible, scheduler_by_name, Placement, Schedule, Scheduler};
use helios_sim::failure::{FailureKind, FailureProcess, LinkFailureKind, LinkFailureProcess};
use helios_sim::{EventQueue, SimDuration, SimRng, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::exec::{
    choose_route, drive, noise_factor, slowdown_factor, BudgetPoint, DeliveredCache, Hooks,
    LinkState, RouteChoice, DOMAIN_STREAM_BASE, FAILURE_TRACE_STREAM_BASE, LINK_FAULT_STREAM_BASE,
};
use crate::report::{ExecutionReport, TransferStats};
use crate::resilience::{RecoveryPolicy, ResilienceConfig, ResilienceMetrics};

#[path = "elastic.rs"]
mod elastic;
#[path = "faults.rs"]
mod faults;
#[path = "recovery.rs"]
mod recovery;
#[path = "staging.rs"]
mod staging;

/// Executes static plans under a failure model and a recovery policy,
/// attaching [`ResilienceMetrics`] to the report.
///
/// The runner executes the configuration twice: once with failure
/// injection, once without (the *fault-free baseline*, same policy,
/// same seed, same plan), so the metrics isolate what the failures
/// themselves cost.
///
/// # Examples
///
/// ```
/// use helios_core::{EngineConfig, FailureModel, RecoveryPolicy, ResilienceConfig,
///                   ResilientRunner};
/// use helios_platform::presets;
/// use helios_sched::HeftScheduler;
/// use helios_workflow::generators::montage;
///
/// let platform = presets::hpc_node();
/// let wf = montage(40, 1).unwrap();
/// let config = EngineConfig {
///     seed: 7,
///     resilience: Some(ResilienceConfig::new(
///         FailureModel::exponential(0.5),
///         RecoveryPolicy::RetryBackoff {
///             base_secs: 0.01,
///             factor: 2.0,
///             cap_secs: 0.1,
///             max_retries: 100,
///         },
///     )),
///     ..Default::default()
/// };
/// let report = ResilientRunner::new(config)
///     .run(&platform, &wf, &HeftScheduler::default())
///     .unwrap();
/// let m = report.resilience().unwrap();
/// assert!(m.makespan_degradation >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ResilientRunner {
    config: EngineConfig,
}

impl ResilientRunner {
    /// Creates a runner; `config.resilience` must be set before
    /// [`ResilientRunner::run`].
    #[must_use]
    pub fn new(config: EngineConfig) -> ResilientRunner {
        ResilientRunner { config }
    }

    /// The runner's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Plans with `scheduler`, then executes the plan under failures.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution errors.
    pub fn run(
        &self,
        platform: &Platform,
        wf: &Workflow,
        scheduler: &dyn Scheduler,
    ) -> Result<ExecutionReport, EngineError> {
        let plan = scheduler.schedule(wf, platform)?;
        self.execute_plan(platform, wf, &plan)
    }

    /// Executes a precomputed plan under the configured failure model
    /// and recovery policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when `resilience` is unset or
    /// invalid (tracing is also unsupported here),
    /// [`EngineError::RetriesExhausted`] when a task runs out of both
    /// retries and live replicas, and [`EngineError::AllDevicesLost`]
    /// when permanent failures leave no feasible device.
    pub fn execute_plan(
        &self,
        platform: &Platform,
        wf: &Workflow,
        plan: &Schedule,
    ) -> Result<ExecutionReport, EngineError> {
        self.config.validate_for(platform)?;
        let res = self.config.resilience.as_ref().ok_or_else(|| {
            EngineError::Config("ResilientRunner requires EngineConfig::resilience".into())
        })?;
        res.validate()?;
        if self.config.tracing {
            return Err(EngineError::Config(
                "tracing is not supported by the ResilientRunner".into(),
            ));
        }

        let faulty = Sim::execute(&self.config, res, platform, wf, plan, true)?;
        let baseline = Sim::execute(&self.config, res, platform, wf, plan, false)?;

        let mk = faulty.schedule.makespan().as_secs();
        let base_mk = baseline.schedule.makespan().as_secs();
        let c = &faulty.counters;
        let metrics = ResilienceMetrics {
            policy: res.policy.name().to_owned(),
            fault_free_makespan_secs: base_mk,
            makespan_degradation: if base_mk > 0.0 {
                mk / base_mk - 1.0
            } else {
                0.0
            },
            wasted_work_secs: c.wasted,
            recovery_overhead_secs: c.recovery,
            transient_failures: c.transient,
            degraded_failures: c.degraded,
            permanent_failures: c.permanent,
            retries: c.retries,
            replicas_launched: c.launched,
            replicas_cancelled: c.cancelled,
            reschedules: c.reschedules,
            link_faults: c.link_faults,
            reroutes: c.reroutes,
            partition_downtime_secs: c.partition_downtime,
            rematerialized_tasks: c.remat_tasks,
            rematerialized_bytes: c.remat_bytes,
            domain_events: c.domain_events,
        };
        // Energy is accounted on the winning placements only; the device
        // time burnt by cancelled replicas shows up in wasted_work_secs,
        // not in joules (a documented approximation).
        let energy = account(&faulty.schedule, wf, platform, false)?;
        let failures = c.transient + c.degraded + c.permanent;
        let elasticity = faulty.elastic.as_ref().map(|e| e.metrics(&faulty.schedule));
        let mut report = ExecutionReport::new(
            faulty.schedule,
            energy,
            faulty.stats,
            failures,
            c.retries,
            None,
        )
        .with_resilience(metrics);
        if let Some(m) = elasticity {
            report = report.with_elasticity(m);
        }
        Ok(report)
    }
}

/// Lifecycle of one replica (one task copy bound to one device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    /// Waiting in its device queue.
    Queued,
    /// Attempt in flight (device held).
    Running,
    /// Aborted; waiting out restart overhead + backoff (device held).
    WaitingRestart,
    /// Finished first among its siblings.
    Done,
    /// A sibling finished first, or the task completed elsewhere.
    Cancelled,
    /// Retry budget exhausted.
    Failed,
    /// Its device failed permanently.
    Lost,
}

/// Progress bookkeeping for the replica's current attempt. Progress is
/// measured in *effective* seconds (device at full speed); degradation
/// stretches wall-clock without adding effective progress.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    /// High-water mark of progress accounting; starts at the attempt's
    /// execution start.
    last_update: SimTime,
    done_eff: SimDuration,
    total_eff: SimDuration,
    slowdown: f64,
}

impl Default for Attempt {
    fn default() -> Attempt {
        Attempt {
            last_update: SimTime::ZERO,
            done_eff: SimDuration::ZERO,
            total_eff: SimDuration::ZERO,
            slowdown: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Replica {
    task: TaskId,
    device: DeviceId,
    level: DvfsLevel,
    /// Queue ordering key: (plan start, task id, replica ordinal).
    /// Plan starts respect precedence, so per-device queues sorted by
    /// this key can never deadlock across devices.
    sort_key: (SimTime, usize, usize),
    state: RState,
    /// Stale-event guard: bumped on every state transition, checked by
    /// Finish/Resume handlers.
    gen: u32,
    retries: u32,
    launched: bool,
    /// When the device first picked this replica up (realized start).
    occupied_from: SimTime,
    /// Base work left, effective seconds (excludes checkpoint writes).
    remaining_work: SimDuration,
    /// Earliest instant an attempt may begin (restart/replan overhead).
    floor: SimTime,
    attempt: Attempt,
}

#[derive(Debug)]
struct Dev {
    /// Replica indices in `sort_key` order; `queue[pos]` is the entry
    /// being run (when `running` is set) or considered next.
    queue: Vec<usize>,
    pos: usize,
    running: Option<usize>,
    /// Stale-repair guard: a newer degradation supersedes older repairs.
    repair_seq: u32,
    rng: SimRng,
    /// Failure mode pre-drawn for the next Fault event on this device.
    pending_kind: Option<FailureKind>,
}

/// Per-link fault-injection state. Allocated for every link so domain
/// outages can share the repair-sequence guard; the RNG stream is only
/// drawn from when a [`LinkFaultModel`](crate::LinkFaultModel) is
/// configured.
#[derive(Debug)]
struct LinkRt {
    rng: SimRng,
    /// Fault mode pre-drawn for the next LinkFault event on this link.
    pending: Option<LinkFailureKind>,
    /// Stale-repair guard: a newer outage/degradation supersedes older
    /// repairs (domain outages bump it too).
    repair_seq: u32,
}

/// Runtime state of one correlated failure domain: resolved member ids
/// plus its own RNG stream and event process.
#[derive(Debug)]
struct DomainRt {
    device_ids: Vec<usize>,
    link_ids: Vec<LinkId>,
    rng: SimRng,
    pending: Option<FailureKind>,
    process: FailureProcess,
    /// Member-link downtime under non-permanent events.
    outage: SimDuration,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Finish { replica: usize, gen: u32 },
    Resume { replica: usize, gen: u32 },
    Fault { device: usize },
    Repair { device: usize, seq: u32 },
    LinkFault { link: usize },
    LinkRepair { link: usize, seq: u32 },
    DomainFault { domain: usize },
    ElasticTimed { event: usize },
    ElasticChurn { device: usize, seq: u32 },
    ElasticDeadline { device: usize, seq: u32 },
}

#[derive(Debug, Default)]
struct Counters {
    transient: u32,
    degraded: u32,
    permanent: u32,
    retries: u32,
    launched: u32,
    cancelled: u32,
    reschedules: u32,
    link_faults: u32,
    reroutes: u32,
    remat_tasks: u32,
    domain_events: u32,
    /// Output bytes destroyed with their devices and re-produced.
    remat_bytes: f64,
    /// Seconds transfers stalled waiting for downed links to heal.
    partition_downtime: f64,
    /// Effective device-seconds that contributed nothing.
    wasted: f64,
    /// Restart overheads + backoff delays + replan overheads, seconds.
    recovery: f64,
}

struct Outcome {
    schedule: Schedule,
    stats: TransferStats,
    counters: Counters,
    elastic: Option<elastic::ElasticOutcome>,
}

struct Sim<'a> {
    cfg: &'a EngineConfig,
    res: &'a ResilienceConfig,
    platform: &'a Platform,
    wf: &'a Workflow,
    noise: Vec<f64>,
    replicas: Vec<Replica>,
    task_replicas: Vec<Vec<usize>>,
    devs: Vec<Dev>,
    avail: Availability,
    /// Unfinished incoming edges per task.
    preds_left: Vec<usize>,
    finished_at: Vec<Option<SimTime>>,
    winner_dev: Vec<Option<DeviceId>>,
    realized: Vec<Option<Placement>>,
    /// Original plan start per task, reused to key reassigned replicas.
    plan_key: Vec<SimTime>,
    completed: usize,
    counters: Counters,
    links: LinkState,
    stats: TransferStats,
    /// Data-product residency per destination device, when caching.
    delivered: DeliveredCache,
    queue: EventQueue<Ev>,
    process: FailureProcess,
    /// Link health, consulted when a transfer is staged. Running
    /// transfers are not re-projected by later link faults (a documented
    /// approximation; device faults dominate attempt lifetimes).
    links_avail: LinkAvailability,
    link_rt: Vec<LinkRt>,
    link_proc: Option<LinkFailureProcess>,
    domains_rt: Vec<DomainRt>,
    /// Whether link health can change: route-aware staging is used by
    /// both the faulty run and the baseline iff this is set, so the two
    /// runs are numerically comparable.
    link_health_active: bool,
    /// Set when recovery queues new replicas mid-dispatch, forcing
    /// another dispatch pass over all devices.
    dispatch_dirty: bool,
    /// Elastic-capacity runtime, when the config has an elasticity
    /// block (both passes: capacity is reality, not fault injection).
    elastic: Option<elastic::ElasticRt>,
}

impl<'a> Sim<'a> {
    fn execute(
        cfg: &'a EngineConfig,
        res: &'a ResilienceConfig,
        platform: &'a Platform,
        wf: &'a Workflow,
        plan: &Schedule,
        inject: bool,
    ) -> Result<Outcome, EngineError> {
        let n = wf.num_tasks();
        let nd = platform.num_devices();
        let nl = platform.interconnect().links().len();
        let base_rng = SimRng::seed_from(cfg.seed);

        // Resolve failure-domain members against this platform up front,
        // so a bad name fails the cell with an actionable error instead
        // of silently injecting nothing.
        let mut domains_rt: Vec<DomainRt> = Vec::with_capacity(res.domains.len());
        for (i, dom) in res.domains.iter().enumerate() {
            let mut device_ids = Vec::with_capacity(dom.devices.len());
            for name in &dom.devices {
                let dev = platform.device_by_name(name).ok_or_else(|| {
                    EngineError::Config(format!(
                        "failure domain {:?}: unknown device {:?}; platform devices: {}",
                        dom.name,
                        name,
                        platform
                            .devices()
                            .iter()
                            .map(|d| d.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
                device_ids.push(dev.id().0);
            }
            let mut link_ids = Vec::new();
            for name in &dom.links {
                let matches = platform.interconnect().links_by_name(name);
                if matches.is_empty() {
                    let mut known: Vec<&str> = platform
                        .interconnect()
                        .links()
                        .iter()
                        .map(|l| l.name())
                        .collect();
                    known.dedup();
                    return Err(EngineError::Config(format!(
                        "failure domain {:?}: unknown link {:?}; platform links: {}",
                        dom.name,
                        name,
                        known.join(", ")
                    )));
                }
                link_ids.extend(matches);
            }
            link_ids.sort_unstable();
            link_ids.dedup();
            domains_rt.push(DomainRt {
                device_ids,
                link_ids,
                rng: base_rng.fork(DOMAIN_STREAM_BASE + i as u64),
                pending: None,
                process: dom.process()?,
                outage: SimDuration::from_secs(dom.outage_secs),
            });
        }

        let link_health_active =
            res.link_faults.is_some() || res.domains.iter().any(|d| !d.links.is_empty());
        let link_proc = res.link_faults.as_ref().map(|m| m.process()).transpose()?;

        // Task-intrinsic noise: drawn once per task from its own stream
        // and replayed on every retry and replica.
        let noise: Vec<f64> = (0..n)
            .map(|t| noise_factor(cfg.noise_cv, &base_rng, t))
            .collect();

        let mut plan_dev = vec![DeviceId(0); n];
        let mut plan_level = vec![DvfsLevel(0); n];
        let mut plan_key = vec![SimTime::ZERO; n];
        for p in plan.placements() {
            plan_dev[p.task.0] = p.device;
            plan_level[p.task.0] = p.level;
            plan_key[p.task.0] = p.start;
        }

        let mut sim = Sim {
            cfg,
            res,
            platform,
            wf,
            noise,
            replicas: Vec::new(),
            task_replicas: vec![Vec::new(); n],
            devs: Vec::new(),
            avail: Availability::new(nd),
            preds_left: (0..n).map(|t| wf.predecessors(TaskId(t)).len()).collect(),
            finished_at: vec![None; n],
            winner_dev: vec![None; n],
            realized: vec![None; n],
            plan_key,
            completed: 0,
            counters: Counters::default(),
            links: LinkState::new(platform),
            stats: TransferStats::default(),
            delivered: DeliveredCache::new(cfg.data_caching, n, nd),
            queue: EventQueue::new(),
            process: res.failures.process()?,
            links_avail: LinkAvailability::new(nl),
            link_rt: (0..nl)
                .map(|l| LinkRt {
                    rng: base_rng.fork(LINK_FAULT_STREAM_BASE + l as u64),
                    pending: None,
                    repair_seq: 0,
                })
                .collect(),
            link_proc,
            domains_rt,
            link_health_active,
            dispatch_dirty: false,
            elastic: None,
        };
        sim.init_elastic(&base_rng)?;

        // Build replicas: the planned placement, plus k-1 copies on the
        // fastest other feasible devices under ReplicateK.
        let k = match res.policy {
            RecoveryPolicy::ReplicateK { replicas, .. } => replicas,
            _ => 1,
        };
        for t in 0..n {
            let task = TaskId(t);
            let primary = plan_dev[t];
            let ri = sim.replicas.len();
            let remaining = sim.work_on(task, primary, plan_level[t])?;
            sim.replicas.push(Replica {
                task,
                device: primary,
                level: plan_level[t],
                sort_key: (sim.plan_key[t], t, 0),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor: SimTime::ZERO,
                attempt: Attempt::default(),
            });
            sim.task_replicas[t].push(ri);
            if k > 1 {
                // Fastest feasible alternates first; ties break on id.
                let mut cands: Vec<(f64, usize)> = Vec::new();
                for d in 0..nd {
                    if d == primary.0 || !sim.device_live(d) {
                        continue;
                    }
                    let device = platform.device(DeviceId(d))?;
                    if !placement_feasible(device, wf.task(task)?) {
                        continue;
                    }
                    let secs = device
                        .execution_time(wf.task(task)?.cost(), device.nominal_level())?
                        .as_secs();
                    cands.push((secs, d));
                }
                cands.sort_by(|a, b| a.partial_cmp(b).expect("finite exec times"));
                for (ordinal, &(_, d)) in cands.iter().take(k - 1).enumerate() {
                    let device = DeviceId(d);
                    let level = platform.device(device)?.nominal_level();
                    let ri = sim.replicas.len();
                    let remaining = sim.work_on(task, device, level)?;
                    sim.replicas.push(Replica {
                        task,
                        device,
                        level,
                        sort_key: (sim.plan_key[t], t, ordinal + 1),
                        state: RState::Queued,
                        gen: 0,
                        retries: 0,
                        launched: false,
                        occupied_from: SimTime::ZERO,
                        remaining_work: remaining,
                        floor: SimTime::ZERO,
                        attempt: Attempt::default(),
                    });
                    sim.task_replicas[t].push(ri);
                }
            }
        }

        for d in 0..nd {
            let mut queue: Vec<usize> = (0..sim.replicas.len())
                .filter(|&ri| sim.replicas[ri].device.0 == d)
                .collect();
            queue.sort_by_key(|&ri| sim.replicas[ri].sort_key);
            sim.devs.push(Dev {
                queue,
                pos: 0,
                running: None,
                repair_seq: 0,
                rng: base_rng.fork(FAILURE_TRACE_STREAM_BASE + d as u64),
                pending_kind: None,
            });
        }

        if inject {
            for d in 0..nd {
                sim.schedule_next_fault(d, SimTime::ZERO);
            }
            if sim.link_proc.is_some() {
                for l in 0..nl {
                    sim.schedule_next_link_fault(l, SimTime::ZERO);
                }
            }
            for i in 0..sim.domains_rt.len() {
                sim.schedule_next_domain_fault(i, SimTime::ZERO);
            }
        }

        sim.dispatch_all(SimTime::ZERO)?;
        drive(&mut sim)?;

        let placements: Vec<Placement> = std::mem::take(&mut sim.realized)
            .into_iter()
            .map(|p| p.expect("all tasks completed"))
            .collect();
        let schedule = Schedule::new(placements)?;
        let elastic = sim.elastic_outcome(schedule.makespan());
        Ok(Outcome {
            schedule,
            stats: sim.stats,
            counters: sim.counters,
            elastic,
        })
    }

    /// Scans every device (in id order) and starts the next eligible
    /// queued replica on each idle one. Repeats the scan whenever a
    /// stranded start re-queued work (possibly on an already-visited
    /// device); each repeat requires fresh queued replicas, so the loop
    /// terminates.
    fn dispatch_all(&mut self, now: SimTime) -> Result<(), EngineError> {
        loop {
            self.dispatch_dirty = false;
            for d in 0..self.devs.len() {
                if !self.dispatchable(d) {
                    continue;
                }
                loop {
                    if self.devs[d].running.is_some() {
                        break;
                    }
                    let pos = self.devs[d].pos;
                    if pos >= self.devs[d].queue.len() {
                        break;
                    }
                    let ri = self.devs[d].queue[pos];
                    match self.replicas[ri].state {
                        RState::Done | RState::Cancelled | RState::Failed | RState::Lost => {
                            self.devs[d].pos += 1;
                        }
                        // A held entry without `running` set cannot happen;
                        // leave it to the Resume event rather than panic.
                        RState::Running | RState::WaitingRestart => break,
                        RState::Queued => {
                            let t = self.replicas[ri].task;
                            if self.finished_at[t.0].is_some() {
                                // Sibling already won; drop silently.
                                self.replicas[ri].state = RState::Cancelled;
                                self.replicas[ri].gen += 1;
                                self.devs[d].pos += 1;
                                continue;
                            }
                            if self.preds_left[t.0] > 0 {
                                // Head-of-line blocking preserves plan order.
                                break;
                            }
                            self.devs[d].running = Some(ri);
                            self.start_attempt(ri, now)?;
                            // A stranded start released the device again;
                            // keep scanning its queue.
                            if self.devs[d].running.is_some() {
                                break;
                            }
                        }
                    }
                }
            }
            if !self.dispatch_dirty {
                return Ok(());
            }
        }
    }

    /// Starts (or restarts) the attempt for `ri`: stages its inputs,
    /// computes the effective duration and schedules the Finish event.
    ///
    /// When every route from a producer to this device is permanently
    /// severed the replica can never start here: it is marked Lost, the
    /// device is released, and (if no sibling survives) the task is
    /// reassigned to a reachable device.
    fn start_attempt(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        let task = self.replicas[ri].task;
        let device = self.replicas[ri].device;
        let wf = self.wf;
        // Input staging, anchored at each producer's finish instant —
        // equivalent to launching the transfer when the producer
        // finished. Restarts re-pull uncached inputs (the attempt
        // re-reads its data), which recounts those transfers.
        let mut data_at = SimTime::ZERO;
        for &e in wf.predecessors(task) {
            let edge = wf.edge(e);
            let src = edge.src;
            let src_dev = self.winner_dev[src.0].expect("predecessor finished");
            let ready = self.finished_at[src.0].expect("predecessor finished");
            if let Some(at) = self.delivered.lookup(src, device) {
                data_at = data_at.max(at);
                continue;
            }
            let Some(arrival) = self.staged_arrival(src_dev, device, edge.bytes, ready)? else {
                return self.strand_replica(ri, now);
            };
            self.delivered.record(src, device, arrival);
            data_at = data_at.max(arrival);
        }

        let total_eff = self.attempt_effective(self.replicas[ri].remaining_work);
        let slowdown = self.avail.slowdown(device);
        let r = &mut self.replicas[ri];
        if !r.launched {
            r.launched = true;
            r.occupied_from = now;
            self.counters.launched += 1;
        }
        let exec_start = now.max(data_at).max(r.floor);
        r.state = RState::Running;
        r.gen += 1;
        r.attempt = Attempt {
            last_update: exec_start,
            done_eff: SimDuration::ZERO,
            total_eff,
            slowdown,
        };
        let gen = r.gen;
        self.queue.push(
            exec_start + total_eff * slowdown,
            Ev::Finish { replica: ri, gen },
        );
        Ok(())
    }

    /// Folds wall-clock progress since the last update into effective
    /// progress at the attempt's current slowdown.
    fn update_progress(&mut self, ri: usize, now: SimTime) {
        let a = &mut self.replicas[ri].attempt;
        let elapsed = now.saturating_since(a.last_update);
        let gained = elapsed / a.slowdown;
        a.done_eff = (a.done_eff + gained).min(a.total_eff);
        a.last_update = a.last_update.max(now);
    }

    /// Whether `task` still has a replica that can finish.
    fn task_has_live_replica(&self, task: TaskId) -> bool {
        self.task_replicas[task.0].iter().any(|&ri| {
            !matches!(
                self.replicas[ri].state,
                RState::Failed | RState::Cancelled | RState::Lost
            )
        })
    }

    /// Cancels a losing replica exactly once (guarded by its state).
    fn cancel_replica(&mut self, ri: usize, now: SimTime) {
        match self.replicas[ri].state {
            RState::Queued => {
                // Never launched: nothing executed, nothing to count.
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
            }
            RState::Running => {
                self.update_progress(ri, now);
                self.counters.wasted += self.replicas[ri].attempt.done_eff.as_secs();
                self.counters.cancelled += 1;
                let d = self.replicas[ri].device.0;
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
                self.devs[d].running = None;
                self.devs[d].pos += 1;
            }
            RState::WaitingRestart => {
                self.counters.cancelled += 1;
                let d = self.replicas[ri].device.0;
                self.replicas[ri].state = RState::Cancelled;
                self.replicas[ri].gen += 1;
                self.devs[d].running = None;
                self.devs[d].pos += 1;
            }
            RState::Done | RState::Cancelled | RState::Failed | RState::Lost => {}
        }
    }

    fn handle_finish(&mut self, ri: usize, gen: u32, now: SimTime) -> Result<(), EngineError> {
        if self.replicas[ri].gen != gen || self.replicas[ri].state != RState::Running {
            return Ok(()); // Stale: aborted, cancelled or reprojected.
        }
        let task = self.replicas[ri].task;
        let device = self.replicas[ri].device;
        {
            let r = &mut self.replicas[ri];
            r.state = RState::Done;
            r.gen += 1;
        }
        self.finished_at[task.0] = Some(now);
        self.winner_dev[task.0] = Some(device);
        self.realized[task.0] = Some(Placement {
            task,
            device,
            level: self.replicas[ri].level,
            start: self.replicas[ri].occupied_from,
            finish: now,
        });
        self.completed += 1;
        self.devs[device.0].running = None;
        self.devs[device.0].pos += 1;
        // First finisher wins: cancel every sibling. Taken, not cloned:
        // `cancel_replica` never touches `task_replicas`.
        let siblings = std::mem::take(&mut self.task_replicas[task.0]);
        for &si in &siblings {
            if si != ri {
                self.cancel_replica(si, now);
            }
        }
        self.task_replicas[task.0] = siblings;
        let wf = self.wf;
        for &e in wf.successors(task) {
            let dst = wf.edge(e).dst.0;
            // A consumer that finished before lineage recovery un-did
            // this producer is not waiting on the re-run.
            if self.finished_at[dst].is_none() {
                self.preds_left[dst] -= 1;
            }
        }
        Ok(())
    }

    fn handle_resume(&mut self, ri: usize, gen: u32, now: SimTime) -> Result<(), EngineError> {
        if self.replicas[ri].gen != gen || self.replicas[ri].state != RState::WaitingRestart {
            return Ok(()); // Stale: cancelled or lost while waiting.
        }
        let t = self.replicas[ri].task;
        if self.preds_left[t.0] > 0 {
            // Lineage recovery un-finished an input while this replica
            // waited out its restart: back to Queued (still at the head
            // of its device queue), release the device, and let dispatch
            // restart it once the producers re-finish.
            let r = &mut self.replicas[ri];
            r.state = RState::Queued;
            r.gen += 1;
            let d = r.device.0;
            self.devs[d].running = None;
            return Ok(());
        }
        self.start_attempt(ri, now)
    }
}

/// The resilient hook set: completion-exit semantics (fault processes
/// generate events forever, so the queue never drains), the step budget
/// charged *before* the pop, and a full dispatcher pass after every
/// event.
impl Hooks for Sim<'_> {
    type Event = Ev;

    fn budget(&self) -> Option<u64> {
        self.cfg.step_budget
    }

    fn budget_point(&self) -> BudgetPoint {
        BudgetPoint::BeforePop
    }

    fn completed(&self) -> usize {
        self.completed
    }

    fn total(&self) -> usize {
        self.wf.num_tasks()
    }

    fn exit_on_complete(&self) -> bool {
        true
    }

    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.queue.pop()
    }

    fn handle(&mut self, now: SimTime, ev: Ev) -> Result<(), EngineError> {
        match ev {
            Ev::Finish { replica, gen } => self.handle_finish(replica, gen, now),
            Ev::Resume { replica, gen } => self.handle_resume(replica, gen, now),
            Ev::Fault { device } => self.handle_fault(device, now),
            Ev::Repair { device, seq } => {
                self.handle_repair(device, seq, now);
                Ok(())
            }
            Ev::LinkFault { link } => {
                self.handle_link_fault(link, now);
                Ok(())
            }
            Ev::LinkRepair { link, seq } => {
                self.handle_link_repair(link, seq);
                Ok(())
            }
            Ev::DomainFault { domain } => self.handle_domain_fault(domain, now),
            Ev::ElasticTimed { event } => self.handle_elastic_timed(event, now),
            Ev::ElasticChurn { device, seq } => self.handle_elastic_churn(device, seq, now),
            Ev::ElasticDeadline { device, seq } => self.handle_elastic_deadline(device, seq, now),
        }
    }

    fn after_event(&mut self, now: SimTime) -> Result<(), EngineError> {
        self.dispatch_all(now)
    }
}

#[cfg(test)]
#[path = "runner_tests.rs"]
mod tests;
