//! Failure-domain model and pluggable recovery policies.
//!
//! Long-running scientific workflows on heterogeneous platforms live or
//! die by how they absorb failures. This module models the *failure
//! domain* — per-device failure processes producing timed transient,
//! degraded and permanent failures (built on
//! [`helios_sim::failure`]) — and the *recovery domain* — what the
//! runtime does about them:
//!
//! * [`RecoveryPolicy::RetryBackoff`] — re-run the aborted attempt after
//!   a capped exponential backoff (the flat retry of
//!   [`FaultConfig`](crate::FaultConfig) is the `base_secs = 0` special
//!   case),
//! * [`RecoveryPolicy::ReplicateK`] — run `k` copies of every task on
//!   distinct devices; the first finisher wins and the rest are
//!   cancelled,
//! * [`RecoveryPolicy::CheckpointRestart`] — snapshot progress
//!   periodically and restart failed attempts from the last snapshot,
//! * [`RecoveryPolicy::Reschedule`] — on a permanent device loss,
//!   re-invoke a scheduler on the surviving platform for the unfinished
//!   subgraph.
//!
//! The [`ResilientRunner`] executes a static plan under a
//! [`ResilienceConfig`], runs the identical configuration with failure
//! injection disabled to obtain the fault-free baseline, and attaches
//! [`ResilienceMetrics`] (wasted work, recovery overhead, makespan
//! degradation) to the report. Determinism is preserved: every device's
//! failure trace and every task's noise multiplier come from dedicated
//! forked RNG streams, so identical seeds give byte-identical reports no
//! matter how the surrounding campaign is sharded or threaded.

mod runner;

pub use runner::ResilientRunner;

use serde::{Deserialize, Serialize};

use crate::error::EngineError;
use helios_sim::failure::{FailureDistribution, FailureProcess};

/// Per-device failure process parameters plus the repair model.
///
/// All devices share one process description; the *realizations* differ
/// because each device samples its own forked RNG stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureModel {
    /// Mean time to failure (exponential) or characteristic life
    /// (Weibull), in seconds.
    pub mttf_secs: f64,
    /// Weibull shape parameter; `None` selects the exponential
    /// distribution.
    pub weibull_shape: Option<f64>,
    /// Probability that a failure degrades the device instead of only
    /// aborting the running attempt.
    pub degraded_prob: f64,
    /// Probability that a failure removes the device permanently.
    pub permanent_prob: f64,
    /// Execution-time multiplier while degraded (≥ 1, so degradation can
    /// only slow work down).
    pub degraded_slowdown: f64,
    /// Time until a degraded device is repaired to full speed, seconds.
    pub degraded_repair_secs: f64,
    /// Fixed overhead paid before every retry attempt, seconds.
    pub restart_overhead_secs: f64,
}

impl FailureModel {
    /// A transient-only exponential failure model — the classical
    /// Poisson fault process.
    #[must_use]
    pub fn exponential(mttf_secs: f64) -> FailureModel {
        FailureModel {
            mttf_secs,
            weibull_shape: None,
            degraded_prob: 0.0,
            permanent_prob: 0.0,
            degraded_slowdown: 2.0,
            degraded_repair_secs: 1.0,
            restart_overhead_secs: 0.0,
        }
    }

    /// A transient-only Weibull failure model with the given
    /// characteristic life and shape.
    #[must_use]
    pub fn weibull(scale_secs: f64, shape: f64) -> FailureModel {
        FailureModel {
            weibull_shape: Some(shape),
            ..FailureModel::exponential(scale_secs)
        }
    }

    /// The inter-failure distribution this model describes.
    #[must_use]
    pub fn distribution(&self) -> FailureDistribution {
        match self.weibull_shape {
            None => FailureDistribution::Exponential {
                mttf_secs: self.mttf_secs,
            },
            Some(shape) => FailureDistribution::Weibull {
                scale_secs: self.mttf_secs,
                shape,
            },
        }
    }

    /// Builds the validated [`FailureProcess`] for one device.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] describing the offending
    /// parameter.
    pub fn process(&self) -> Result<FailureProcess, EngineError> {
        FailureProcess::new(self.distribution(), self.degraded_prob, self.permanent_prob)
            .map_err(|e| EngineError::Config(format!("failure model: {e}")))
    }

    fn validate(&self) -> Result<(), EngineError> {
        self.process()?;
        if !(self.degraded_slowdown.is_finite() && self.degraded_slowdown >= 1.0) {
            return Err(EngineError::Config(format!(
                "degraded_slowdown must be >= 1 (degradation cannot speed a device up), got {}",
                self.degraded_slowdown
            )));
        }
        for (name, v) in [
            ("degraded_repair_secs", self.degraded_repair_secs),
            ("restart_overhead_secs", self.restart_overhead_secs),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(EngineError::Config(format!(
                    "{name} must be non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// What the runtime does when an attempt or a device fails.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryPolicy {
    /// Re-run the aborted attempt after a capped exponential backoff:
    /// retry `r` (1-based) waits `min(base · factor^(r-1), cap)` seconds
    /// on top of the model's restart overhead.
    RetryBackoff {
        /// Backoff before the first retry, seconds (0 = flat retry).
        base_secs: f64,
        /// Multiplicative growth per retry (≥ 1).
        factor: f64,
        /// Upper bound on any single backoff, seconds.
        cap_secs: f64,
        /// Retry budget per task; exceeding it aborts the run.
        max_retries: u32,
    },
    /// Run `replicas` copies of every task on distinct devices; the
    /// first finisher wins and the remaining copies are cancelled.
    ReplicateK {
        /// Total copies per task, including the primary (≥ 2). Clamped
        /// to the number of feasible devices.
        replicas: usize,
        /// Per-replica retry budget for transient failures.
        max_retries: u32,
    },
    /// Snapshot progress every `interval_secs` of execution at
    /// `overhead_secs` per snapshot; a retry resumes from the last
    /// snapshot instead of from scratch. Snapshots are device-local, so
    /// a permanent device loss still restarts the task from zero
    /// elsewhere.
    CheckpointRestart {
        /// Execution time between snapshots, seconds.
        interval_secs: f64,
        /// Cost of writing one snapshot, seconds.
        overhead_secs: f64,
        /// Retry budget per task.
        max_retries: u32,
    },
    /// On a permanent device loss, re-plan the whole workflow on the
    /// surviving platform with the named scheduler; unfinished tasks
    /// adopt the new placements (running tasks keep running where they
    /// are). Transient failures retry in place.
    Reschedule {
        /// Scheduler name resolved via
        /// [`helios_sched::scheduler_by_name`].
        scheduler: String,
        /// Re-planning overhead charged before reassigned work may
        /// start, seconds.
        overhead_secs: f64,
        /// Retry budget per task for transient failures.
        max_retries: u32,
    },
}

impl RecoveryPolicy {
    /// Stable kebab-case policy name used in specs, reports and error
    /// messages.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::RetryBackoff { .. } => "retry-backoff",
            RecoveryPolicy::ReplicateK { .. } => "replicate-k",
            RecoveryPolicy::CheckpointRestart { .. } => "checkpoint-restart",
            RecoveryPolicy::Reschedule { .. } => "reschedule",
        }
    }

    /// Every legal policy name, for error messages.
    #[must_use]
    pub fn names() -> &'static [&'static str] {
        &[
            "retry-backoff",
            "replicate-k",
            "checkpoint-restart",
            "reschedule",
        ]
    }

    /// The per-task (per-replica for [`RecoveryPolicy::ReplicateK`])
    /// transient retry budget.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        match *self {
            RecoveryPolicy::RetryBackoff { max_retries, .. }
            | RecoveryPolicy::ReplicateK { max_retries, .. }
            | RecoveryPolicy::CheckpointRestart { max_retries, .. }
            | RecoveryPolicy::Reschedule { max_retries, .. } => max_retries,
        }
    }

    /// Backoff delay before retry `retry` (1-based), seconds.
    #[must_use]
    pub fn backoff_delay_secs(&self, retry: u32) -> f64 {
        match *self {
            RecoveryPolicy::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                ..
            } => crate::config::backoff_delay_secs(base_secs, factor, cap_secs, retry),
            _ => 0.0,
        }
    }

    fn validate(&self) -> Result<(), EngineError> {
        let fail = |msg: String| {
            Err(EngineError::Config(format!(
                "policy {:?}: {msg}",
                self.name()
            )))
        };
        match *self {
            RecoveryPolicy::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                ..
            } => {
                if !(base_secs.is_finite() && base_secs >= 0.0) {
                    return fail(format!("base_secs must be non-negative, got {base_secs}"));
                }
                if !(factor.is_finite() && factor >= 1.0) {
                    return fail(format!("factor must be >= 1, got {factor}"));
                }
                if !(cap_secs.is_finite() && cap_secs >= base_secs) {
                    return fail(format!(
                        "cap_secs must be finite and >= base_secs, got {cap_secs}"
                    ));
                }
            }
            RecoveryPolicy::ReplicateK { replicas, .. } => {
                if replicas < 2 {
                    return fail(format!(
                        "replicas must be >= 2 (1 copy is no replication), got {replicas}"
                    ));
                }
            }
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                if !(interval_secs.is_finite() && interval_secs > 0.0) {
                    return fail(format!(
                        "interval_secs must be positive, got {interval_secs}"
                    ));
                }
                if !(overhead_secs.is_finite() && overhead_secs >= 0.0) {
                    return fail(format!(
                        "overhead_secs must be non-negative, got {overhead_secs}"
                    ));
                }
            }
            RecoveryPolicy::Reschedule {
                ref scheduler,
                overhead_secs,
                ..
            } => {
                if helios_sched::scheduler_by_name(scheduler).is_none() {
                    let legal: Vec<String> = helios_sched::all_schedulers()
                        .iter()
                        .map(|s| s.name().to_owned())
                        .collect();
                    return fail(format!(
                        "unknown scheduler {scheduler:?}; legal values: {}",
                        legal.join(", ")
                    ));
                }
                if !(overhead_secs.is_finite() && overhead_secs >= 0.0) {
                    return fail(format!(
                        "overhead_secs must be non-negative, got {overhead_secs}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Complete resilience configuration: one failure model plus one
/// recovery policy, attached to
/// [`EngineConfig::resilience`](crate::EngineConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// The per-device failure process and repair parameters.
    pub failures: FailureModel,
    /// What the runtime does about failures.
    pub policy: RecoveryPolicy,
}

impl ResilienceConfig {
    /// Creates a resilience configuration.
    #[must_use]
    pub fn new(failures: FailureModel, policy: RecoveryPolicy) -> ResilienceConfig {
        ResilienceConfig { failures, policy }
    }

    /// Validates every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), EngineError> {
        self.failures.validate()?;
        self.policy.validate()
    }
}

/// Resilience outcome metrics attached to an
/// [`ExecutionReport`](crate::ExecutionReport) by the
/// [`ResilientRunner`].
///
/// The fault-free baseline is the *same* configuration (same policy,
/// same seed, same plan) with failure injection disabled — so
/// replication and checkpoint overheads are part of the baseline and
/// `makespan_degradation` isolates what the failures themselves cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceMetrics {
    /// The recovery policy name ("retry-backoff", "replicate-k", …).
    pub policy: String,
    /// Makespan of the fault-free run of the same configuration,
    /// seconds.
    pub fault_free_makespan_secs: f64,
    /// `makespan / fault_free_makespan - 1`: the fractional makespan
    /// cost of the injected failures.
    pub makespan_degradation: f64,
    /// Executed device-seconds that did not contribute to completion:
    /// aborted attempt progress (minus checkpoint-preserved work) plus
    /// cancelled-replica progress.
    pub wasted_work_secs: f64,
    /// Restart overheads, backoff delays and re-planning overheads,
    /// seconds.
    pub recovery_overhead_secs: f64,
    /// Transient failures that aborted a running attempt.
    pub transient_failures: u32,
    /// Degradation events (device slowed until repair).
    pub degraded_failures: u32,
    /// Permanent device losses.
    pub permanent_failures: u32,
    /// Retry attempts started across all tasks and replicas.
    pub retries: u32,
    /// Task copies whose first attempt actually started, primaries
    /// included (so a clean ReplicateK run satisfies
    /// `launched = tasks + cancelled`).
    pub replicas_launched: u32,
    /// Launched copies cancelled because a sibling finished first.
    pub replicas_cancelled: u32,
    /// Full re-planning events (Reschedule policy).
    pub reschedules: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_model_validation() {
        assert!(FailureModel::exponential(10.0).validate().is_ok());
        assert!(FailureModel::exponential(0.0).validate().is_err());
        assert!(FailureModel::weibull(10.0, 1.5).validate().is_ok());
        assert!(FailureModel::weibull(10.0, 0.0).validate().is_err());
        let mut m = FailureModel::exponential(10.0);
        m.degraded_prob = 0.6;
        m.permanent_prob = 0.6;
        assert!(m.validate().is_err(), "probabilities must sum <= 1");
        let mut m = FailureModel::exponential(10.0);
        m.degraded_slowdown = 0.5;
        assert!(m.validate().is_err(), "degradation cannot speed things up");
        let mut m = FailureModel::exponential(10.0);
        m.restart_overhead_secs = -1.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn policy_validation_and_backoff_math() {
        let p = RecoveryPolicy::RetryBackoff {
            base_secs: 0.5,
            factor: 2.0,
            cap_secs: 3.0,
            max_retries: 5,
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.backoff_delay_secs(1), 0.5);
        assert_eq!(p.backoff_delay_secs(2), 1.0);
        assert_eq!(p.backoff_delay_secs(3), 2.0);
        assert_eq!(p.backoff_delay_secs(4), 3.0, "capped");
        assert_eq!(p.backoff_delay_secs(9), 3.0, "still capped");
        assert_eq!(p.max_retries(), 5);
        assert_eq!(p.name(), "retry-backoff");

        let flat = RecoveryPolicy::RetryBackoff {
            base_secs: 0.0,
            factor: 2.0,
            cap_secs: 0.0,
            max_retries: 3,
        };
        assert!(flat.validate().is_ok(), "flat retry is the base=0 case");
        assert_eq!(flat.backoff_delay_secs(7), 0.0);

        assert!(RecoveryPolicy::RetryBackoff {
            base_secs: 1.0,
            factor: 0.5,
            cap_secs: 2.0,
            max_retries: 1
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy::ReplicateK {
            replicas: 1,
            max_retries: 0
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 0
        }
        .validate()
        .is_ok());
        assert!(RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.0,
            overhead_secs: 0.0,
            max_retries: 1
        }
        .validate()
        .is_err());
        let r = RecoveryPolicy::Reschedule {
            scheduler: "no-such-scheduler".into(),
            overhead_secs: 0.0,
            max_retries: 1,
        };
        let err = r.validate().unwrap_err().to_string();
        assert!(
            err.contains("heft"),
            "error must name legal schedulers: {err}"
        );
        assert!(RecoveryPolicy::Reschedule {
            scheduler: "heft".into(),
            overhead_secs: 0.1,
            max_retries: 1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn metrics_roundtrip_serde() {
        let m = ResilienceMetrics {
            policy: "replicate-k".into(),
            fault_free_makespan_secs: 10.0,
            makespan_degradation: 0.25,
            wasted_work_secs: 3.5,
            recovery_overhead_secs: 0.5,
            transient_failures: 4,
            degraded_failures: 1,
            permanent_failures: 0,
            retries: 4,
            replicas_launched: 12,
            replicas_cancelled: 9,
            reschedules: 0,
        };
        let v = serde::Serialize::to_value(&m);
        let back: ResilienceMetrics = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);
    }
}
