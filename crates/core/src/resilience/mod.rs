//! Failure-domain model and pluggable recovery policies.
//!
//! Long-running scientific workflows on heterogeneous platforms live or
//! die by how they absorb failures. This module models the *failure
//! domain* — per-device failure processes producing timed transient,
//! degraded and permanent failures (built on
//! [`helios_sim::failure`]) — and the *recovery domain* — what the
//! runtime does about them:
//!
//! * [`RecoveryPolicy::RetryBackoff`] — re-run the aborted attempt after
//!   a capped exponential backoff (the flat retry of
//!   [`FaultConfig`](crate::FaultConfig) is the `base_secs = 0` special
//!   case),
//! * [`RecoveryPolicy::ReplicateK`] — run `k` copies of every task on
//!   distinct devices; the first finisher wins and the rest are
//!   cancelled,
//! * [`RecoveryPolicy::CheckpointRestart`] — snapshot progress
//!   periodically and restart failed attempts from the last snapshot,
//! * [`RecoveryPolicy::Reschedule`] — on a permanent device loss,
//!   re-invoke a scheduler on the surviving platform for the unfinished
//!   subgraph.
//!
//! The [`ResilientRunner`] executes a static plan under a
//! [`ResilienceConfig`], runs the identical configuration with failure
//! injection disabled to obtain the fault-free baseline, and attaches
//! [`ResilienceMetrics`] (wasted work, recovery overhead, makespan
//! degradation) to the report. Determinism is preserved: every device's
//! failure trace and every task's noise multiplier come from dedicated
//! forked RNG streams, so identical seeds give byte-identical reports no
//! matter how the surrounding campaign is sharded or threaded.

mod runner;

pub use runner::ResilientRunner;

use serde::{Deserialize, Serialize};

use crate::error::EngineError;
use helios_sim::failure::{FailureDistribution, FailureProcess, LinkFailureProcess};

/// Per-device failure process parameters plus the repair model.
///
/// All devices share one process description; the *realizations* differ
/// because each device samples its own forked RNG stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureModel {
    /// Mean time to failure (exponential) or characteristic life
    /// (Weibull), in seconds.
    pub mttf_secs: f64,
    /// Weibull shape parameter; `None` selects the exponential
    /// distribution.
    pub weibull_shape: Option<f64>,
    /// Probability that a failure degrades the device instead of only
    /// aborting the running attempt.
    pub degraded_prob: f64,
    /// Probability that a failure removes the device permanently.
    pub permanent_prob: f64,
    /// Execution-time multiplier while degraded (≥ 1, so degradation can
    /// only slow work down).
    pub degraded_slowdown: f64,
    /// Time until a degraded device is repaired to full speed, seconds.
    pub degraded_repair_secs: f64,
    /// Fixed overhead paid before every retry attempt, seconds.
    pub restart_overhead_secs: f64,
}

impl FailureModel {
    /// A transient-only exponential failure model — the classical
    /// Poisson fault process.
    #[must_use]
    pub fn exponential(mttf_secs: f64) -> FailureModel {
        FailureModel {
            mttf_secs,
            weibull_shape: None,
            degraded_prob: 0.0,
            permanent_prob: 0.0,
            degraded_slowdown: 2.0,
            degraded_repair_secs: 1.0,
            restart_overhead_secs: 0.0,
        }
    }

    /// A transient-only Weibull failure model with the given
    /// characteristic life and shape.
    #[must_use]
    pub fn weibull(scale_secs: f64, shape: f64) -> FailureModel {
        FailureModel {
            weibull_shape: Some(shape),
            ..FailureModel::exponential(scale_secs)
        }
    }

    /// The inter-failure distribution this model describes.
    #[must_use]
    pub fn distribution(&self) -> FailureDistribution {
        match self.weibull_shape {
            None => FailureDistribution::Exponential {
                mttf_secs: self.mttf_secs,
            },
            Some(shape) => FailureDistribution::Weibull {
                scale_secs: self.mttf_secs,
                shape,
            },
        }
    }

    /// Builds the validated [`FailureProcess`] for one device.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] describing the offending
    /// parameter.
    pub fn process(&self) -> Result<FailureProcess, EngineError> {
        FailureProcess::new(self.distribution(), self.degraded_prob, self.permanent_prob)
            .map_err(|e| EngineError::Config(format!("failure model: {e}")))
    }

    fn validate(&self) -> Result<(), EngineError> {
        self.process()?;
        if !(self.degraded_slowdown.is_finite() && self.degraded_slowdown >= 1.0) {
            return Err(EngineError::Config(format!(
                "degraded_slowdown must be >= 1 (degradation cannot speed a device up), got {}",
                self.degraded_slowdown
            )));
        }
        for (name, v) in [
            ("degraded_repair_secs", self.degraded_repair_secs),
            ("restart_overhead_secs", self.restart_overhead_secs),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(EngineError::Config(format!(
                    "{name} must be non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// Per-link interconnect-fault process parameters plus the repair model.
///
/// All links share one process description; realizations differ because
/// each link samples its own forked RNG stream (keyed by link id, never
/// by event order). A fault is either a full *outage* — the link carries
/// nothing until repaired, so transfers stall or reroute — or a
/// bandwidth *degradation* that stretches every crossing transfer by
/// `degraded_factor` until repair.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultModel {
    /// Mean time to failure (exponential) or characteristic life
    /// (Weibull) per link, in seconds.
    pub mttf_secs: f64,
    /// Weibull shape parameter; `None` selects the exponential
    /// distribution.
    pub weibull_shape: Option<f64>,
    /// Probability that a fault degrades bandwidth instead of taking the
    /// link down entirely.
    pub degraded_prob: f64,
    /// Transfer-time multiplier while degraded (≥ 1, so degradation can
    /// only slow transfers down).
    pub degraded_factor: f64,
    /// Downtime of one outage before the link is repaired, seconds.
    pub outage_secs: f64,
    /// Time until a degraded link recovers full bandwidth, seconds.
    pub degraded_repair_secs: f64,
}

impl LinkFaultModel {
    /// An outage-only exponential link-fault model.
    #[must_use]
    pub fn exponential(mttf_secs: f64) -> LinkFaultModel {
        LinkFaultModel {
            mttf_secs,
            weibull_shape: None,
            degraded_prob: 0.0,
            degraded_factor: 2.0,
            outage_secs: 0.05,
            degraded_repair_secs: 0.05,
        }
    }

    /// An outage-only Weibull link-fault model with the given
    /// characteristic life and shape.
    #[must_use]
    pub fn weibull(scale_secs: f64, shape: f64) -> LinkFaultModel {
        LinkFaultModel {
            weibull_shape: Some(shape),
            ..LinkFaultModel::exponential(scale_secs)
        }
    }

    /// The inter-failure distribution this model describes.
    #[must_use]
    pub fn distribution(&self) -> FailureDistribution {
        match self.weibull_shape {
            None => FailureDistribution::Exponential {
                mttf_secs: self.mttf_secs,
            },
            Some(shape) => FailureDistribution::Weibull {
                scale_secs: self.mttf_secs,
                shape,
            },
        }
    }

    /// Builds the validated [`LinkFailureProcess`] for one link.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] describing the offending
    /// parameter.
    pub fn process(&self) -> Result<LinkFailureProcess, EngineError> {
        LinkFailureProcess::new(self.distribution(), self.degraded_prob)
            .map_err(|e| EngineError::Config(format!("link fault model: {e}")))
    }

    fn validate(&self) -> Result<(), EngineError> {
        self.process()?;
        if !(self.degraded_factor.is_finite() && self.degraded_factor >= 1.0) {
            return Err(EngineError::Config(format!(
                "link degraded_factor must be >= 1 (degradation cannot speed transfers up), \
                 got {}",
                self.degraded_factor
            )));
        }
        for (name, v) in [
            ("link outage_secs", self.outage_secs),
            ("link degraded_repair_secs", self.degraded_repair_secs),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(EngineError::Config(format!(
                    "{name} must be non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// A correlated failure domain: a named group of devices *and* links
/// (a rack, a node, a shared PSU) struck together by single events drawn
/// from one forked RNG stream per domain.
///
/// A domain event of a given [`FailureKind`](helios_sim::failure::FailureKind)
/// applies to every member at once: transient events abort whatever the
/// member devices are running and knock member links out for
/// `outage_secs`; degraded events slow member devices by the shared
/// [`FailureModel::degraded_slowdown`] and outage member links the same
/// way; permanent events remove every member device *and* link for the
/// rest of the run — destroying the data products resident on those
/// devices and partitioning whatever the links connected.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDomain {
    /// Domain kind tag; one of [`FailureDomain::kinds`].
    pub kind: String,
    /// Unique domain name, used in validation errors and reports.
    pub name: String,
    /// Member device names (resolved against the platform per cell).
    pub devices: Vec<String>,
    /// Member link names; a name selects *every* link carrying it
    /// (cluster presets share link names across nodes).
    pub links: Vec<String>,
    /// Mean time to failure (exponential) or characteristic life
    /// (Weibull) of the whole domain, in seconds.
    pub mttf_secs: f64,
    /// Weibull shape parameter; `None` selects the exponential
    /// distribution.
    pub weibull_shape: Option<f64>,
    /// Probability that a domain event degrades its members instead of
    /// aborting their in-flight work.
    pub degraded_prob: f64,
    /// Probability that a domain event takes the whole group down for
    /// good.
    pub permanent_prob: f64,
    /// Downtime of member links under non-permanent events, seconds.
    pub outage_secs: f64,
}

impl FailureDomain {
    /// Every legal domain kind tag, for validation errors.
    #[must_use]
    pub fn kinds() -> &'static [&'static str] {
        &["rack", "node", "psu"]
    }

    /// Builds the validated shared [`FailureProcess`] for this domain.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] describing the offending
    /// parameter.
    pub fn process(&self) -> Result<FailureProcess, EngineError> {
        let distribution = match self.weibull_shape {
            None => FailureDistribution::Exponential {
                mttf_secs: self.mttf_secs,
            },
            Some(shape) => FailureDistribution::Weibull {
                scale_secs: self.mttf_secs,
                shape,
            },
        };
        FailureProcess::new(distribution, self.degraded_prob, self.permanent_prob)
            .map_err(|e| EngineError::Config(format!("failure domain {:?}: {e}", self.name)))
    }

    fn validate(&self) -> Result<(), EngineError> {
        let fail = |msg: String| {
            Err(EngineError::Config(format!(
                "failure domain {:?}: {msg}",
                self.name
            )))
        };
        if !FailureDomain::kinds().contains(&self.kind.as_str()) {
            return fail(format!(
                "unknown kind {:?}; legal values: {}",
                self.kind,
                FailureDomain::kinds().join(", ")
            ));
        }
        if self.name.is_empty() {
            return Err(EngineError::Config(
                "failure domain name must not be empty".into(),
            ));
        }
        if self.devices.is_empty() && self.links.is_empty() {
            return fail("must name at least one member device or link".into());
        }
        self.process()?;
        if !(self.outage_secs.is_finite() && self.outage_secs >= 0.0) {
            return fail(format!(
                "outage_secs must be non-negative, got {}",
                self.outage_secs
            ));
        }
        Ok(())
    }
}

/// What the runtime does when an attempt or a device fails.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryPolicy {
    /// Re-run the aborted attempt after a capped exponential backoff:
    /// retry `r` (1-based) waits `min(base · factor^(r-1), cap)` seconds
    /// on top of the model's restart overhead.
    RetryBackoff {
        /// Backoff before the first retry, seconds (0 = flat retry).
        base_secs: f64,
        /// Multiplicative growth per retry (≥ 1).
        factor: f64,
        /// Upper bound on any single backoff, seconds.
        cap_secs: f64,
        /// Retry budget per task; exceeding it aborts the run.
        max_retries: u32,
    },
    /// Run `replicas` copies of every task on distinct devices; the
    /// first finisher wins and the remaining copies are cancelled.
    ReplicateK {
        /// Total copies per task, including the primary (≥ 2). Clamped
        /// to the number of feasible devices.
        replicas: usize,
        /// Per-replica retry budget for transient failures.
        max_retries: u32,
    },
    /// Snapshot progress every `interval_secs` of execution at
    /// `overhead_secs` per snapshot; a retry resumes from the last
    /// snapshot instead of from scratch. Snapshots are device-local, so
    /// a permanent device loss still restarts the task from zero
    /// elsewhere.
    CheckpointRestart {
        /// Execution time between snapshots, seconds.
        interval_secs: f64,
        /// Cost of writing one snapshot, seconds.
        overhead_secs: f64,
        /// Retry budget per task.
        max_retries: u32,
    },
    /// On a permanent device loss, re-plan the whole workflow on the
    /// surviving platform with the named scheduler; unfinished tasks
    /// adopt the new placements (running tasks keep running where they
    /// are). Transient failures retry in place.
    Reschedule {
        /// Scheduler name resolved via
        /// [`helios_sched::scheduler_by_name`].
        scheduler: String,
        /// Re-planning overhead charged before reassigned work may
        /// start, seconds.
        overhead_secs: f64,
        /// Retry budget per task for transient failures.
        max_retries: u32,
    },
}

impl RecoveryPolicy {
    /// Stable kebab-case policy name used in specs, reports and error
    /// messages.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::RetryBackoff { .. } => "retry-backoff",
            RecoveryPolicy::ReplicateK { .. } => "replicate-k",
            RecoveryPolicy::CheckpointRestart { .. } => "checkpoint-restart",
            RecoveryPolicy::Reschedule { .. } => "reschedule",
        }
    }

    /// Every legal policy name, for error messages.
    #[must_use]
    pub fn names() -> &'static [&'static str] {
        &[
            "retry-backoff",
            "replicate-k",
            "checkpoint-restart",
            "reschedule",
        ]
    }

    /// The per-task (per-replica for [`RecoveryPolicy::ReplicateK`])
    /// transient retry budget.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        match *self {
            RecoveryPolicy::RetryBackoff { max_retries, .. }
            | RecoveryPolicy::ReplicateK { max_retries, .. }
            | RecoveryPolicy::CheckpointRestart { max_retries, .. }
            | RecoveryPolicy::Reschedule { max_retries, .. } => max_retries,
        }
    }

    /// Backoff delay before retry `retry` (1-based), seconds.
    #[must_use]
    pub fn backoff_delay_secs(&self, retry: u32) -> f64 {
        match *self {
            RecoveryPolicy::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                ..
            } => crate::config::backoff_delay_secs(base_secs, factor, cap_secs, retry),
            _ => 0.0,
        }
    }

    fn validate(&self) -> Result<(), EngineError> {
        let fail = |msg: String| {
            Err(EngineError::Config(format!(
                "policy {:?}: {msg}",
                self.name()
            )))
        };
        match *self {
            RecoveryPolicy::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                ..
            } => {
                if !(base_secs.is_finite() && base_secs >= 0.0) {
                    return fail(format!("base_secs must be non-negative, got {base_secs}"));
                }
                if !(factor.is_finite() && factor >= 1.0) {
                    return fail(format!("factor must be >= 1, got {factor}"));
                }
                if !(cap_secs.is_finite() && cap_secs >= base_secs) {
                    return fail(format!(
                        "cap_secs must be finite and >= base_secs, got {cap_secs}"
                    ));
                }
            }
            RecoveryPolicy::ReplicateK { replicas, .. } => {
                if replicas < 2 {
                    return fail(format!(
                        "replicas must be >= 2 (1 copy is no replication), got {replicas}"
                    ));
                }
            }
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                if !(interval_secs.is_finite() && interval_secs > 0.0) {
                    return fail(format!(
                        "interval_secs must be positive, got {interval_secs}"
                    ));
                }
                if !(overhead_secs.is_finite() && overhead_secs >= 0.0) {
                    return fail(format!(
                        "overhead_secs must be non-negative, got {overhead_secs}"
                    ));
                }
            }
            RecoveryPolicy::Reschedule {
                ref scheduler,
                overhead_secs,
                ..
            } => {
                if helios_sched::scheduler_by_name(scheduler).is_none() {
                    let legal: Vec<String> = helios_sched::all_schedulers()
                        .iter()
                        .map(|s| s.name().to_owned())
                        .collect();
                    return fail(format!(
                        "unknown scheduler {scheduler:?}; legal values: {}",
                        legal.join(", ")
                    ));
                }
                if !(overhead_secs.is_finite() && overhead_secs >= 0.0) {
                    return fail(format!(
                        "overhead_secs must be non-negative, got {overhead_secs}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Complete resilience configuration: one failure model plus one
/// recovery policy, attached to
/// [`EngineConfig::resilience`](crate::EngineConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// The per-device failure process and repair parameters.
    pub failures: FailureModel,
    /// What the runtime does about failures.
    pub policy: RecoveryPolicy,
    /// Per-link interconnect faults, if any.
    pub link_faults: Option<LinkFaultModel>,
    /// Correlated failure domains, if any (order fixes each domain's RNG
    /// stream, so it is part of the experiment identity).
    pub domains: Vec<FailureDomain>,
}

impl ResilienceConfig {
    /// Creates a resilience configuration with device failures only.
    #[must_use]
    pub fn new(failures: FailureModel, policy: RecoveryPolicy) -> ResilienceConfig {
        ResilienceConfig {
            failures,
            policy,
            link_faults: None,
            domains: Vec::new(),
        }
    }

    /// Adds a per-link interconnect-fault model.
    #[must_use]
    pub fn with_link_faults(mut self, link_faults: LinkFaultModel) -> ResilienceConfig {
        self.link_faults = Some(link_faults);
        self
    }

    /// Adds correlated failure domains.
    #[must_use]
    pub fn with_domains(mut self, domains: Vec<FailureDomain>) -> ResilienceConfig {
        self.domains = domains;
        self
    }

    /// Validates every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), EngineError> {
        self.failures.validate()?;
        self.policy.validate()?;
        if let Some(lf) = &self.link_faults {
            lf.validate()?;
        }
        let mut names: Vec<&str> = Vec::new();
        for d in &self.domains {
            d.validate()?;
            if names.contains(&d.name.as_str()) {
                return Err(EngineError::Config(format!(
                    "failure domain {:?} is defined twice; domain names must be unique",
                    d.name
                )));
            }
            names.push(&d.name);
        }
        Ok(())
    }
}

/// Resilience outcome metrics attached to an
/// [`ExecutionReport`](crate::ExecutionReport) by the
/// [`ResilientRunner`].
///
/// The fault-free baseline is the *same* configuration (same policy,
/// same seed, same plan) with failure injection disabled — so
/// replication and checkpoint overheads are part of the baseline and
/// `makespan_degradation` isolates what the failures themselves cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceMetrics {
    /// The recovery policy name ("retry-backoff", "replicate-k", …).
    pub policy: String,
    /// Makespan of the fault-free run of the same configuration,
    /// seconds.
    pub fault_free_makespan_secs: f64,
    /// `makespan / fault_free_makespan - 1`: the fractional makespan
    /// cost of the injected failures.
    pub makespan_degradation: f64,
    /// Executed device-seconds that did not contribute to completion:
    /// aborted attempt progress (minus checkpoint-preserved work) plus
    /// cancelled-replica progress.
    pub wasted_work_secs: f64,
    /// Restart overheads, backoff delays and re-planning overheads,
    /// seconds.
    pub recovery_overhead_secs: f64,
    /// Transient failures that aborted a running attempt.
    pub transient_failures: u32,
    /// Degradation events (device slowed until repair).
    pub degraded_failures: u32,
    /// Permanent device losses.
    pub permanent_failures: u32,
    /// Retry attempts started across all tasks and replicas.
    pub retries: u32,
    /// Task copies whose first attempt actually started, primaries
    /// included (so a clean ReplicateK run satisfies
    /// `launched = tasks + cancelled`).
    pub replicas_launched: u32,
    /// Launched copies cancelled because a sibling finished first.
    pub replicas_cancelled: u32,
    /// Full re-planning events (Reschedule policy).
    pub reschedules: u32,
    /// Per-link interconnect faults injected (outages + degradations).
    #[serde(default)]
    pub link_faults: u32,
    /// Transfers re-resolved onto a fallback route because a primary
    /// route link was down.
    #[serde(default)]
    pub reroutes: u32,
    /// Seconds transfers spent stalled waiting for a downed link (or
    /// partition) to heal, summed across transfers.
    #[serde(default)]
    pub partition_downtime_secs: f64,
    /// Finished tasks re-executed because every copy of their output
    /// was destroyed by a permanent device loss (lineage recovery).
    #[serde(default)]
    pub rematerialized_tasks: u32,
    /// Output bytes re-produced by lineage recovery.
    #[serde(default)]
    pub rematerialized_bytes: f64,
    /// Correlated failure-domain events fired.
    #[serde(default)]
    pub domain_events: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_model_validation() {
        assert!(FailureModel::exponential(10.0).validate().is_ok());
        assert!(FailureModel::exponential(0.0).validate().is_err());
        assert!(FailureModel::weibull(10.0, 1.5).validate().is_ok());
        assert!(FailureModel::weibull(10.0, 0.0).validate().is_err());
        let mut m = FailureModel::exponential(10.0);
        m.degraded_prob = 0.6;
        m.permanent_prob = 0.6;
        assert!(m.validate().is_err(), "probabilities must sum <= 1");
        let mut m = FailureModel::exponential(10.0);
        m.degraded_slowdown = 0.5;
        assert!(m.validate().is_err(), "degradation cannot speed things up");
        let mut m = FailureModel::exponential(10.0);
        m.restart_overhead_secs = -1.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn policy_validation_and_backoff_math() {
        let p = RecoveryPolicy::RetryBackoff {
            base_secs: 0.5,
            factor: 2.0,
            cap_secs: 3.0,
            max_retries: 5,
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.backoff_delay_secs(1), 0.5);
        assert_eq!(p.backoff_delay_secs(2), 1.0);
        assert_eq!(p.backoff_delay_secs(3), 2.0);
        assert_eq!(p.backoff_delay_secs(4), 3.0, "capped");
        assert_eq!(p.backoff_delay_secs(9), 3.0, "still capped");
        assert_eq!(p.max_retries(), 5);
        assert_eq!(p.name(), "retry-backoff");

        let flat = RecoveryPolicy::RetryBackoff {
            base_secs: 0.0,
            factor: 2.0,
            cap_secs: 0.0,
            max_retries: 3,
        };
        assert!(flat.validate().is_ok(), "flat retry is the base=0 case");
        assert_eq!(flat.backoff_delay_secs(7), 0.0);

        assert!(RecoveryPolicy::RetryBackoff {
            base_secs: 1.0,
            factor: 0.5,
            cap_secs: 2.0,
            max_retries: 1
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy::ReplicateK {
            replicas: 1,
            max_retries: 0
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 0
        }
        .validate()
        .is_ok());
        assert!(RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.0,
            overhead_secs: 0.0,
            max_retries: 1
        }
        .validate()
        .is_err());
        let r = RecoveryPolicy::Reschedule {
            scheduler: "no-such-scheduler".into(),
            overhead_secs: 0.0,
            max_retries: 1,
        };
        let err = r.validate().unwrap_err().to_string();
        assert!(
            err.contains("heft"),
            "error must name legal schedulers: {err}"
        );
        assert!(RecoveryPolicy::Reschedule {
            scheduler: "heft".into(),
            overhead_secs: 0.1,
            max_retries: 1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn metrics_roundtrip_serde() {
        let m = ResilienceMetrics {
            policy: "replicate-k".into(),
            fault_free_makespan_secs: 10.0,
            makespan_degradation: 0.25,
            wasted_work_secs: 3.5,
            recovery_overhead_secs: 0.5,
            transient_failures: 4,
            degraded_failures: 1,
            permanent_failures: 0,
            retries: 4,
            replicas_launched: 12,
            replicas_cancelled: 9,
            reschedules: 0,
            link_faults: 3,
            reroutes: 2,
            partition_downtime_secs: 0.75,
            rematerialized_tasks: 2,
            rematerialized_bytes: 1.5e9,
            domain_events: 1,
        };
        let v = serde::Serialize::to_value(&m);
        let back: ResilienceMetrics = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn metrics_tolerate_legacy_json_without_fault_fields() {
        // Shards written before interconnect faults existed lack the new
        // columns; merging them must not fail.
        let m = ResilienceMetrics {
            policy: "retry-backoff".into(),
            fault_free_makespan_secs: 1.0,
            makespan_degradation: 0.0,
            wasted_work_secs: 0.0,
            recovery_overhead_secs: 0.0,
            transient_failures: 0,
            degraded_failures: 0,
            permanent_failures: 0,
            retries: 0,
            replicas_launched: 0,
            replicas_cancelled: 0,
            reschedules: 0,
            link_faults: 0,
            reroutes: 0,
            partition_downtime_secs: 0.0,
            rematerialized_tasks: 0,
            rematerialized_bytes: 0.0,
            domain_events: 0,
        };
        let mut v = serde::Serialize::to_value(&m);
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "link_faults"
                        | "reroutes"
                        | "partition_downtime_secs"
                        | "rematerialized_tasks"
                        | "rematerialized_bytes"
                        | "domain_events"
                )
            });
        }
        let back: ResilienceMetrics = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn link_fault_model_validation() {
        assert!(LinkFaultModel::exponential(5.0).validate().is_ok());
        assert!(LinkFaultModel::exponential(0.0).validate().is_err());
        assert!(LinkFaultModel::weibull(5.0, 1.2).validate().is_ok());
        assert!(LinkFaultModel::weibull(5.0, 0.0).validate().is_err());
        let mut m = LinkFaultModel::exponential(5.0);
        m.degraded_prob = 1.5;
        assert!(m.validate().is_err());
        let mut m = LinkFaultModel::exponential(5.0);
        m.degraded_factor = 0.5;
        assert!(m.validate().is_err(), "degradation cannot speed a link up");
        let mut m = LinkFaultModel::exponential(5.0);
        m.outage_secs = -1.0;
        assert!(m.validate().is_err());
        let mut m = LinkFaultModel::exponential(5.0);
        m.degraded_repair_secs = f64::NAN;
        assert!(m.validate().is_err());
    }

    #[test]
    fn failure_domain_validation() {
        let base = FailureDomain {
            kind: "rack".into(),
            name: "rack0".into(),
            devices: vec!["gpu0".into()],
            links: vec!["nvlink".into()],
            mttf_secs: 2.0,
            weibull_shape: None,
            degraded_prob: 0.1,
            permanent_prob: 0.1,
            outage_secs: 0.05,
        };
        assert!(base.validate().is_ok());

        let mut d = base.clone();
        d.kind = "blast-radius".into();
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("rack"), "error must name legal kinds: {err}");
        assert!(err.contains("psu"), "error must name legal kinds: {err}");

        let mut d = base.clone();
        d.name.clear();
        assert!(d.validate().is_err());

        let mut d = base.clone();
        d.devices.clear();
        d.links.clear();
        assert!(d.validate().is_err(), "a domain must have members");

        let mut d = base.clone();
        d.mttf_secs = 0.0;
        assert!(d.validate().is_err());

        let mut d = base.clone();
        d.outage_secs = -0.1;
        assert!(d.validate().is_err());
    }

    #[test]
    fn duplicate_domain_names_rejected() {
        let d = FailureDomain {
            kind: "node".into(),
            name: "n0".into(),
            devices: vec!["cpu0".into()],
            links: Vec::new(),
            mttf_secs: 2.0,
            weibull_shape: None,
            degraded_prob: 0.0,
            permanent_prob: 0.0,
            outage_secs: 0.05,
        };
        let rc = ResilienceConfig::new(
            FailureModel::exponential(10.0),
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.0,
                factor: 2.0,
                cap_secs: 0.0,
                max_retries: 3,
            },
        )
        .with_domains(vec![d.clone(), d]);
        let err = rc.validate().unwrap_err().to_string();
        assert!(err.contains("twice"), "{err}");
    }
}
