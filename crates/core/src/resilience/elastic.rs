//! Elastic-capacity runtime: executes an
//! [`ElasticityConfig`](crate::ElasticityConfig) — devices joining,
//! draining, getting preempted and leaving mid-run — as one more hook
//! set over the shared execution core. An `impl` extension of [`Sim`],
//! split out of `runner.rs` so the path source holds only the hook set
//! and the dispatcher.
//!
//! Capacity *membership* (`present`) is tracked separately from failure
//! *health* ([`Availability`]): an absent device is not "down", it is
//! simply not part of the platform right now. A device is `live` when
//! it is present and not permanently failed, and `dispatchable` when it
//! is live and not draining. Both passes of the runner (injected and
//! baseline) execute the same elasticity plan — capacity is reality,
//! not fault injection — so the resilience metrics still isolate what
//! the *failures* cost on the elastic platform.
//!
//! Timed events consume no randomness. Stochastic churn samples each
//! device's alternating renewal (preempt while present, re-acquire
//! while absent) from `ELASTIC_STREAM_BASE + device id`, using the same
//! pre-draw pattern as the fault traces: nothing is sampled in event
//! order, so traces are byte-identical per seed across `--jobs` and
//! shards.
//!
//! Departure reuses the permanent-loss machinery — queued replicas are
//! lost and migrate, resident data products are treated as lost and the
//! lineage re-materializes — but never touches [`Availability`]: a
//! later join brings the device back blank. The one exception is a
//! device the failure machinery killed permanently: dead capacity stays
//! dead, and elastic events on it become counted no-ops
//! (`dead_capacity_events`). When no device is live and no join can
//! ever fire again, the run ends with
//! [`EngineError::CapacityExhausted`] — a measurement, not a bug.

use super::*;

use crate::elastic::{ElasticEventKind, ElasticityMetrics};
use crate::exec::ELASTIC_STREAM_BASE;
use helios_sim::failure::FailureDistribution;

/// One timed event, resolved to a device id (times live in the event
/// queue).
#[derive(Debug, Clone, Copy)]
pub(super) struct TimedEv {
    device: usize,
    kind: TimedKind,
}

#[derive(Debug, Clone, Copy)]
enum TimedKind {
    Join,
    Drain { deadline: SimTime },
    Preempt { notice: SimDuration },
    Leave,
}

/// Why a draining device will depart at its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepartKind {
    Drain,
    Preempt,
}

/// The next armed transition of a churn renewal.
#[derive(Debug, Clone, Copy)]
enum ChurnNext {
    Preempt,
    Rejoin,
}

/// Per-device churn state: the renewal's own RNG stream plus the
/// pre-drawn next transition.
#[derive(Debug)]
struct ChurnRt {
    rng: SimRng,
    dist: FailureDistribution,
    rejoin: FailureDistribution,
    notice: SimDuration,
    pending: Option<ChurnNext>,
}

/// All elastic runtime state, bundled so [`Sim`] carries one field.
#[derive(Debug)]
pub(super) struct ElasticRt {
    timed: Vec<TimedEv>,
    fired: Vec<bool>,
    present: Vec<bool>,
    draining: Vec<bool>,
    joined_mid_run: Vec<bool>,
    /// Stale guard for departure deadlines; bumped on every membership
    /// transition of the device.
    seq: Vec<u32>,
    /// Stale guard for churn transitions; bumped on every (re-)arm.
    churn_seq: Vec<u32>,
    pending_depart: Vec<Option<DepartKind>>,
    churn: Vec<Option<ChurnRt>>,
    present_since: Vec<Option<SimTime>>,
    capacity: Vec<f64>,
    /// Tasks with no live candidate device, waiting for a join.
    parked: Vec<TaskId>,
    joins: u32,
    departures: u32,
    drains: u32,
    preemptions: u32,
    drain_migrated: u32,
    dead_events: u32,
}

impl ElasticRt {
    /// Whether device `d` is currently a member of the platform.
    pub(super) fn is_present(&self, d: usize) -> bool {
        self.present[d]
    }
}

/// Capacity accounting carried out of the simulation for metric
/// assembly.
#[derive(Debug)]
pub(super) struct ElasticOutcome {
    capacity: Vec<f64>,
    joined_mid_run: Vec<bool>,
    joins: u32,
    departures: u32,
    drains: u32,
    preemptions: u32,
    drain_migrated: u32,
    dead_events: u32,
}

impl ElasticOutcome {
    /// Assembles the report metrics: join utilization is busy
    /// device-seconds of winning placements on mid-run joiners over
    /// those devices' capacity-seconds.
    pub(super) fn metrics(&self, schedule: &Schedule) -> ElasticityMetrics {
        let joined_cap: f64 = self
            .capacity
            .iter()
            .zip(&self.joined_mid_run)
            .filter(|&(_, &joined)| joined)
            .map(|(c, _)| c)
            .sum();
        let joined_busy: f64 = schedule
            .placements()
            .iter()
            .filter(|p| self.joined_mid_run[p.device.0])
            .map(|p| p.finish.saturating_since(p.start).as_secs())
            .sum();
        ElasticityMetrics {
            capacity_secs: self.capacity.iter().sum(),
            joins: self.joins,
            departures: self.departures,
            drains: self.drains,
            preemptions: self.preemptions,
            drain_migrated_tasks: self.drain_migrated,
            join_utilization: if joined_cap > 0.0 {
                joined_busy / joined_cap
            } else {
                0.0
            },
            dead_capacity_events: self.dead_events,
        }
    }
}

impl Sim<'_> {
    /// Builds the elastic runtime when configured: resolves device
    /// names, decides initial membership (a device whose earliest timed
    /// event is a join starts the run absent), and schedules the timed
    /// events plus the first churn transitions.
    pub(super) fn init_elastic(&mut self, base_rng: &SimRng) -> Result<(), EngineError> {
        let Some(cfg) = self.cfg.elasticity.as_ref() else {
            return Ok(());
        };
        let nd = self.platform.num_devices();
        let resolve = |name: &str, what: &str| -> Result<usize, EngineError> {
            self.platform
                .device_by_name(name)
                .map(|d| d.id().0)
                .ok_or_else(|| {
                    EngineError::Config(format!(
                        "elasticity {what}: unknown device {name:?}; platform devices: {}",
                        self.platform
                            .devices()
                            .iter()
                            .map(|d| d.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })
        };
        let mut timed = Vec::with_capacity(cfg.events.len());
        let mut ats = Vec::with_capacity(cfg.events.len());
        for ev in &cfg.events {
            let device = resolve(&ev.device, "event")?;
            let kind = match ev.kind {
                ElasticEventKind::Join => TimedKind::Join,
                ElasticEventKind::Drain { deadline_secs } => TimedKind::Drain {
                    deadline: SimTime::from_secs(deadline_secs),
                },
                ElasticEventKind::Preempt { notice_secs } => TimedKind::Preempt {
                    notice: SimDuration::from_secs(notice_secs),
                },
                ElasticEventKind::Leave => TimedKind::Leave,
            };
            timed.push(TimedEv { device, kind });
            ats.push(SimTime::from_secs(ev.at_secs));
        }
        let mut present = vec![true; nd];
        let mut first: Vec<Option<(SimTime, usize)>> = vec![None; nd];
        for (i, (ev, &at)) in timed.iter().zip(&ats).enumerate() {
            let slot = &mut first[ev.device];
            if slot.is_none_or(|(t, _)| at < t) {
                *slot = Some((at, i));
            }
        }
        for (d, slot) in first.iter().enumerate() {
            if let Some((_, i)) = slot {
                if matches!(timed[*i].kind, TimedKind::Join) {
                    present[d] = false;
                }
            }
        }
        let mut churn: Vec<Option<ChurnRt>> = (0..nd).map(|_| None).collect();
        for c in &cfg.churn {
            let d = resolve(&c.device, "churn")?;
            churn[d] = Some(ChurnRt {
                rng: base_rng.fork(ELASTIC_STREAM_BASE + d as u64),
                dist: c.distribution(),
                rejoin: FailureDistribution::Exponential {
                    mttf_secs: c.rejoin_secs,
                },
                notice: SimDuration::from_secs(c.notice_secs),
                pending: None,
            });
        }
        let has_churn: Vec<bool> = churn.iter().map(Option::is_some).collect();
        self.elastic = Some(ElasticRt {
            timed,
            fired: vec![false; cfg.events.len()],
            present_since: present
                .iter()
                .map(|&p| p.then_some(SimTime::ZERO))
                .collect(),
            present,
            draining: vec![false; nd],
            joined_mid_run: vec![false; nd],
            seq: vec![0; nd],
            churn_seq: vec![0; nd],
            pending_depart: vec![None; nd],
            churn,
            capacity: vec![0.0; nd],
            parked: Vec::new(),
            joins: 0,
            departures: 0,
            drains: 0,
            preemptions: 0,
            drain_migrated: 0,
            dead_events: 0,
        });
        for (i, &at) in ats.iter().enumerate() {
            self.queue.push(at, Ev::ElasticTimed { event: i });
        }
        for (d, _) in has_churn.iter().enumerate().filter(|&(_, &c)| c) {
            self.schedule_churn(d, SimTime::ZERO);
        }
        Ok(())
    }

    /// Device `d` is part of the platform right now and not permanently
    /// failed.
    pub(super) fn device_live(&self, d: usize) -> bool {
        self.avail.is_up(DeviceId(d)) && self.elastic.as_ref().is_none_or(|el| el.present[d])
    }

    /// [`Sim::device_live`] and accepting new work (not draining).
    pub(super) fn dispatchable(&self, d: usize) -> bool {
        self.device_live(d) && self.elastic.as_ref().is_none_or(|el| !el.draining[d])
    }

    fn num_live(&self) -> usize {
        (0..self.devs.len())
            .filter(|&d| self.device_live(d))
            .count()
    }

    /// Whether any join can still fire on a device the failure
    /// machinery has not killed: an unfired timed join, or a churn
    /// renewal (which always re-acquires eventually).
    pub(super) fn capacity_can_return(&self) -> bool {
        let Some(el) = self.elastic.as_ref() else {
            return false;
        };
        let up = |d: usize| self.avail.is_up(DeviceId(d));
        el.timed
            .iter()
            .zip(&el.fired)
            .any(|(ev, &fired)| !fired && matches!(ev.kind, TimedKind::Join) && up(ev.device))
            || el
                .churn
                .iter()
                .enumerate()
                .any(|(d, c)| c.is_some() && up(d))
    }

    /// A task with no live candidate device parks until capacity
    /// returns; when none ever can, the run ends — as
    /// `capacity_exhausted` if elastic departures emptied the platform,
    /// or with the original loss error if live-but-infeasible devices
    /// remain.
    pub(super) fn park_or_exhaust(
        &mut self,
        t: TaskId,
        now: SimTime,
        err: EngineError,
    ) -> Result<(), EngineError> {
        if self.elastic.is_none() {
            return Err(err);
        }
        if self.capacity_can_return() {
            let el = self.elastic.as_mut().expect("checked above");
            if !el.parked.contains(&t) {
                el.parked.push(t);
            }
            return Ok(());
        }
        if self.num_live() == 0 {
            return Err(EngineError::CapacityExhausted {
                at_secs: now.as_secs(),
                completed: self.completed,
                total: self.wf.num_tasks(),
            });
        }
        Err(err)
    }

    /// Ends the run if parked tasks can never be placed again: without
    /// this, the event queue could drain with work still parked and the
    /// core would report a stall instead of a measurement.
    pub(super) fn check_parked(&mut self, now: SimTime) -> Result<(), EngineError> {
        let parked_empty = self.elastic.as_ref().is_none_or(|el| el.parked.is_empty());
        if parked_empty || self.capacity_can_return() {
            return Ok(());
        }
        if self.num_live() == 0 {
            return Err(EngineError::CapacityExhausted {
                at_secs: now.as_secs(),
                completed: self.completed,
                total: self.wf.num_tasks(),
            });
        }
        Err(EngineError::AllDevicesLost {
            at_secs: now.as_secs(),
            completed: self.completed,
            total: self.wf.num_tasks(),
        })
    }

    /// A permanent failure removed `d`: close its capacity interval and
    /// cancel any pending departure or churn — dead capacity stays
    /// dead, and later elastic events on it become counted no-ops.
    pub(super) fn elastic_note_dead(&mut self, d: usize, now: SimTime) {
        let Some(el) = self.elastic.as_mut() else {
            return;
        };
        if let Some(since) = el.present_since[d].take() {
            el.capacity[d] += now.saturating_since(since).as_secs();
        }
        el.present[d] = false;
        el.draining[d] = false;
        el.pending_depart[d] = None;
        el.seq[d] += 1;
    }

    pub(super) fn handle_elastic_timed(
        &mut self,
        event: usize,
        now: SimTime,
    ) -> Result<(), EngineError> {
        let el = self
            .elastic
            .as_mut()
            .expect("elastic event without runtime");
        el.fired[event] = true;
        let TimedEv { device: d, kind } = el.timed[event];
        if !self.avail.is_up(DeviceId(d)) {
            el.dead_events += 1;
            return self.check_parked(now);
        }
        match kind {
            TimedKind::Join => {
                if !el.present[d] {
                    return self.elastic_join(d, now);
                }
            }
            TimedKind::Drain { deadline } => {
                if el.present[d] && !el.draining[d] {
                    el.drains += 1;
                    return self.begin_departure(d, DepartKind::Drain, deadline, now);
                }
            }
            TimedKind::Preempt { notice } => {
                if el.present[d] && !el.draining[d] {
                    return self.begin_departure(d, DepartKind::Preempt, now + notice, now);
                }
            }
            TimedKind::Leave => {
                if el.present[d] {
                    return self.depart_device(d, now);
                }
            }
        }
        // Duplicate joins/leaves and drains of absent devices are
        // no-ops, but may have been a parked task's last hope.
        self.check_parked(now)
    }

    pub(super) fn handle_elastic_deadline(
        &mut self,
        d: usize,
        seq: u32,
        now: SimTime,
    ) -> Result<(), EngineError> {
        let el = self.elastic.as_mut().expect("elastic runtime");
        if el.seq[d] != seq || !el.present[d] {
            return Ok(()); // Superseded: departed, died or re-joined.
        }
        if el.pending_depart[d] == Some(DepartKind::Preempt) {
            el.preemptions += 1;
        }
        self.depart_device(d, now)
    }

    pub(super) fn handle_elastic_churn(
        &mut self,
        d: usize,
        seq: u32,
        now: SimTime,
    ) -> Result<(), EngineError> {
        let el = self.elastic.as_mut().expect("elastic runtime");
        if el.churn_seq[d] != seq {
            return Ok(()); // Superseded by a newer transition.
        }
        if !self.avail.is_up(DeviceId(d)) {
            // Dead capacity stays dead: the renewal ends here.
            el.dead_events += 1;
            return Ok(());
        }
        let present = el.present[d];
        let draining = el.draining[d];
        let notice = el.churn[d].as_ref().map(|c| c.notice);
        let pending = el.churn[d].as_mut().and_then(|c| c.pending.take());
        match pending {
            Some(ChurnNext::Preempt) if present && !draining => {
                let notice = notice.expect("churn transition without a model");
                self.begin_departure(d, DepartKind::Preempt, now + notice, now)
            }
            Some(ChurnNext::Rejoin) if !present => {
                self.elastic_join(d, now)?;
                self.schedule_churn(d, now);
                Ok(())
            }
            // A timed event changed membership under the renewal; re-arm
            // from the current state.
            _ => {
                self.schedule_churn(d, now);
                Ok(())
            }
        }
    }

    /// (Re-)arms `d`'s churn renewal: the next transition is a
    /// preemption notice while present, a re-acquisition while absent.
    /// Gaps come from the device's own stream, never in event order.
    fn schedule_churn(&mut self, d: usize, now: SimTime) {
        let el = self.elastic.as_mut().expect("elastic runtime");
        let present = el.present[d];
        el.churn_seq[d] += 1;
        let seq = el.churn_seq[d];
        let c = el.churn[d]
            .as_mut()
            .expect("churn scheduled without a model");
        let (dist, next) = if present {
            (c.dist, ChurnNext::Preempt)
        } else {
            (c.rejoin, ChurnNext::Rejoin)
        };
        let gap = match dist {
            FailureDistribution::Exponential { mttf_secs } => c.rng.exponential(mttf_secs),
            FailureDistribution::Weibull { scale_secs, shape } => c.rng.weibull(scale_secs, shape),
        };
        c.pending = Some(next);
        self.queue.push(
            now + SimDuration::from_secs(gap),
            Ev::ElasticChurn { device: d, seq },
        );
    }

    /// Adds `d` to the platform: it immediately becomes a dispatch and
    /// recovery target, parked tasks retry placement, and under the
    /// Reschedule policy the remaining workload is re-ranked onto the
    /// enlarged platform.
    fn elastic_join(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        let el = self.elastic.as_mut().expect("elastic runtime");
        el.present[d] = true;
        el.draining[d] = false;
        el.pending_depart[d] = None;
        el.seq[d] += 1;
        el.joins += 1;
        el.joined_mid_run[d] = true;
        el.present_since[d] = Some(now);
        let parked = std::mem::take(&mut el.parked);
        self.dispatch_dirty = true;
        self.recover_stranded(&parked, now)
    }

    /// Stops new work on `d` (queued replicas migrate now) and
    /// schedules its departure deadline.
    fn begin_departure(
        &mut self,
        d: usize,
        kind: DepartKind,
        deadline: SimTime,
        now: SimTime,
    ) -> Result<(), EngineError> {
        let el = self.elastic.as_mut().expect("elastic runtime");
        el.draining[d] = true;
        el.pending_depart[d] = Some(kind);
        el.seq[d] += 1;
        let seq = el.seq[d];
        self.queue
            .push(deadline.max(now), Ev::ElasticDeadline { device: d, seq });
        let mut stranded: Vec<TaskId> = Vec::new();
        for t in self.lose_queued(d) {
            if self.finished_at[t.0].is_none()
                && !self.task_has_live_replica(t)
                && !stranded.contains(&t)
            {
                stranded.push(t);
            }
        }
        let el = self.elastic.as_mut().expect("elastic runtime");
        el.drain_migrated += stranded.len() as u32;
        self.recover_stranded(&stranded, now)
    }

    /// Marks every still-queued replica in `d`'s unconsumed queue
    /// suffix Lost, returning the affected tasks.
    fn lose_queued(&mut self, d: usize) -> Vec<TaskId> {
        let start = (self.devs[d].pos + usize::from(self.devs[d].running.is_some()))
            .min(self.devs[d].queue.len());
        let suffix: Vec<usize> = self.devs[d].queue[start..].to_vec();
        let mut tasks = Vec::new();
        for ri in suffix {
            if self.replicas[ri].state == RState::Queued {
                self.replicas[ri].state = RState::Lost;
                self.replicas[ri].gen += 1;
                tasks.push(self.replicas[ri].task);
            }
        }
        tasks
    }

    /// Removes `d` from the platform now. The held attempt (if any) is
    /// lost — under CheckpointRestart the notice window drained the
    /// last snapshot, so completed checkpoint intervals are not counted
    /// as waste, though the replacement attempt still restarts from
    /// zero (snapshots are device-local). Resident data products die
    /// with the device and the lineage re-materializes; stranded tasks
    /// re-enter recovery.
    fn depart_device(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        if let Some(ri) = self.devs[d].running.take() {
            match self.replicas[ri].state {
                RState::Running => {
                    self.update_progress(ri, now);
                    let done = self.replicas[ri].attempt.done_eff;
                    let preserved = self.preserved_work(done);
                    self.counters.wasted += (done - preserved).as_secs();
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
                RState::WaitingRestart => {
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
                _ => {}
            }
        }
        self.lose_queued(d);
        let el = self.elastic.as_mut().expect("elastic runtime");
        el.present[d] = false;
        el.draining[d] = false;
        el.pending_depart[d] = None;
        el.seq[d] += 1;
        el.departures += 1;
        if let Some(since) = el.present_since[d].take() {
            el.capacity[d] += now.saturating_since(since).as_secs();
        }
        let has_churn = el.churn[d].is_some();
        if has_churn {
            // The renewal continues: a churned-away device re-acquires.
            self.schedule_churn(d, now);
        }
        self.rematerialize_lost_products();
        let stranded: Vec<TaskId> = (0..self.wf.num_tasks())
            .map(TaskId)
            .filter(|&t| self.finished_at[t.0].is_none() && !self.task_has_live_replica(t))
            .collect();
        self.recover_stranded(&stranded, now)?;
        self.check_parked(now)
    }

    /// Closes capacity accounting at the end of the run (devices still
    /// present integrate up to the makespan).
    pub(super) fn elastic_outcome(&mut self, makespan: SimDuration) -> Option<ElasticOutcome> {
        let mut el = self.elastic.take()?;
        let end = SimTime::ZERO + makespan;
        for d in 0..el.capacity.len() {
            if let Some(since) = el.present_since[d].take() {
                el.capacity[d] += end.saturating_since(since).as_secs();
            }
        }
        Some(ElasticOutcome {
            capacity: el.capacity,
            joined_mid_run: el.joined_mid_run,
            joins: el.joins,
            departures: el.departures,
            drains: el.drains,
            preemptions: el.preemptions,
            drain_migrated: el.drain_migrated,
            dead_events: el.dead_events,
        })
    }
}
