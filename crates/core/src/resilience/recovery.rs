//! Recovery machinery: permanent device loss, data-product lineage
//! re-materialization, greedy reassignment and full replanning, plus
//! the checkpoint-policy arithmetic. An `impl` extension of [`Sim`],
//! split out of `runner.rs` so the path source holds only the hook set
//! and the dispatcher.

use super::*;

impl Sim<'_> {
    /// Effective seconds one attempt needs: the base work plus one
    /// checkpoint write per completed interval under CheckpointRestart.
    pub(super) fn attempt_effective(&self, remaining: SimDuration) -> SimDuration {
        match self.res.policy {
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                let snapshots = (remaining.as_secs() / interval_secs).floor();
                remaining + SimDuration::from_secs(overhead_secs * snapshots)
            }
            _ => remaining,
        }
    }

    /// Base-work seconds preserved by completed checkpoints when an
    /// attempt with `done_eff` effective progress aborts.
    pub(super) fn preserved_work(&self, done_eff: SimDuration) -> SimDuration {
        match self.res.policy {
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => {
                let stride = interval_secs + overhead_secs;
                let units = (done_eff.as_secs() / stride).floor();
                SimDuration::from_secs(interval_secs * units)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Marks `ri` Lost because its inputs are permanently unreachable
    /// from its device, releases the device, and reassigns the task to a
    /// reachable device when no sibling survives.
    pub(super) fn strand_replica(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        let task = self.replicas[ri].task;
        let d = self.replicas[ri].device.0;
        self.replicas[ri].state = RState::Lost;
        self.replicas[ri].gen += 1;
        self.devs[d].running = None;
        self.devs[d].pos += 1;
        if !self.task_has_live_replica(task) {
            // Partition recovery is always local reassignment (a full
            // replan cannot see link health and could re-place the task
            // on the severed device forever).
            self.greedy_reassign(&[task], now)?;
        }
        Ok(())
    }

    /// Whether `dev` can stage every already-produced input of `task`:
    /// no producer's product sits across a permanently severed route.
    /// Unfinished producers are judged optimistically — if they later
    /// finish somewhere unreachable, the consumer strands then and
    /// recovers again.
    fn reachable_for(&self, task: TaskId, dev: DeviceId) -> Result<bool, EngineError> {
        if !self.link_health_active {
            return Ok(true);
        }
        let ic = self.platform.interconnect();
        let severed = |route: &[LinkId]| {
            route
                .iter()
                .any(|&l| matches!(self.links_avail.down_until(l), Some(None)))
        };
        for &e in self.wf.predecessors(task) {
            let edge = self.wf.edge(e);
            let src = edge.src;
            let Some(src_dev) = self.winner_dev[src.0] else {
                continue;
            };
            if src_dev == dev {
                continue;
            }
            if self.delivered.has(src, dev) {
                continue;
            }
            let primary = ic.route(src_dev, dev)?;
            if !severed(&primary) {
                continue;
            }
            let fallback_ok = match ic.default_link() {
                Some(dl) => primary[..] != [dl] && !severed(&[dl]),
                None => false,
            };
            if !fallback_ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Permanent loss of device `d` alone (per-device failure trace).
    pub(super) fn handle_device_loss(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        self.fail_devices(&[d], now)
    }

    /// Permanent loss of every device in `dead` at once (one batch for a
    /// correlated domain event): orphan their replicas, destroy the data
    /// products resident on them, re-materialize the lost lineage, then
    /// recover stranded tasks by policy (full replan under Reschedule,
    /// greedy per-task reassignment otherwise).
    pub(super) fn fail_devices(&mut self, dead: &[usize], now: SimTime) -> Result<(), EngineError> {
        for &d in dead {
            self.avail.set_down(DeviceId(d));
            self.elastic_note_dead(d, now);
            self.devs[d].running = None;
            let suffix: Vec<usize> = self.devs[d].queue[self.devs[d].pos..].to_vec();
            for ri in suffix {
                match self.replicas[ri].state {
                    RState::Running => {
                        self.update_progress(ri, now);
                        self.counters.wasted += self.replicas[ri].attempt.done_eff.as_secs();
                        self.replicas[ri].state = RState::Lost;
                        self.replicas[ri].gen += 1;
                    }
                    RState::Queued | RState::WaitingRestart => {
                        self.replicas[ri].state = RState::Lost;
                        self.replicas[ri].gen += 1;
                    }
                    _ => {}
                }
            }
        }
        let n = self.wf.num_tasks();
        if self.avail.num_up() == 0 {
            return Err(EngineError::AllDevicesLost {
                at_secs: now.as_secs(),
                completed: self.completed,
                total: n,
            });
        }
        self.rematerialize_lost_products();
        let stranded: Vec<TaskId> = (0..n)
            .map(TaskId)
            .filter(|&t| self.finished_at[t.0].is_none() && !self.task_has_live_replica(t))
            .collect();
        self.recover_stranded(&stranded, now)?;
        self.check_parked(now)
    }

    /// Places stranded tasks by policy: a full replan under Reschedule
    /// (any capacity change re-ranks the whole remaining workload),
    /// greedy per-task reassignment otherwise. Under an elastic
    /// configuration, a task with no live candidate parks until
    /// capacity returns instead of failing the run.
    pub(super) fn recover_stranded(
        &mut self,
        stranded: &[TaskId],
        now: SimTime,
    ) -> Result<(), EngineError> {
        if let RecoveryPolicy::Reschedule {
            scheduler,
            overhead_secs,
            ..
        } = self.res.policy.clone()
        {
            if (0..self.devs.len()).any(|d| self.dispatchable(d)) {
                return self.reschedule_replan(&scheduler, overhead_secs, now);
            }
        }
        for &t in stranded {
            if let Err(e) = self.greedy_reassign(&[t], now) {
                match e {
                    EngineError::AllDevicesLost { .. } => self.park_or_exhaust(t, now, e)?,
                    _ => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Data-product loss and lineage recovery.
    ///
    /// A finished task's product lives on its winner device plus any
    /// delivered cache copies. Dead devices take their copies with them:
    /// products with a surviving copy are re-pointed there; products
    /// with none are *lost*. Walking lineage upward from every
    /// unfinished task, each finished ancestor whose product is lost is
    /// un-finished so it re-executes — and only those: the walk stops at
    /// ancestors whose products survive, so exactly the lost ancestor
    /// chain is re-materialized.
    pub(super) fn rematerialize_lost_products(&mut self) {
        let n = self.wf.num_tasks();
        // 1. Purge copies that died with their devices — or departed
        //    with them: an absent device's local storage is gone.
        let avail = &self.avail;
        let el = self.elastic.as_ref();
        self.delivered
            .purge_lost(|dev| avail.is_up(dev) && el.is_none_or(|e| e.is_present(dev.0)));
        // 2. Re-point dead winners at the smallest surviving cached
        //    copy; products with no copy anywhere are lost.
        let mut lost = vec![false; n];
        for (t, lost_t) in lost.iter_mut().enumerate() {
            let Some(w) = self.winner_dev[t] else {
                continue;
            };
            if self.device_live(w.0) {
                continue;
            }
            match self.delivered.surviving_copy(TaskId(t)) {
                Some((d2, at)) => {
                    self.winner_dev[t] = Some(DeviceId(d2));
                    // The copy only became usable when it arrived there.
                    let f = self.finished_at[t].expect("winner implies finished");
                    self.finished_at[t] = Some(f.max(at));
                }
                None => *lost_t = true,
            }
        }
        // 3. Lineage walk from unfinished tasks: a lost finished
        //    ancestor needs re-materializing, and so (recursively) do
        //    the lost ancestors feeding *its* re-run.
        let mut need = vec![false; n];
        let mut visited = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&t| self.finished_at[t].is_none()).collect();
        for &t in &stack {
            visited[t] = true;
        }
        while let Some(t) = stack.pop() {
            for &e in self.wf.predecessors(TaskId(t)) {
                let p = self.wf.edge(e).src.0;
                if visited[p] {
                    continue;
                }
                if self.finished_at[p].is_some() && lost[p] {
                    visited[p] = true;
                    need[p] = true;
                    stack.push(p);
                }
            }
        }
        // 4. Un-finish the chain and charge the re-materialization.
        for t in (0..n).filter(|&t| need[t]) {
            self.finished_at[t] = None;
            self.winner_dev[t] = None;
            self.realized[t] = None;
            self.completed -= 1;
            self.counters.remat_tasks += 1;
            for &e in self.wf.successors(TaskId(t)) {
                self.counters.remat_bytes += self.wf.edge(e).bytes;
            }
            for ri in self.task_replicas[t].clone() {
                if self.replicas[ri].state == RState::Done {
                    // The winning attempt's work is gone with its output.
                    self.counters.wasted += self.replicas[ri].attempt.total_eff.as_secs();
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
            }
        }
        if need.iter().any(|&x| x) {
            // Finished-edge counts changed; rebuild them for every
            // unfinished task (re-run consumers wait for re-run inputs).
            for t in 0..n {
                if self.finished_at[t].is_some() {
                    continue;
                }
                self.preds_left[t] = self
                    .wf
                    .predecessors(TaskId(t))
                    .iter()
                    .filter(|&&e| self.finished_at[self.wf.edge(e).src.0].is_none())
                    .count();
            }
        }
    }

    /// Moves each stranded task to the surviving feasible *reachable*
    /// device where it runs fastest (ties break on device id),
    /// restarting from zero (checkpoints are device-local).
    fn greedy_reassign(&mut self, stranded: &[TaskId], now: SimTime) -> Result<(), EngineError> {
        let n = self.wf.num_tasks();
        for &task in stranded {
            let mut best: Option<(f64, usize)> = None;
            for dev in self.avail.surviving() {
                if !self.dispatchable(dev.0) {
                    continue;
                }
                let device = self.platform.device(dev)?;
                if !placement_feasible(device, self.wf.task(task)?) {
                    continue;
                }
                if !self.reachable_for(task, dev)? {
                    continue;
                }
                let secs = self.work_on(task, dev, device.nominal_level())?.as_secs();
                let cand = (secs, dev.0);
                if best.is_none() || cand < best.expect("checked") {
                    best = Some(cand);
                }
            }
            let Some((_, d)) = best else {
                return Err(EngineError::AllDevicesLost {
                    at_secs: now.as_secs(),
                    completed: self.completed,
                    total: n,
                });
            };
            let device = DeviceId(d);
            let level = self.platform.device(device)?.nominal_level();
            let overhead = self.res.failures.restart_overhead_secs;
            self.counters.recovery += overhead;
            let ordinal = self.task_replicas[task.0].len();
            let ri = self.replicas.len();
            let remaining = self.work_on(task, device, level)?;
            self.replicas.push(Replica {
                task,
                device,
                level,
                sort_key: (self.plan_key[task.0], task.0, ordinal),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor: now + SimDuration::from_secs(overhead),
                attempt: Attempt::default(),
            });
            self.task_replicas[task.0].push(ri);
            self.insert_queued(d, ri);
        }
        Ok(())
    }

    /// Inserts a new queued replica into the unconsumed suffix of device
    /// `d`'s queue, keeping it sorted by `sort_key`.
    fn insert_queued(&mut self, d: usize, ri: usize) {
        self.dispatch_dirty = true;
        let start = self.devs[d].pos + usize::from(self.devs[d].running.is_some());
        let key = self.replicas[ri].sort_key;
        let queue = &mut self.devs[d].queue;
        let at = queue
            .iter()
            .enumerate()
            .skip(start.min(queue.len()))
            .find(|&(_, &qri)| self.replicas[qri].sort_key > key)
            .map_or(queue.len(), |(i, _)| i);
        queue.insert(at, ri);
    }

    /// Full replan on the surviving platform: every unfinished task
    /// without a held (running or restarting) replica adopts the new
    /// plan's placement; held replicas keep running where they are.
    fn reschedule_replan(
        &mut self,
        scheduler: &str,
        overhead_secs: f64,
        now: SimTime,
    ) -> Result<(), EngineError> {
        self.counters.reschedules += 1;
        self.counters.recovery += overhead_secs;
        self.dispatch_dirty = true;
        let alive: Vec<DeviceId> = self
            .avail
            .surviving()
            .into_iter()
            .filter(|dev| self.dispatchable(dev.0))
            .collect();
        let sub = self.platform.survivors(&alive)?;
        let sched = scheduler_by_name(scheduler).ok_or_else(|| {
            EngineError::Config(format!("unknown scheduler {scheduler:?} for reschedule"))
        })?;
        let plan2 = sched.schedule(self.wf, &sub)?;
        let floor = now + SimDuration::from_secs(overhead_secs);

        let mut new_queues: Vec<Vec<usize>> = vec![Vec::new(); self.devs.len()];
        for p in plan2.placements() {
            let t = p.task;
            if self.finished_at[t.0].is_some() {
                continue;
            }
            let held = self.task_replicas[t.0].iter().any(|&ri| {
                matches!(
                    self.replicas[ri].state,
                    RState::Running | RState::WaitingRestart
                )
            });
            if held {
                continue;
            }
            // Retire any still-queued replicas of the task; the replan
            // supersedes them.
            let old = self.task_replicas[t.0].clone();
            for ri in old {
                if self.replicas[ri].state == RState::Queued {
                    self.replicas[ri].state = RState::Lost;
                    self.replicas[ri].gen += 1;
                }
            }
            // plan2's device ids index the surviving platform; map back.
            let orig = alive[p.device.0];
            self.plan_key[t.0] = p.start;
            let ordinal = self.task_replicas[t.0].len();
            let ri = self.replicas.len();
            let remaining = self.work_on(t, orig, p.level)?;
            self.replicas.push(Replica {
                task: t,
                device: orig,
                level: p.level,
                sort_key: (p.start, t.0, ordinal),
                state: RState::Queued,
                gen: 0,
                retries: 0,
                launched: false,
                occupied_from: SimTime::ZERO,
                remaining_work: remaining,
                floor,
                attempt: Attempt::default(),
            });
            self.task_replicas[t.0].push(ri);
            new_queues[orig.0].push(ri);
        }
        for (d, queued) in new_queues.iter_mut().enumerate() {
            if !self.device_live(d) {
                continue;
            }
            let keep = (self.devs[d].pos + usize::from(self.devs[d].running.is_some()))
                .min(self.devs[d].queue.len());
            self.devs[d].queue.truncate(keep);
            let mut tail = std::mem::take(queued);
            tail.sort_by_key(|&ri| self.replicas[ri].sort_key);
            self.devs[d].queue.extend(tail);
        }
        Ok(())
    }
}
