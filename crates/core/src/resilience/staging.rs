//! Work and transfer modeling for the resilient executor: task
//! duration on a device (noise and slowdown folded in) and link-health
//! aware input staging. An `impl` extension of [`Sim`], split out of
//! `runner.rs` so the path source holds only the hook set and the
//! dispatcher.

use super::*;

impl Sim<'_> {
    /// Modeled execution time of `task` on `device` at `level`, folding
    /// in the task's noise multiplier and the device's static slowdown.
    pub(super) fn work_on(
        &self,
        task: TaskId,
        device: DeviceId,
        level: DvfsLevel,
    ) -> Result<SimDuration, EngineError> {
        let dev = self.platform.device(device)?;
        let modeled = dev.execution_time(self.wf.task(task)?.cost(), level)?;
        let slow = slowdown_factor(self.cfg.device_slowdown.as_ref(), device.0);
        Ok(modeled * self.noise[task.0] * slow)
    }

    /// Arrival instant of one input transfer at `device`, honoring link
    /// health at staging time: degraded links stretch the transfer,
    /// downed links force a reroute over the default link or stall the
    /// transfer until the earliest repair. Returns `Ok(None)` when every
    /// candidate route is permanently severed — the device is
    /// partitioned away from the producer.
    pub(super) fn staged_arrival(
        &mut self,
        src_dev: DeviceId,
        device: DeviceId,
        bytes: f64,
        ready: SimTime,
    ) -> Result<Option<SimTime>, EngineError> {
        if src_dev == device {
            return Ok(Some(ready));
        }
        let platform = self.platform;
        if !self.link_health_active {
            let arrival = self.links.transfer_arrival(
                platform,
                self.cfg.link_contention,
                bytes,
                src_dev,
                device,
                ready,
                &mut self.stats,
                None,
            )?;
            return Ok(Some(arrival));
        }
        let ic = platform.interconnect();
        let primary = ic.route(src_dev, device)?;
        // The only alternate path the model knows is the default link
        // (presets route unrelated pairs over it); a fallback identical
        // to the primary is no detour.
        let fallback: Option<Vec<LinkId>> = ic
            .default_link()
            .map(|dl| vec![dl])
            .filter(|f| f[..] != primary[..]);
        let choice = choose_route(&self.links_avail, &primary, fallback.as_deref(), ready);
        let RouteChoice::Go {
            route,
            anchor,
            scale,
            rerouted,
        } = choice
        else {
            return Ok(None);
        };
        if rerouted {
            self.counters.reroutes += 1;
        }
        if anchor > ready {
            self.counters.partition_downtime += anchor.saturating_since(ready).as_secs();
        }
        let arrival = self.links.transfer_arrival_on_route(
            platform,
            self.cfg.link_contention,
            bytes,
            route,
            anchor,
            scale,
            &mut self.stats,
        )?;
        Ok(Some(arrival))
    }
}
